"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark runs its figure exactly once (``pedantic(rounds=1)``): these
are simulations, not microbenchmarks, and their value is the *reproduction*
(shape assertions + printed tables), with the wall-clock as a bonus metric.

Simulation results are cached process-wide by the experiments runner, so
figures that share data (2/3 reuse 1's incast runs; 12/13 reuse 10/11's
fat-tree runs) only pay once — mirroring how the paper's figures were
produced from shared simulation campaigns.

Besides pytest-benchmark's own output, the session writes
``BENCH_results.json`` into the working directory: one record per benchmark
with wall-clock seconds, simulator events executed, and events/s.  Cached
figures legitimately record ~0 events (their simulations ran under an
earlier benchmark in the same session), so the per-figure *events* column
is attributed to whichever test pays for the simulation first.
"""

import json
import time
from pathlib import Path

import pytest

from repro.obs import profiler as obs_profiler
from repro.sim import engine

#: test node name -> {"wall_s", "events", "events_per_s"}
_RESULTS = {}

BENCH_RESULTS_PATH = Path("BENCH_results.json")


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round/iteration and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_once(benchmark, request):
    """Run ``fn`` once under the benchmark with hot-path phase attribution.

    Besides the wall/event totals, each record carries a ``profile``
    section — per-phase wall seconds from a fresh :class:`PhaseProfiler`
    enabled around the benchmarked call — so ``obs diff`` gates phase-level
    shifts (``bench.<name>.profile.<phase>.wall_s``), not just totals.
    The profiler is byte-transparent to simulation output (see
    ``tests/sim/test_obs_disabled.py``), so attribution does not perturb
    what is being measured beyond its own (phase-hook) overhead.
    """

    def _run(fn, *args, **kwargs):
        events_before = engine.total_events_executed()
        prof = obs_profiler.enable("phase")
        start = time.perf_counter()
        try:
            result = run_once(benchmark, fn, *args, **kwargs)
        finally:
            wall = time.perf_counter() - start
            obs_profiler.disable()
        events = engine.total_events_executed() - events_before
        record = {
            "wall_s": round(wall, 4),
            "events": events,
            "events_per_s": round(events / wall) if wall > 0 else 0,
        }
        flat = prof.flat()
        if flat:
            record["profile"] = {
                name: {"wall_s": entry["wall_s"]} for name, entry in flat.items()
            }
        _RESULTS.setdefault(request.node.name, {}).update(record)
        return result

    return _run


@pytest.fixture
def bench_extra(request):
    """Attach extra numeric metrics to this benchmark's BENCH record.

    Anything recorded here lands next to wall_s/events/events_per_s in
    ``BENCH_results.json`` and flows into the ``obs diff`` regression gate
    (every numeric field of a bench record becomes a metric).
    """

    def _record(**metrics):
        rec = _RESULTS.setdefault(request.node.name, {})
        for key, value in metrics.items():
            rec[key] = round(float(value), 4)

    return _record


def pytest_sessionfinish(session):
    if _RESULTS:
        # Records written only via bench_extra carry no wall/event totals.
        total_wall = sum(r.get("wall_s", 0.0) for r in _RESULTS.values())
        total_events = sum(r.get("events", 0) for r in _RESULTS.values())
        payload = {
            "benchmarks": _RESULTS,
            "total": {
                "wall_s": round(total_wall, 4),
                "events": total_events,
                "events_per_s": (
                    round(total_events / total_wall) if total_wall > 0 else 0
                ),
            },
        }
        BENCH_RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
