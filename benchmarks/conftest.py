"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark runs its figure exactly once (``pedantic(rounds=1)``): these
are simulations, not microbenchmarks, and their value is the *reproduction*
(shape assertions + printed tables), with the wall-clock as a bonus metric.

Simulation results are cached process-wide by the experiments runner, so
figures that share data (2/3 reuse 1's incast runs; 12/13 reuse 10/11's
fat-tree runs) only pay once — mirroring how the paper's figures were
produced from shared simulation campaigns.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round/iteration and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
