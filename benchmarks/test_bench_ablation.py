"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. VAI alone vs SF alone vs combined (which mechanism does what);
2. the dampener's feedback protection (on vs off under sustained incast);
3. the Sampling Frequency interval sweep;
4. SF applied to increases (the paper argues this hurts fairness);
5. Token_Thresh sensitivity.
"""

import pytest

from repro.cc import SwiftCC, make_cc
from repro.cc.factory import hpcc_vai_config
from repro.cc.hpcc import HpccCC, HpccConfig
from repro.cc.swift import SwiftConfig
from repro.core.variable_ai import VariableAIConfig
from repro.experiments import IncastConfig, run_incast_cached, scaled_incast
from repro.experiments.runner import make_env
from repro.sim import Flow, QueueMonitor
from repro.topology import build_star
from repro.units import us
from repro.workloads import staggered_incast


def _conv(result):
    return (
        result.convergence_ns - result.last_start_ns
        if result.convergence_ns is not None
        else float("inf")
    )


def _run_custom_incast(cc_factory, n=16):
    """Run the standard staggered incast with a custom per-flow CC factory."""
    topo = build_star(n)
    net = topo.network
    receiver = topo.hosts[-1].node_id
    flows = []
    for spec in staggered_incast(n):
        src = topo.hosts[spec.sender_index].node_id
        env = make_env(net, src, receiver)
        flow = Flow(net.next_flow_id(), src, receiver, spec.size_bytes, spec.start_time_ns)
        net.add_flow(flow, cc_factory(env))
        flows.append(flow)
    qmon = QueueMonitor(net.sim, topo.bottleneck_ports, us(2)).start()
    net.run_until_flows_complete(timeout_ns=us(50_000))
    finishes = [f.finish_time for f in flows if f.completed]
    spread = max(finishes) - min(finishes) if finishes else float("inf")
    return spread, qmon


class TestMechanismDecomposition:
    """VAI-only and SF-only each help; combined helps most (Sec. VI)."""

    def test_each_mechanism_contributes(self, benchmark):
        def run_all():
            return {
                v: run_incast_cached(scaled_incast(v))
                for v in ("hpcc", "hpcc-vai", "hpcc-sf", "hpcc-vai-sf")
            }

        results = benchmark.pedantic(run_all, rounds=1, iterations=1)
        base = results["hpcc"]
        combined = results["hpcc-vai-sf"]
        assert _conv(combined) < _conv(base) / 2
        # Each single mechanism improves the finish spread over default.
        for single in ("hpcc-vai", "hpcc-sf"):
            assert (
                results[single].finish_spread_ns() < base.finish_spread_ns()
            ), single
        print(
            "convergence (us past last start): "
            + ", ".join(
                f"{v}={_conv(r) / 1000:.0f}" for v, r in results.items()
            )
        )


class TestDampenerFeedbackProtection:
    """Without the dampener, sustained congestion keeps AI elevated and
    queues grow; the dampener bounds them (Sec. IV-A's feedback argument)."""

    def _factory(self, dampener_constant):
        def make(env):
            base = hpcc_vai_config(env)
            cfg = VariableAIConfig(
                token_thresh=base.token_thresh,
                ai_div=base.ai_div,
                bank_cap=base.bank_cap,
                ai_cap=base.ai_cap,
                dampener_constant=dampener_constant,
            )
            return HpccCC(env, HpccConfig(sampling_acks=30, vai=cfg))

        return make

    def test_dampener_bounds_queueing(self, benchmark):
        def run_both():
            # A large constant weakens damping (divisor ~ 1): "off".
            _, q_off = _run_custom_incast(self._factory(1e9), n=32)
            _, q_on = _run_custom_incast(self._factory(8.0), n=32)
            return q_on, q_off

        q_on, q_off = benchmark.pedantic(run_both, rounds=1, iterations=1)
        print(
            f"mean queue with dampener: {q_on.mean_depth() / 1000:.1f} KB, "
            f"without: {q_off.mean_depth() / 1000:.1f} KB"
        )
        assert q_on.mean_depth() <= q_off.mean_depth() * 1.05


class TestSamplingIntervalSweep:
    """Smaller s reacts more often: fairness improves, throughput pays."""

    def test_sweep(self, benchmark):
        def run_sweep():
            out = {}
            for s in (5, 15, 30, 60):
                cfg = IncastConfig(variant="hpcc-sf", n_senders=16)
                # The factory reads the interval via make_cc's kwarg; build a
                # bespoke config through the runner by monkeypatch-free means:
                # use a custom factory run instead.
                def factory(env, s=s):
                    return HpccCC(env, HpccConfig(sampling_acks=s))

                spread, _ = _run_custom_incast(factory)
                out[s] = spread
            return out

        spreads = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
        print(
            "finish spread (us) by sampling interval: "
            + ", ".join(f"s={s}: {v / 1000:.0f}" for s, v in spreads.items())
        )
        # More frequent decreases must not make fairness dramatically worse;
        # the most frequent setting should beat the least frequent.
        assert spreads[5] < spreads[60] * 1.25


class TestSfOnIncreases:
    """The paper's Sec. IV-B argument: granting *increases* on the sampling
    schedule favours fast flows and worsens fairness."""

    def test_sf_increase_hurts_fairness(self, benchmark):
        def run_both():
            def good(env):
                cfg = SwiftConfig(
                    use_fbs=False, sampling_acks=30, use_reference_rate=True
                )
                return SwiftCC(env, cfg)

            def bad(env):
                cfg = SwiftConfig(
                    use_fbs=False,
                    sampling_acks=30,
                    use_reference_rate=True,
                    sf_increase=True,
                )
                return SwiftCC(env, cfg)

            return _run_custom_incast(good)[0], _run_custom_incast(bad)[0]

        good_spread, bad_spread = benchmark.pedantic(run_both, rounds=1, iterations=1)
        print(
            f"finish spread: per-RTT increases {good_spread / 1000:.0f} us, "
            f"SF-scheduled increases {bad_spread / 1000:.0f} us"
        )
        assert good_spread <= bad_spread * 1.1


class TestTokenThreshSensitivity:
    """Halving/doubling Token_Thresh around min-BDP keeps the mechanism
    effective — it is not a knife-edge parameter."""

    @pytest.mark.parametrize("scale", [0.5, 1.0, 2.0])
    def test_thresh_scale(self, benchmark, scale):
        def factory(env):
            base = hpcc_vai_config(env)
            cfg = VariableAIConfig(
                token_thresh=base.token_thresh * scale,
                ai_div=base.ai_div,
                bank_cap=base.bank_cap,
                ai_cap=base.ai_cap,
                dampener_constant=base.dampener_constant,
            )
            return HpccCC(env, HpccConfig(sampling_acks=30, vai=cfg))

        result = benchmark.pedantic(
            lambda: _run_custom_incast(factory), rounds=1, iterations=1
        )
        spread = result[0]
        default = run_incast_cached(scaled_incast("hpcc"))
        assert spread < default.finish_spread_ns()
