"""Substrate microbenchmarks: event-loop and datapath throughput.

These are true pytest-benchmark microbenchmarks (multiple rounds) — they
track the simulator's event rate, which determines how far the scaled
presets can be pushed (EXPERIMENTS.md records the measured rates used to
choose them).
"""

from repro.cc.base import CCEnv, CongestionControl
from repro.sim import Flow, Simulator
from repro.topology import build_star
from repro.units import gbps, us


def test_engine_schedule_run_throughput(benchmark):
    """Raw heap throughput: schedule + run 10k self-rescheduling events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_datapath_packet_throughput(benchmark):
    """End-to-end packets/second through host -> switch -> host."""

    class Greedy(CongestionControl):
        def __init__(self, env):
            super().__init__(env)
            self.window_bytes = 1e12
            self.pacing_rate_bps = None

        def on_ack(self, ctx):
            pass

    def run():
        topo = build_star(1)
        net = topo.network
        src, dst = topo.hosts[0].node_id, topo.hosts[1].node_id
        env = CCEnv(line_rate_bps=gbps(100), base_rtt_ns=net.path_rtt_ns(src, dst))
        flow = Flow(0, src, dst, 2_000_000, 0.0)  # 2000 packets
        net.add_flow(flow, Greedy(env))
        net.run_until_flows_complete(timeout_ns=us(10_000))
        assert flow.completed
        return net.sim.events_executed

    events = benchmark(run)
    assert events > 10_000


def test_incast_simulation_wall_clock(benchmark):
    """The standard 16-1 HPCC incast, cold (no cache) — the unit of cost
    behind every incast figure."""
    from repro.experiments import scaled_incast
    from repro.experiments.runner import run_incast

    result = benchmark.pedantic(
        lambda: run_incast(scaled_incast("hpcc")), rounds=1, iterations=1
    )
    assert result.all_completed
    print(f"events executed: {result.events_executed}")
