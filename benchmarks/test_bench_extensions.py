"""Extension benches: the Sec. VII generality claim and robustness sweeps.

Not paper figures — these cover the claims the paper states but does not
evaluate: VAI+SF on other protocol families (DCTCP, TIMELY), run-to-run
variance, and behaviour across offered loads.
"""

from repro.experiments.extensions import (
    ext_generality,
    ext_load_sweep,
    ext_seed_variance,
)
from repro.experiments.reporting import render


def test_generality_across_families(bench_once):
    figure = bench_once(ext_generality)
    print(render(figure))
    rows = figure.tables["families"]
    assert len(rows) == 4
    gains = {row[0]: row[3] for row in rows}
    # Every family improves; the two paper protocols improve ~2x.
    assert all(g > 1.0 for g in gains.values())
    assert gains["hpcc"] > 1.8
    assert gains["swift"] > 1.5


def test_seed_variance(bench_once):
    figure = bench_once(lambda: ext_seed_variance(seeds=(1, 2, 3)))
    print(render(figure))
    assert len(figure.tables["variance"]) == 4


def test_load_sweep(bench_once):
    figure = bench_once(lambda: ext_load_sweep(loads=(0.3, 0.5)))
    print(render(figure))
    assert set(figure.tables) == {"hpcc", "hpcc-vai-sf"}
    for rows in figure.tables.values():
        assert len(rows) == 2
