"""Figure 1: Jain index & queue depth during 16-1 incast (baselines).

Paper shape: default HPCC/Swift take several hundred microseconds to reach
a Jain index near 1; the 1 Gbps-AI and probabilistic variants converge
faster but sustain higher queues.
"""

from repro.experiments import run_incast_cached, scaled_incast
from repro.experiments.figures import fig1
from repro.experiments.reporting import render


def _conv(result):
    return (
        result.convergence_ns - result.last_start_ns
        if result.convergence_ns is not None
        else float("inf")
    )


def test_fig1_reproduction(bench_once):
    figure = bench_once(fig1)
    print(render(figure))
    assert "hpcc/summary" in figure.tables
    assert "swift/summary" in figure.tables


def test_fig1_hpcc_shape(bench_once):
    bench_once(lambda: run_incast_cached(scaled_incast("hpcc")))
    default = run_incast_cached(scaled_incast("hpcc"))
    high = run_incast_cached(scaled_incast("hpcc-1gbps"))
    prob = run_incast_cached(scaled_incast("hpcc-prob"))
    # Default converges slowly (paper: "several hundred microseconds").
    assert _conv(default) > 300_000.0
    # Raising AI converges faster...
    assert _conv(high) < _conv(default)
    # ...at the cost of more queueing.
    assert high.queue.mean_bytes > default.queue.mean_bytes
    # Probabilistic feedback reduces the unfairness signature.
    assert prob.start_finish_correlation() > default.start_finish_correlation()


def test_fig1_swift_shape(bench_once):
    bench_once(lambda: run_incast_cached(scaled_incast("swift")))
    default = run_incast_cached(scaled_incast("swift"))
    high = run_incast_cached(scaled_incast("swift-1gbps"))
    assert _conv(high) < _conv(default)
    assert high.queue.mean_bytes > default.queue.mean_bytes * 0.9
