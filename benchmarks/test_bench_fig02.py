"""Figure 2: start vs finish time, 16-1 staggered incast, HPCC baselines.

Paper shape: with default HPCC, "flows that begin last finish first"
(strongly negative start-finish correlation); the 1 Gbps-AI and
probabilistic variants flatten the trend.
"""

from repro.experiments import run_incast_cached, scaled_incast
from repro.experiments.figures import fig2
from repro.experiments.reporting import render


def test_fig2_reproduction(bench_once):
    figure = bench_once(fig2)
    print(render(figure))
    assert set(figure.tables) == {"hpcc", "hpcc-1gbps", "hpcc-prob"}
    assert all(len(rows) == 16 for rows in figure.tables.values())


def test_fig2_shape(bench_once):
    bench_once(lambda: run_incast_cached(scaled_incast("hpcc")))
    default = run_incast_cached(scaled_incast("hpcc"))
    high = run_incast_cached(scaled_incast("hpcc-1gbps"))
    prob = run_incast_cached(scaled_incast("hpcc-prob"))
    assert default.start_finish_correlation() < -0.5
    assert high.finish_spread_ns() < default.finish_spread_ns() / 3
    assert prob.finish_spread_ns() < default.finish_spread_ns()
