"""Figure 3: start vs finish time, 16-1 staggered incast, Swift baselines."""

from repro.experiments import run_incast_cached, scaled_incast
from repro.experiments.figures import fig3
from repro.experiments.reporting import render


def test_fig3_reproduction(bench_once):
    figure = bench_once(fig3)
    print(render(figure))
    assert set(figure.tables) == {"swift", "swift-1gbps", "swift-prob"}


def test_fig3_shape(bench_once):
    bench_once(lambda: run_incast_cached(scaled_incast("swift")))
    default = run_incast_cached(scaled_incast("swift"))
    high = run_incast_cached(scaled_incast("swift-1gbps"))
    # Default Swift: later flows finish first.
    assert default.start_finish_correlation() < -0.5
    # High AI clusters finishes and removes the negative trend.
    assert high.finish_spread_ns() < default.finish_spread_ns()
    assert high.start_finish_correlation() > default.start_finish_correlation()
