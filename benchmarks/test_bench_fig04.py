"""Figure 4: fluid-model fairness difference between MD schedules.

Paper shape: the difference (R1-R0) - (S1-S0) is positive with an early
peak and then diminishes — Sampling Frequency converges to fairness faster
during congestion, by a margin that shrinks as rates equalize.
"""

import numpy as np

from repro.core.fluid_model import FluidModelParams, initial_slope_condition
from repro.experiments.figures import fig4
from repro.experiments.reporting import render


def test_fig4_reproduction(bench_once):
    figure = bench_once(fig4)
    print(render(figure))
    rows = figure.tables["fairness-difference"]
    diffs = np.array([d for _, d in rows])
    assert diffs[0] == 0.0
    assert np.all(diffs[1:] > 0)  # SF fairer throughout
    peak = int(np.argmax(diffs))
    assert peak < len(diffs) / 2  # early peak
    assert diffs[-1] < diffs[peak] / 2  # decays


def test_fig4_condition_paper_parameters(bench_once):
    bench_once(lambda: initial_slope_condition(FluidModelParams()))
    assert initial_slope_condition(FluidModelParams())
