"""Figure 5: HPCC incast (16-1 and scaled 96-1) with VAI + SF.

Paper shape: HPCC VAI SF converges to a Jain index near 1 about as fast as
the high-AI and probabilistic variants while keeping queues near the
default configuration's level.
"""

from repro.experiments import run_incast_cached, scaled_incast
from repro.experiments.config import SCALED_LARGE_INCAST
from repro.experiments.figures import fig5
from repro.experiments.reporting import render


def _conv(result):
    return (
        result.convergence_ns - result.last_start_ns
        if result.convergence_ns is not None
        else float("inf")
    )


def test_fig5_reproduction(bench_once):
    figure = bench_once(fig5)
    print(render(figure))
    assert "16-1/summary" in figure.tables
    assert f"{SCALED_LARGE_INCAST}-1/summary" in figure.tables


def test_fig5_small_incast_shape(bench_once):
    bench_once(lambda: run_incast_cached(scaled_incast("hpcc-vai-sf")))
    default = run_incast_cached(scaled_incast("hpcc"))
    high = run_incast_cached(scaled_incast("hpcc-1gbps"))
    ours = run_incast_cached(scaled_incast("hpcc-vai-sf"))
    # Converges much faster than default, comparable to the high-AI variant.
    assert _conv(ours) < _conv(default) / 2
    # Near-zero queues maintained (Fig. 5b): mean queue in the default's
    # regime, not the persistent-queue regime of the 1 Gbps variant.
    assert ours.queue.mean_bytes <= high.queue.mean_bytes * 1.5
    assert ours.queue.mean_bytes < 3 * default.queue.mean_bytes


def test_fig5_large_incast_shape(bench_once):
    bench_once(lambda: run_incast_cached(scaled_incast("hpcc-vai-sf", SCALED_LARGE_INCAST)))
    n = SCALED_LARGE_INCAST
    default = run_incast_cached(scaled_incast("hpcc", n))
    ours = run_incast_cached(scaled_incast("hpcc-vai-sf", n))
    assert _conv(ours) < _conv(default)
    assert ours.finish_spread_ns() < default.finish_spread_ns() / 2
    assert ours.all_completed
