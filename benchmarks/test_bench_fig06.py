"""Figure 6: Swift incast (16-1 and scaled 96-1) with VAI + SF.

Paper shape: Swift VAI SF becomes fair quickly and sustains the *smallest*
queues of all Swift variants (it does not use FBS, which raises tolerated
queueing delay), with small oscillations.
"""

from repro.experiments import run_incast_cached, scaled_incast
from repro.experiments.config import SCALED_LARGE_INCAST
from repro.experiments.figures import fig6
from repro.experiments.reporting import render


def _conv(result):
    return (
        result.convergence_ns - result.last_start_ns
        if result.convergence_ns is not None
        else float("inf")
    )


def test_fig6_reproduction(bench_once):
    figure = bench_once(fig6)
    print(render(figure))
    assert "16-1/summary" in figure.tables


def test_fig6_small_incast_shape(bench_once):
    bench_once(lambda: run_incast_cached(scaled_incast("swift-vai-sf")))
    ours = run_incast_cached(scaled_incast("swift-vai-sf"))
    default = run_incast_cached(scaled_incast("swift"))
    # Finish times cluster relative to default (Fig. 9's companion fact).
    assert ours.finish_spread_ns() < default.finish_spread_ns()
    # Smallest max queue among Swift variants (no FBS).
    for other in ("swift", "swift-1gbps", "swift-prob"):
        r = run_incast_cached(scaled_incast(other))
        assert ours.queue.max_bytes <= r.queue.max_bytes * 1.05, other


def test_fig6_large_incast_shape(bench_once):
    bench_once(lambda: run_incast_cached(scaled_incast("swift-vai-sf", SCALED_LARGE_INCAST)))
    n = SCALED_LARGE_INCAST
    default = run_incast_cached(scaled_incast("swift", n))
    ours = run_incast_cached(scaled_incast("swift-vai-sf", n))
    assert _conv(ours) < _conv(default)
    # Smaller sustained queues and smaller oscillations (Fig. 6d).
    assert ours.queue.mean_bytes < default.queue.mean_bytes
    assert ours.queue.oscillation_bytes < default.queue.oscillation_bytes * 1.1
