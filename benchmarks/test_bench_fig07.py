"""Figure 7: the 320-host fat-tree topology — structural reproduction.

There is nothing to simulate: the figure is the topology itself.  The bench
times the full paper-scale build (320 hosts, 56 switches, routing tables
for every destination) and validates every structural property the caption
states.
"""

from repro.experiments.figures import fig7
from repro.experiments.reporting import render
from repro.topology import FatTreeParams, build_fattree
from repro.units import gbps


def test_fig7_reproduction(bench_once):
    figure = bench_once(fig7)
    print(render(figure))
    table = dict(figure.tables["structure"])
    assert table["hosts"] == 320
    assert table["ToR switches"] == 20
    assert table["Agg switches"] == 20
    assert table["spine switches"] == 16
    assert table["switch hops cross-pod (paper: max 5)"] == 5


def test_fig7_paper_scale_build(benchmark):
    topo = benchmark.pedantic(
        lambda: build_fattree(FatTreeParams()), rounds=1, iterations=1
    )
    p = FatTreeParams()
    assert len(topo.hosts) == p.n_hosts == 320
    host = topo.hosts[0]
    assert host.nic.spec.rate_bps == gbps(100.0)
    # Every switch has a route to every host.
    for sw in topo.switches:
        assert len(sw.routes) == 320
