"""Figure 8: start vs finish, 16-1 incast — HPCC default vs HPCC VAI SF.

Paper shape: with VAI+SF "the finish time of the flows is much closer
together"; the default's last-starts-finish-first trend disappears.
"""

from repro.experiments import run_incast_cached, scaled_incast
from repro.experiments.figures import fig8
from repro.experiments.reporting import render


def test_fig8_reproduction(bench_once):
    figure = bench_once(fig8)
    print(render(figure))
    assert set(figure.tables) == {"hpcc", "hpcc-vai-sf"}


def test_fig8_shape(bench_once):
    bench_once(lambda: run_incast_cached(scaled_incast("hpcc-vai-sf")))
    default = run_incast_cached(scaled_incast("hpcc"))
    ours = run_incast_cached(scaled_incast("hpcc-vai-sf"))
    assert ours.finish_spread_ns() < default.finish_spread_ns() / 2
    assert default.start_finish_correlation() < -0.5
    assert ours.start_finish_correlation() > 0.0
