"""Figure 9: start vs finish, 16-1 incast — Swift default vs Swift VAI SF."""

from repro.experiments import run_incast_cached, scaled_incast
from repro.experiments.figures import fig9
from repro.experiments.reporting import render


def test_fig9_reproduction(bench_once):
    figure = bench_once(fig9)
    print(render(figure))
    assert set(figure.tables) == {"swift", "swift-vai-sf"}


def test_fig9_shape(bench_once):
    bench_once(lambda: run_incast_cached(scaled_incast("swift-vai-sf")))
    default = run_incast_cached(scaled_incast("swift"))
    ours = run_incast_cached(scaled_incast("swift-vai-sf"))
    # Finish times cluster: spread halves relative to default Swift.
    assert ours.finish_spread_ns() < default.finish_spread_ns() * 0.6
    assert default.start_finish_correlation() < -0.5
