"""Figure 10: 99.9% FCT slowdown vs flow size, Hadoop trace.

Paper shape: small flows complete near the ideal; slowdown grows once flows
become bandwidth-bound; VAI+SF cuts the long-flow tail (2x at the paper's
320-host/50 ms scale — at the scaled preset we assert the direction and a
no-regression bound; see EXPERIMENTS.md for the scale relationship).
"""

import numpy as np

from repro.experiments import run_datacenter_cached, scaled_datacenter
from repro.experiments.figures import fig10
from repro.experiments.reporting import render
from repro.metrics import tail_slowdown_above

LONG = 100_000  # scaled "1 MB"


def test_fig10_reproduction(bench_once):
    figure = bench_once(fig10)
    print(render(figure))
    for variant in ("hpcc", "hpcc-vai-sf", "swift", "swift-vai-sf"):
        assert variant in figure.tables
        assert len(figure.tables[variant]) >= 8


def test_fig10_slowdown_grows_with_size(bench_once):
    bench_once(lambda: run_datacenter_cached(scaled_datacenter("hpcc", "hadoop")))
    r = run_datacenter_cached(scaled_datacenter("hpcc", "hadoop"))
    small = np.median([x.slowdown for x in r.records if x.size_bytes <= 5_000])
    longf = np.median([x.slowdown for x in r.records if x.size_bytes > LONG])
    assert longf > 2 * small


def test_fig10_vai_sf_improves_long_flow_tail(bench_once):
    bench_once(lambda: run_datacenter_cached(scaled_datacenter("hpcc-vai-sf", "hadoop")))
    improved = 0
    for proto in ("hpcc", "swift"):
        base = run_datacenter_cached(scaled_datacenter(proto, "hadoop"))
        ours = run_datacenter_cached(scaled_datacenter(f"{proto}-vai-sf", "hadoop"))
        b = tail_slowdown_above(base.records, LONG, 90.0)
        o = tail_slowdown_above(ours.records, LONG, 90.0)
        assert o < b * 1.1  # never materially worse
        improved += o < b
    assert improved >= 1  # at least one family strictly improves
