"""Figure 11: 99.9% FCT slowdown vs flow size, WebSearch + Storage mix.

Paper shape: same trend as Fig. 10 on a workload with far more long flows —
the slowdown of > 1 MB flows grows to several times that of small flows,
and VAI+SF keeps it several times lower.
"""

from repro.experiments import run_datacenter_cached, scaled_datacenter
from repro.experiments.figures import fig11
from repro.experiments.reporting import render
from repro.metrics import tail_slowdown_above

WORKLOAD = "websearch+storage"
LONG = 100_000


def test_fig11_reproduction(bench_once):
    figure = bench_once(fig11)
    print(render(figure))
    assert len(figure.tables) == 4


def test_fig11_mix_is_long_flow_heavy(bench_once):
    bench_once(lambda: run_datacenter_cached(scaled_datacenter("hpcc", WORKLOAD)))
    mixed = run_datacenter_cached(scaled_datacenter("hpcc", WORKLOAD))
    hadoop = run_datacenter_cached(scaled_datacenter("hpcc", "hadoop"))
    def frac(recs):
        return sum(r.size_bytes > LONG for r in recs) / len(recs)
    assert frac(mixed.records) > 2 * frac(hadoop.records)


def test_fig11_vai_sf_improves_long_flow_tail(bench_once):
    bench_once(lambda: run_datacenter_cached(scaled_datacenter("hpcc-vai-sf", WORKLOAD)))
    improved = 0
    for proto in ("hpcc", "swift"):
        base = run_datacenter_cached(scaled_datacenter(proto, WORKLOAD))
        ours = run_datacenter_cached(scaled_datacenter(f"{proto}-vai-sf", WORKLOAD))
        b = tail_slowdown_above(base.records, LONG, 90.0)
        o = tail_slowdown_above(ours.records, LONG, 90.0)
        assert o < b * 1.1
        improved += o < b
    assert improved >= 1
