"""Figure 12: median FCT slowdown vs flow size, Hadoop trace.

Paper shape: VAI and SF "do not incur any extra queueing delay in the
common case" — medians are essentially unchanged.  (The paper notes a Swift
median regression on Hadoop caused by its single constant AI; we tolerate a
modest factor for Swift accordingly.)

Shares the Figure 10 simulations via the process-wide cache.
"""

from repro.experiments import run_datacenter_cached, scaled_datacenter
from repro.experiments.figures import fig12
from repro.experiments.reporting import render
from repro.metrics import summarize


def test_fig12_reproduction(bench_once):
    figure = bench_once(fig12)
    print(render(figure))
    assert len(figure.tables) == 4


def test_fig12_medians_not_hurt(bench_once):
    bench_once(lambda: run_datacenter_cached(scaled_datacenter("hpcc", "hadoop")))
    for proto, tolerance in (("hpcc", 1.25), ("swift", 1.5)):
        base = summarize(
            run_datacenter_cached(scaled_datacenter(proto, "hadoop")).records
        )["p50_slowdown"]
        ours = summarize(
            run_datacenter_cached(
                scaled_datacenter(f"{proto}-vai-sf", "hadoop")
            ).records
        )["p50_slowdown"]
        assert ours < base * tolerance, proto


def test_fig12_small_flow_medians_near_ideal(bench_once):
    """Small flows complete close to the theoretical minimum under every
    variant (the protocols keep queues small)."""
    import numpy as np

    bench_once(lambda: run_datacenter_cached(scaled_datacenter("swift", "hadoop")))

    for variant in ("hpcc", "hpcc-vai-sf", "swift", "swift-vai-sf"):
        r = run_datacenter_cached(scaled_datacenter(variant, "hadoop"))
        small = [x.slowdown for x in r.records if x.size_bytes <= 2_000]
        assert np.median(small) < 3.0, variant
