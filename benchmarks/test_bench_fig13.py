"""Figure 13: median FCT slowdown vs flow size, WebSearch + Storage mix.

Paper shape: medians unchanged by VAI+SF; the Swift-on-Hadoop median
regression of Fig. 12 is *not* present on this workload.
"""

from repro.experiments import run_datacenter_cached, scaled_datacenter
from repro.experiments.figures import fig13
from repro.experiments.reporting import render
from repro.metrics import summarize

WORKLOAD = "websearch+storage"


def test_fig13_reproduction(bench_once):
    figure = bench_once(fig13)
    print(render(figure))
    assert len(figure.tables) == 4


def test_fig13_medians_not_hurt(bench_once):
    bench_once(lambda: run_datacenter_cached(scaled_datacenter("swift", WORKLOAD)))
    for proto in ("hpcc", "swift"):
        base = summarize(
            run_datacenter_cached(scaled_datacenter(proto, WORKLOAD)).records
        )["p50_slowdown"]
        ours = summarize(
            run_datacenter_cached(
                scaled_datacenter(f"{proto}-vai-sf", WORKLOAD)
            ).records
        )["p50_slowdown"]
        assert ours < base * 1.3, proto
