"""Flight-recorder overhead guard: off must be free, on must stay cheap.

The flight recorder's contract (DESIGN.md §15) mirrors the profiler's
(§14): when the recorder is off, instrumented code paths cost one
module-global ``None`` test at their entry points and the engine's inner
event loop is not touched at all — ``Simulator._run_fast`` compiles to
the same bytecode as before the recorder existed.  The first test pins
that structurally; the second measures recorder-on against recorder-off
on a real packet incast (the hooks live on the per-packet enqueue/
dequeue/send/ack paths, so a tick loop would not exercise them) and
records the ratio into ``BENCH_results.json`` for the regression gate.
"""

import dataclasses
import time

from repro.experiments.config import scaled_incast
from repro.experiments.runner import run_incast
from repro.obs import flightrec as obs_flightrec
from repro.sim import Simulator

#: Names that would appear in the inner event loop's bytecode if any
#: recorder logic leaked into the per-event path.
_FLIGHTREC_NAMES = {"obs_flightrec", "RECORDER", "on_run_extent", "fr"}

#: Ceiling for recorder-on overhead on a packet incast.  The hooks touch
#: every enqueue/dequeue/send/ack, so the cost is real but bounded; this
#: only trips when a change makes the per-packet work pathologically
#: expensive.
MAX_FLIGHTREC_OVERHEAD_RATIO = 2.5


def _incast(seed: int):
    cfg = dataclasses.replace(scaled_incast("hpcc", 8), seed=seed)
    return run_incast(cfg)


def test_event_loop_bytecode_is_flightrec_free():
    """Recorder-off adds zero instructions to the engine's inner loop.

    ``Simulator.run`` consults the recorder global once per invocation
    (to report the run extent after the loop returns), but the loop it
    dispatches to must not: its compiled bytecode references no recorder
    symbol, so the disabled cost inside the hot loop is exactly zero —
    not "a cheap check per event".
    """
    fast_names = set(Simulator._run_fast.__code__.co_names)
    assert not (fast_names & _FLIGHTREC_NAMES), (
        f"flight-recorder symbols leaked into the fast path: "
        f"{sorted(fast_names & _FLIGHTREC_NAMES)}"
    )
    # The dispatcher is the one that pays: once per run(), never per event.
    run_names = set(Simulator.run.__code__.co_names)
    assert {"obs_flightrec", "RECORDER", "on_run_extent"} <= run_names


def test_flightrec_overhead(benchmark, bench_extra):
    """Recorder-on stays within a bounded factor of the bare incast."""
    _incast(seed=100)  # warm allocator/caches outside the timed region

    start = time.perf_counter()
    off = _incast(seed=101)
    off_s = time.perf_counter() - start
    assert off.all_completed

    rec = obs_flightrec.enable()
    try:
        start = time.perf_counter()
        on = benchmark.pedantic(
            _incast, kwargs={"seed": 101}, rounds=1, iterations=1
        )
        on_s = time.perf_counter() - start
        assert on.all_completed
        # The recorder must actually have worked for the ratio to mean
        # anything: every flow decomposed, conservation intact.
        frun = on.flightrec
        assert frun is not None
        assert frun["flows_completed"] == len(on.flows)
        assert frun["conservation_failures"] == 0
        assert frun["max_residual_ns"] <= 1.0
        # Recorder on is passive: same event count, same flow times.
        assert on.events_executed == off.events_executed
        assert [f.fct for f in on.flows] == [f.fct for f in off.flows]
    finally:
        obs_flightrec.disable()

    ratio = on_s / off_s if off_s > 0 else 1.0
    bench_extra(
        flightrec_off_s=off_s, flightrec_on_s=on_s, flightrec_overhead_ratio=ratio
    )
    assert ratio < MAX_FLIGHTREC_OVERHEAD_RATIO, (
        f"flight recording costs {ratio:.1f}x the bare incast "
        f"(ceiling {MAX_FLIGHTREC_OVERHEAD_RATIO}x)"
    )
