"""Flow-backend fast path: runs/s and speedup over the packet backend.

The tentpole claim is >= 20x on the figure-8 workload (both variants,
measured in the same process so machine speed cancels out of the ratio).
Besides asserting the floor, the test records ``runs_per_s`` and
``speedup`` into ``BENCH_results.json`` via ``bench_extra`` so the BENCH
trajectory and the ``obs diff`` gate track the fast path over time.

The flow backend must also still *reproduce* figure 8's shape — the
speedup is worthless if the fluid model loses the paper's unfairness
signature — so the packet-side shape assertions from
``test_bench_fig08.py`` are re-checked on the flow results.
"""

from time import perf_counter

from repro.experiments import scaled_incast
from repro.experiments.config import with_backend
from repro.experiments.runner import clear_caches, run_incast

#: Figure 8's two simulations (HPCC default vs HPCC VAI SF, 16-1 incast).
FIG8_CONFIGS = (scaled_incast("hpcc", 16), scaled_incast("hpcc-vai-sf", 16))

#: Flow-mode rounds per measurement; the packet pair runs once (it is
#: ~20x+ slower, so one round already dominates the total wall time).
FLOW_ROUNDS = 10

SPEEDUP_FLOOR = 20.0


def _run_pair(configs):
    results = [run_incast(cfg) for cfg in configs]
    clear_caches()
    return results


def test_flow_backend_speedup(bench_once, bench_extra):
    flow_configs = [with_backend(cfg, "flow") for cfg in FIG8_CONFIGS]
    _run_pair(flow_configs)  # warm imports and topology caches

    start = perf_counter()
    _run_pair(FIG8_CONFIGS)
    packet_pair_s = perf_counter() - start

    def flow_rounds():
        for _ in range(FLOW_ROUNDS - 1):
            _run_pair(flow_configs)
        return _run_pair(flow_configs)

    start = perf_counter()
    default, vai_sf = bench_once(flow_rounds)
    flow_pair_s = (perf_counter() - start) / FLOW_ROUNDS

    speedup = packet_pair_s / flow_pair_s
    runs_per_s = 2.0 / flow_pair_s
    bench_extra(
        runs_per_s=runs_per_s,
        speedup=speedup,
        packet_pair_s=packet_pair_s,
        flow_pair_s=flow_pair_s,
    )
    print(
        f"\nflow backend: {runs_per_s:.1f} runs/s, "
        f"{speedup:.1f}x over packet (pair: {packet_pair_s:.3f}s -> "
        f"{flow_pair_s * 1000:.1f}ms)"
    )

    # The fast path must still show fig 8's shape: default HPCC's
    # last-starts-finish-first trend, gone under VAI+SF.
    assert default.all_completed and vai_sf.all_completed
    assert default.start_finish_correlation() < -0.5
    assert vai_sf.start_finish_correlation() > 0.0
    assert vai_sf.finish_spread_ns() < default.finish_spread_ns() / 2

    assert speedup >= SPEEDUP_FLOOR, (
        f"flow backend only {speedup:.1f}x over packet on fig8 "
        f"(floor: {SPEEDUP_FLOOR:g}x)"
    )
