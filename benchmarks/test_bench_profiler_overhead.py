"""Profiler overhead guard: off must be free, on must stay cheap.

The hot-path profiler's contract (DESIGN.md §14) is *zero overhead when
off*: ``Simulator.run`` dispatches once per invocation to ``_run_fast``,
whose bytecode contains no profiler reference at all — disabled profiling
is not "a cheap check per event", it is the unmodified event loop.  The
first test pins that structurally; the second measures the enabled phase
mode against the off path on a pure event-loop workload (the worst case:
zero real work per event, so the hook cost is maximally visible) and
records the ratio into ``BENCH_results.json`` for the regression gate.
"""

import time

from repro.obs import profiler as obs_profiler
from repro.sim import Simulator

#: Names that would appear in the event loop's bytecode if any profiler
#: logic leaked into the disabled path.
_PROFILER_NAMES = {"obs_profiler", "PROFILER", "PHASE_HOOKS", "classify_callback"}

#: Generous ceiling for phase-mode overhead on the empty-event worst case.
#: Real simulations sit far below (events do actual work); this only trips
#: when a change makes the per-event hooks pathologically expensive.
MAX_PHASE_OVERHEAD_RATIO = 6.0


def _tick_loop(n_events: int) -> int:
    sim = Simulator()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n_events:
            sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return count[0]


def test_fast_path_bytecode_is_profiler_free():
    """Profiler-off adds zero instructions to the engine fast path.

    ``run`` may (and must) consult the profiler global to dispatch, but the
    loop it dispatches to when profiling is off must not: its compiled
    bytecode references no profiler symbol, so the disabled cost is exactly
    one global read + one jump per ``run()`` call, never per event.
    """
    fast_names = set(Simulator._run_fast.__code__.co_names)
    assert not (fast_names & _PROFILER_NAMES), (
        f"profiler symbols leaked into the fast path: "
        f"{sorted(fast_names & _PROFILER_NAMES)}"
    )
    # The twin loop is the one that pays: it must reference the hooks.
    prof_names = set(Simulator._run_profiled.__code__.co_names)
    assert {"push", "pop", "classify_callback"} <= prof_names


def test_profiler_phase_mode_overhead(benchmark, bench_extra):
    """Phase-mode hooks stay within a bounded factor of the bare loop."""
    n = 20_000
    _tick_loop(n)  # warm allocator/caches outside the timed region

    start = time.perf_counter()
    assert _tick_loop(n) == n
    off_s = time.perf_counter() - start

    obs_profiler.enable("phase")
    try:
        start = time.perf_counter()
        assert benchmark.pedantic(_tick_loop, args=(n,), rounds=1, iterations=1) == n
        on_s = time.perf_counter() - start
        prof = obs_profiler.PROFILER
        assert prof is not None and prof.flat()["engine.loop"]["count"] >= 1
    finally:
        obs_profiler.disable()

    ratio = on_s / off_s if off_s > 0 else 1.0
    bench_extra(
        profiler_off_s=off_s, profiler_phase_s=on_s, profiler_overhead_ratio=ratio
    )
    assert ratio < MAX_PHASE_OVERHEAD_RATIO, (
        f"phase-mode profiling costs {ratio:.1f}x the bare event loop "
        f"(ceiling {MAX_PHASE_OVERHEAD_RATIO}x) on an empty-event workload"
    )
