"""Turbo engine: events/s and speedup vs the reference engine on figure 8.

Honest numbers, not aspiration: the turbo core's timing wheel and flattened
datapath buy back Python interpreter overhead, but staying *byte-identical*
to the reference engine rules out the batching that a vectorized core would
need for multiplicative wins — measured speedup on the fig-8 pair is ~1.0x
(slightly ahead on the larger fat-tree runs).  See DESIGN.md §16 for why
the ceiling is where it is.  The gate therefore protects two things:

* the turbo engine must never be pathologically slower than the reference
  (``SPEEDUP_FLOOR``), and
* its absolute event rate must not decay over time
  (``bench.test_turbo_engine_fig8.turbo_events_per_s`` in
  ``benchmarks/baselines.json``, enforced by ``obs diff``).

Both engines run the identical pair in the same process under the same
(profiled) benchmark harness, so machine speed and instrumentation cancel
out of the ratio.  The run doubles as a cheap identity spot-check: the two
engines' flow tuples must match exactly (the full matrix lives in
``check differential --engines``).
"""

from time import perf_counter

import pytest

np = pytest.importorskip("numpy")

from repro.experiments import scaled_incast
from repro.experiments.config import with_engine
from repro.experiments.runner import clear_caches, run_incast
from repro.sim import engine

#: Figure 8's two simulations (HPCC default vs HPCC VAI SF, 16-1 incast).
FIG8_CONFIGS = (scaled_incast("hpcc", 16), scaled_incast("hpcc-vai-sf", 16))

#: Byte-identity costs the turbo core its headroom on small incasts; it must
#: still never be far slower than the engine it replaces.
SPEEDUP_FLOOR = 0.7


def _run_pair(configs):
    results = [run_incast(cfg) for cfg in configs]
    clear_caches()
    return results


def _flow_tuples(result):
    return [(f.start_time, f.finish_time, f.size) for f in result.flows]


def test_turbo_engine_fig8(bench_once, bench_extra):
    turbo_configs = [with_engine(cfg, "turbo") for cfg in FIG8_CONFIGS]
    _run_pair(turbo_configs)  # warm numpy/turbo imports and topology caches

    legs = {}

    def both_pairs():
        start = perf_counter()
        events_before = engine.total_events_executed()
        ref = _run_pair(FIG8_CONFIGS)
        legs["reference_pair_s"] = perf_counter() - start
        legs["reference_events"] = engine.total_events_executed() - events_before

        start = perf_counter()
        events_before = engine.total_events_executed()
        tur = _run_pair(turbo_configs)
        legs["turbo_pair_s"] = perf_counter() - start
        legs["turbo_events"] = engine.total_events_executed() - events_before
        return ref, tur

    ref_results, turbo_results = bench_once(both_pairs)

    speedup = legs["reference_pair_s"] / legs["turbo_pair_s"]
    turbo_events_per_s = legs["turbo_events"] / legs["turbo_pair_s"]
    bench_extra(
        speedup=speedup,
        turbo_events_per_s=turbo_events_per_s,
        turbo_pair_s=legs["turbo_pair_s"],
        reference_pair_s=legs["reference_pair_s"],
    )
    print(
        f"\nturbo engine fig8: {turbo_events_per_s / 1e3:.0f}k ev/s, "
        f"{speedup:.2f}x over reference "
        f"(pair: {legs['reference_pair_s']:.3f}s -> {legs['turbo_pair_s']:.3f}s)"
    )

    # Identity spot-check: same flows, same event count, to the byte.
    for ref, tur in zip(ref_results, turbo_results):
        assert _flow_tuples(ref) == _flow_tuples(tur)
        assert np.array_equal(ref.jain_values, tur.jain_values)
    assert legs["reference_events"] == legs["turbo_events"]

    assert speedup >= SPEEDUP_FLOOR, (
        f"turbo engine only {speedup:.2f}x vs reference on fig8 "
        f"(floor: {SPEEDUP_FLOOR:g}x)"
    )
