#!/usr/bin/env python
"""Adding the paper's mechanisms to *your own* protocol.

Sec. VII: "Variable AI and Sampling Frequency could be used with a multitude
of congestion control algorithms and require minimal changes on end hosts."
This example demonstrates that claim: we write a deliberately simple
ECN-driven AIMD protocol (~40 lines), then bolt on VariableAI and
SamplingFrequency from :mod:`repro.core` — the same objects the HPCC and
Swift integrations use — and compare fairness on a staggered incast.

Run:  python examples/custom_protocol.py
"""

from repro.cc.base import CCEnv, CongestionControl
from repro.core import SamplingFrequency, VariableAI, VariableAIConfig
from repro.experiments.runner import make_env
from repro.metrics import jain_series, mean_index_after
from repro.sim import Flow, GoodputMonitor
from repro.sim.packet import AckContext
from repro.topology import build_star
from repro.units import mb, us


class SimpleAimd(CongestionControl):
    """ECN-reacting AIMD: halve on mark (once per RTT), add ``ai`` per RTT.

    ``use_vai_sf=True`` upgrades it with the paper's two mechanisms:
    decreases happen every ``s`` ACKs instead of per RTT, and the additive
    increase is token-scaled when congestion spikes (a new flow joining).
    """

    AI_BYTES = 500.0  # per RTT
    SF_ACKS = 30

    def __init__(self, env: CCEnv, use_vai_sf: bool = False):
        super().__init__(env)
        self.window_bytes = env.line_rate_window_bytes
        self.pacing_rate_bps = None
        self.last_decrease = -1e18
        self.sf = SamplingFrequency(self.SF_ACKS) if use_vai_sf else None
        self.vai = (
            VariableAI(
                VariableAIConfig(
                    token_thresh=env.base_rtt_ns * 1.5,  # congestion = RTT here
                    ai_div=env.base_rtt_ns / 100.0,
                )
            )
            if use_vai_sf
            else None
        )
        self._last_rtt_mark = 0.0

    def on_ack(self, ctx: AckContext) -> None:
        ai = self.AI_BYTES
        if self.vai is not None:
            self.vai.observe(ctx.rtt)
            if ctx.now - self._last_rtt_mark >= self.env.base_rtt_ns:
                self._last_rtt_mark = ctx.now
                self.vai.on_rtt_end(no_congestion=ctx.rtt < self.env.base_rtt_ns * 1.2)
                ai *= self.vai.ai_multiplier(spend=True)
            else:
                ai *= self.vai.ai_multiplier(spend=False)
        congested = ctx.rtt > 1.5 * self.env.base_rtt_ns
        if congested:
            allowed = (
                self.sf.on_ack()
                if self.sf is not None
                else ctx.now - self.last_decrease >= ctx.rtt
            )
            if allowed:
                self.window_bytes = self._clamp_window(self.window_bytes / 2.0)
                self.last_decrease = ctx.now
        else:
            self.window_bytes = self._clamp_window(
                self.window_bytes + ai * ctx.newly_acked / self.window_bytes
            )


def run(use_vai_sf: bool) -> float:
    topo = build_star(8)
    net = topo.network
    receiver = topo.hosts[-1].node_id
    flows = []
    for i in range(8):
        src = topo.hosts[i].node_id
        flow = Flow(i, src, receiver, mb(1), start_time=i * us(20))
        net.add_flow(flow, SimpleAimd(make_env(net, src, receiver), use_vai_sf))
        flows.append(flow)
    mon = GoodputMonitor(net.sim, flows, net.nodes, us(10)).start()
    net.run_until_flows_complete(timeout_ns=us(50_000))
    t, rates = mon.rates_bps()
    jt, jain = jain_series(t, rates, flows)
    return mean_index_after(jt, jain, after_ns=us(140))


def main() -> None:
    plain = run(use_vai_sf=False)
    upgraded = run(use_vai_sf=True)
    print("8-1 staggered incast under a homemade AIMD protocol:")
    print(f"  mean Jain index (plain AIMD):        {plain:.3f}")
    print(f"  mean Jain index (+ VAI + SF):        {upgraded:.3f}")
    print("\nThe mechanisms are protocol-agnostic: the same VariableAI and")
    print("SamplingFrequency objects drive the HPCC and Swift variants.")


if __name__ == "__main__":
    main()
