#!/usr/bin/env python
"""Datacenter tail-latency study: the paper's headline result (Figs. 10-13).

Drives the scaled fat-tree with Facebook-Hadoop-like traffic at 50% load
under HPCC and Swift, with and without Variable AI + Sampling Frequency,
then prints FCT slowdown percentiles per flow-size bucket — the same curves
the paper plots.

The punchline to look for: small flows are unaffected (their slowdown is
queueing-dominated and queues stay small), while the long-flow tail drops
with VAI+SF because starved flows regain their fair share quickly.

Run:  python examples/datacenter_tail_latency.py [workload] [duration_ms]
      workload in {hadoop, websearch, alistorage, websearch+storage}
"""

import sys

from repro.experiments import run_datacenter_cached, scaled_datacenter
from repro.experiments.reporting import format_table
from repro.metrics import slowdown_by_size, summarize, tail_slowdown_above
from repro.units import ms

LONG_FLOW_BYTES = 100_000  # "1 MB" at the scaled preset's x0.1 sizes


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "hadoop"
    duration = ms(float(sys.argv[2])) if len(sys.argv) > 2 else ms(6.0)

    results = {}
    for variant in ("hpcc", "hpcc-vai-sf", "swift", "swift-vai-sf"):
        print(f"running {variant} on {workload} ...", flush=True)
        results[variant] = run_datacenter_cached(
            scaled_datacenter(variant, workload, duration_ns=duration)
        )

    print(f"\n=== {workload} @ 50% load, scaled fat-tree ===\n")
    for variant, result in results.items():
        stats = summarize(result.records)
        tail = tail_slowdown_above(result.records, LONG_FLOW_BYTES, 99.0)
        print(
            f"{variant:13s} flows={result.n_completed:5d} "
            f"median={stats['p50_slowdown']:.2f} p99={stats['p99_slowdown']:.2f} "
            f"long-flow p99={tail:.2f}"
        )

    print("\np99 slowdown by flow-size bucket (rows = bucket upper edge, KB):")
    buckets = {
        v: slowdown_by_size(r.records, percentile=99.0, n_buckets=8)
        for v, r in results.items()
    }
    names = list(results)
    rows = []
    for i in range(len(buckets[names[0]])):
        rows.append(
            (f"{buckets[names[0]][i].size_max_bytes / 1000:.2f}",)
            + tuple(f"{buckets[v][i].slowdown:.2f}" for v in names)
        )
    print(format_table(("size <= KB",) + tuple(names), rows))


if __name__ == "__main__":
    main()
