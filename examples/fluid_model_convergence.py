#!/usr/bin/env python
"""Fluid-model exploration: when does Sampling Frequency converge faster?

Reproduces Fig. 4 (the fairness-difference curve with the paper's
parameters) and then sweeps the sampling interval ``s`` and RTT ``r`` to map
the regime where the paper's initial-slope condition

    1/r < (C1 + C0) / (s * MTU)

holds.  Everything here is closed-form (no packet simulation), so it runs
in milliseconds — a good first stop when sizing ``s`` for a new network.

Run:  python examples/fluid_model_convergence.py
"""

import numpy as np

from repro.core.fluid_model import (
    FluidModelParams,
    fairness_difference,
    fairness_gap_slope_at_zero,
    fig4_series,
    initial_slope_condition,
)
from repro.experiments.reporting import format_table
from repro.units import ns_to_us


def main() -> None:
    # --- Fig. 4 with the paper's caption parameters -----------------------
    t, diff = fig4_series()
    peak_i = int(np.argmax(diff))
    print("Fig. 4 reproduction (r=30 us, s=30, MTU=1000 B, beta=.5, 100/50 Gbps):")
    print(f"  difference at t=0:        {diff[0]:.3f} bytes/ns")
    print(f"  peak difference:          {diff[peak_i]:.3f} bytes/ns "
          f"at t={ns_to_us(t[peak_i]):.1f} us")
    print(f"  difference at t=200 us:   {diff[-1]:.3f} bytes/ns (decaying)")
    print("  (positive = Sampling Frequency is fairer at that instant)\n")

    # --- sweep s: how aggressive can sampling be? -------------------------
    rows = []
    for s in (5, 15, 30, 60, 120, 300, 1000):
        p = FluidModelParams(sampling_acks=s)
        rows.append(
            (
                s,
                "yes" if initial_slope_condition(p) else "no",
                f"{fairness_gap_slope_at_zero(p) * 1e6:+.2f}",
                f"{float(fairness_difference(np.array([50_000.0]), p)[0]):+.3f}",
            )
        )
    print("Sampling-interval sweep (paper RTT and rates):")
    print(
        format_table(
            ("s (ACKs)", "SF wins at t=0?", "slope (B/ns per ms)", "diff @ 50 us"),
            rows,
        )
    )

    # --- sweep r: SF pays off exactly when RTTs are long (congestion) -----
    rows = []
    for r_us in (1, 5, 10, 30, 100):
        p = FluidModelParams(rtt_ns=r_us * 1000.0)
        rows.append((r_us, "yes" if initial_slope_condition(p) else "no"))
    print("\nRTT sweep (s=30): the condition holds once congestion inflates RTTs:")
    print(format_table(("RTT (us)", "SF wins at t=0?"), rows))


if __name__ == "__main__":
    main()
