#!/usr/bin/env python
"""Incast fairness shoot-out: reproduce the paper's Figs. 1/5/6 story.

Runs the 16-1 staggered incast (two 1 MB flows joining every 20 us at
100 Gbps) under every HPCC and Swift variant, then prints the three numbers
the paper's incast figures encode:

* time to converge to a Jain index >= 0.9 after the last flow joins,
* the mean and max bottleneck queue (the latency cost of fairness),
* the finish-time spread (do flows complete together?).

Expected outcome (the paper's Sec. III-E / VI-B-1): the default protocols
converge slowly and late-starting flows finish first; raising AI or using
probabilistic feedback converges fast but queues grow; VAI+SF converges
fast *and* keeps queues near the default level.

Run:  python examples/incast_fairness.py [n_senders]
"""

import sys

from repro.experiments import run_incast_cached, scaled_incast
from repro.experiments.reporting import format_table
from repro.units import ns_to_us

VARIANTS = (
    "hpcc",
    "hpcc-1gbps",
    "hpcc-prob",
    "hpcc-vai-sf",
    "swift",
    "swift-1gbps",
    "swift-prob",
    "swift-vai-sf",
    "dcqcn",
    "dctcp",
    "dctcp-vai-sf",
    "timely",
    "timely-vai-sf",
)


def main() -> None:
    n_senders = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    rows = []
    for variant in VARIANTS:
        result = run_incast_cached(scaled_incast(variant, n_senders))
        conv = result.convergence_ns
        rows.append(
            (
                variant,
                f"{ns_to_us(conv - result.last_start_ns):.0f}" if conv else "never",
                f"{result.queue.mean_bytes / 1000:.1f}",
                f"{result.queue.max_bytes / 1000:.1f}",
                f"{ns_to_us(result.finish_spread_ns()):.0f}",
                f"{result.start_finish_correlation():+.2f}",
            )
        )
    print(f"{n_senders}-to-1 staggered incast, 1 MB flows, 100 Gbps links\n")
    print(
        format_table(
            (
                "variant",
                "convergence (us)",
                "mean queue (KB)",
                "max queue (KB)",
                "finish spread (us)",
                "start/finish corr",
            ),
            rows,
        )
    )
    print(
        "\nReading guide: negative correlation = late flows finish first "
        "(the paper's unfairness signature); VAI+SF should pair a short "
        "convergence time with near-default queues."
    )


if __name__ == "__main__":
    main()
