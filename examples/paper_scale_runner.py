#!/usr/bin/env python
"""Paper-scale campaign runner with cost estimates.

The default presets are scaled for a laptop; this script is the entry point
for running the paper's *full* configurations (Sec. III-D / VI-A) on a big
machine.  Before launching anything it estimates event counts and wall-clock
from the measured event rate, prints the campaign plan, and (unless
``--yes``) asks for confirmation — a 50 ms, 320-host fat-tree trace is
billions of events in pure Python.

Run:  python examples/paper_scale_runner.py --list
      python examples/paper_scale_runner.py --fig 1 --yes
"""

import argparse
import sys
import time

from repro.experiments import ALL_FIGURES
from repro.experiments.reporting import render

#: Measured on this harness (see EXPERIMENTS.md): conservative datapath rate.
EVENTS_PER_SECOND = 400_000.0

#: Rough event counts for each figure at *paper* scale, derived from the
#: traffic volume (packets x hops x ~4 events each).
PAPER_SCALE_EVENTS = {
    "1": 40e6,  # 6 incast runs at 16-1, 1 MB each
    "2": 20e6,
    "3": 20e6,
    "4": 1e3,  # closed-form
    "5": 0.3e9,  # includes 96-1 runs
    "6": 0.3e9,
    "7": 1e5,  # topology build only
    "8": 15e6,
    "9": 15e6,
    "10": 30e9,  # 320 hosts x 100G x 50% x 50 ms, 4 variants
    "11": 30e9,
    "12": 1e3,  # shares fig 10's cache
    "13": 1e3,  # shares fig 11's cache
}


def fmt_duration(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f} s"
    if seconds < 7200:
        return f"{seconds / 60:.1f} min"
    return f"{seconds / 3600:.1f} h"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fig", action="append", dest="figs", metavar="N")
    parser.add_argument("--list", action="store_true", help="show cost table and exit")
    parser.add_argument("--yes", action="store_true", help="skip confirmation")
    args = parser.parse_args()

    if args.list or not args.figs:
        print("Estimated paper-scale cost per figure (pure Python, one core):\n")
        print(f"{'fig':>4}  {'events':>10}  {'est. wall-clock':>16}")
        for fig_id in sorted(ALL_FIGURES, key=int):
            ev = PAPER_SCALE_EVENTS[fig_id]
            print(
                f"{fig_id:>4}  {ev:10.2g}  "
                f"{fmt_duration(ev / EVENTS_PER_SECOND):>16}"
            )
        print(
            "\nFigures 12/13 are free once 10/11 have run in the same process."
            "\nUse --fig N --yes to launch."
        )
        return 0

    total_events = sum(PAPER_SCALE_EVENTS[str(f)] for f in args.figs)
    estimate = total_events / EVENTS_PER_SECOND
    print(
        f"Campaign: figures {args.figs} at paper scale — "
        f"~{total_events:.2g} events, est. {fmt_duration(estimate)}."
    )
    if not args.yes:
        answer = input("Proceed? [y/N] ").strip().lower()
        if answer != "y":
            print("Aborted.")
            return 1

    for fig_id in args.figs:
        fn = ALL_FIGURES.get(str(fig_id))
        if fn is None:
            print(f"unknown figure {fig_id}", file=sys.stderr)
            return 2
        start = time.perf_counter()
        result = fn(scale="paper")
        print(render(result))
        print(f"[figure {fig_id} at paper scale: {fmt_duration(time.perf_counter() - start)}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
