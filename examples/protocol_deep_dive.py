#!/usr/bin/env python
"""Deep dive: watch one starved flow recover, window by window.

The paper's Sec. IV example: two flows share a link fairly until a third
joins at line rate; the multiplicative decrease then leaves the old flows
with a quarter of the link each while the newcomer holds half.  This script
instruments that exact scenario with :class:`repro.sim.FlowTracer` and
prints the window/rate trajectory of the starved flow under default HPCC
versus HPCC + VAI + SF — the mechanism's effect made visible at the
individual-flow level.

It also demonstrates CSV export for offline plotting.

Run:  python examples/protocol_deep_dive.py
"""

from repro.cc import make_cc
from repro.experiments.runner import make_env
from repro.sim import Flow, FlowTracer
from repro.topology import build_star
from repro.units import mb, ns_to_us, us


def run(variant: str):
    topo = build_star(n_senders=3)
    net = topo.network
    dst = topo.hosts[-1].node_id

    flows = []
    # Flows 0 and 1 start together and reach a fair split; flow 2 joins at
    # line rate 100 us later (the Sec. IV thought experiment).
    for i, start in enumerate((0.0, 0.0, us(100))):
        src = topo.hosts[i].node_id
        flow = Flow(i, src, dst, mb(4), start_time=start)
        net.add_flow(flow, make_cc(variant, make_env(net, src, dst)))
        flows.append(flow)

    tracer = FlowTracer(net.sim, topo.hosts, snapshot_interval_ns=us(20)).start()
    net.run_until_flows_complete(timeout_ns=us(20_000))
    return flows, tracer


def describe(variant: str) -> str:
    flows, tracer = run(variant)
    lines = [f"--- {variant} ---"]
    # Window trajectory of flow 0 (an original, soon-starved flow) around
    # the join at t = 100 us.
    snaps = tracer.snapshots_for(0)
    for s in snaps:
        t = ns_to_us(s.time_ns)
        if 60 <= t <= 400 and int(t) % 60 < 20:
            lines.append(
                f"  t={t:6.0f} us  window={s.window_bytes / 1000:7.1f} KB  "
                f"inflight={s.inflight_bytes / 1000:6.1f} KB"
            )
    for f in flows:
        lines.append(
            f"  flow {f.flow_id} (start {ns_to_us(f.start_time):4.0f} us): "
            f"fct = {ns_to_us(f.fct):7.1f} us"
        )
    spread = max(f.finish_time for f in flows) - min(f.finish_time for f in flows)
    lines.append(f"  finish spread: {ns_to_us(spread):.1f} us")
    return "\n".join(lines)


def main() -> None:
    print("Three flows, third joins at line rate at t=100 us (Sec. IV):\n")
    print(describe("hpcc"))
    print()
    print(describe("hpcc-vai-sf"))
    print(
        "\nUnder default HPCC the original flows' windows stay depressed for "
        "hundreds of microseconds after the join; with VAI+SF the AI tokens "
        "minted by the join's queue spike pull them back to the fair share "
        "quickly, so all three flows finish closer together."
    )
    # CSV export for offline analysis:
    _, tracer = run("hpcc-vai-sf")
    csv_text = tracer.to_csv()
    print(f"\nCSV export ({len(csv_text.splitlines()) - 1} flows):")
    print(csv_text.strip())


if __name__ == "__main__":
    main()
