#!/usr/bin/env python
"""Quickstart: build a tiny network, run two congestion-controlled flows,
and watch fairness converge.

This walks the whole public API surface in ~60 lines:

1. wire a topology (:mod:`repro.sim.network` / :mod:`repro.topology`);
2. attach flows with a congestion-control variant (:mod:`repro.cc`);
3. monitor queues and goodput (:mod:`repro.sim.monitor`);
4. compute the paper's metrics (:mod:`repro.metrics`).

Run:  python examples/quickstart.py
"""

from repro.cc import make_cc
from repro.experiments.runner import make_env
from repro.metrics import jain_series
from repro.sim import Flow, GoodputMonitor, QueueMonitor
from repro.topology import build_star
from repro.units import format_bytes, format_time_ns, mb, ns_to_us, us


def main() -> None:
    # A 2-to-1 incast star: two senders, one receiver, one switch,
    # 100 Gbps links with 1 us propagation delay (the paper's testbed).
    topo = build_star(n_senders=2)
    net = topo.network
    receiver = topo.hosts[-1].node_id

    # Flow 0 starts immediately; flow 1 joins 50 us later at line rate —
    # the exact situation that creates unfairness (Sec. IV).
    flows = []
    for i, start_us in enumerate((0.0, 50.0)):
        src = topo.hosts[i].node_id
        env = make_env(net, src, receiver)  # line rate, base RTT, hops, BDP
        cc = make_cc("hpcc-vai-sf", env)  # the paper's mechanism, on HPCC
        flow = Flow(i, src, receiver, size=mb(2), start_time=us(start_us))
        net.add_flow(flow, cc)
        flows.append(flow)

    queue_mon = QueueMonitor(net.sim, topo.bottleneck_ports, interval_ns=us(2)).start()
    rate_mon = GoodputMonitor(net.sim, flows, net.nodes, interval_ns=us(10)).start()

    net.run_until_flows_complete(timeout_ns=us(5_000))

    print("flow completions:")
    for f in flows:
        print(
            f"  flow {f.flow_id}: {format_bytes(f.size)} in "
            f"{format_time_ns(f.fct)} (started at {ns_to_us(f.start_time):g} us)"
        )

    t, rates = rate_mon.rates_bps()
    jt, jain = jain_series(t, rates, flows)
    after_join = jt >= us(50)
    print(f"\nmax bottleneck queue: {format_bytes(queue_mon.max_depth())}")
    print(f"mean Jain index after the second flow joined: "
          f"{jain[after_join].mean():.3f} (1.0 = perfectly fair)")


if __name__ == "__main__":
    main()
