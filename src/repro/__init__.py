"""repro — reproduction of Snyder & Lebeck, "Fast Convergence to Fairness for
Reduced Long Flow Tail Latency in Datacenter Networks" (IPPS 2022).

Public surface:

* :mod:`repro.core` — Variable Additive Increase, Sampling Frequency, and
  the Sec. IV-B fluid convergence model (the paper's contribution);
* :mod:`repro.cc` — HPCC, Swift, DCQCN and the paper's named variants;
* :mod:`repro.sim` — the discrete-event packet-level simulator substrate;
* :mod:`repro.topology` — incast star and fat-tree builders;
* :mod:`repro.workloads` — incast and trace-driven datacenter generators;
* :mod:`repro.metrics` — Jain fairness, FCT slowdown, queue statistics;
* :mod:`repro.experiments` — one entry point per paper figure.
"""

__version__ = "1.0.0"

from . import units

__all__ = ["units", "__version__"]
