"""Sender-side congestion-control protocols and the paper's variants."""

from .base import CCEnv, CongestionControl
from .dcqcn import DcqcnCC, DcqcnConfig
from .dctcp import DctcpCC, DctcpConfig, dctcp_vai_config
from .factory import (
    PAPER_SF_ACKS,
    hpcc_vai_config,
    make_cc,
    needs_red,
    swift_vai_config,
    timely_config,
    timely_vai_config,
    uses_cnp,
    variant_names,
)
from .hpcc import HpccCC, HpccConfig
from .probabilistic import ProbabilisticGate
from .swift import SwiftCC, SwiftConfig
from .timely import TimelyCC, TimelyConfig

__all__ = [
    "CCEnv",
    "CongestionControl",
    "DcqcnCC",
    "DcqcnConfig",
    "DctcpCC",
    "DctcpConfig",
    "HpccCC",
    "HpccConfig",
    "PAPER_SF_ACKS",
    "ProbabilisticGate",
    "SwiftCC",
    "SwiftConfig",
    "TimelyCC",
    "TimelyConfig",
    "dctcp_vai_config",
    "hpcc_vai_config",
    "make_cc",
    "needs_red",
    "swift_vai_config",
    "timely_config",
    "timely_vai_config",
    "uses_cnp",
    "variant_names",
]
