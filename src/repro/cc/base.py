"""Congestion-control interface and shared environment description.

A :class:`CongestionControl` instance is created per flow and attached to the
sender.  The substrate drives it through three callbacks (`on_flow_start`,
`on_ack`, `on_cnp`) and reads back two knobs:

* :attr:`window_bytes` — maximum bytes in flight;
* :attr:`pacing_rate_bps` — optional packet pacing rate (None = unpaced,
  window-limited only).

:class:`CCEnv` captures everything a protocol needs to know about where its
flow runs (line rate, base RTT, hop count, minimum BDP) — the experiment
runner computes it from the topology so protocol code never touches the
network objects.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from ..sim.packet import AckContext


@dataclass
class CCEnv:
    """Per-flow environment facts used to parameterize protocols.

    Attributes
    ----------
    line_rate_bps:
        The sender NIC's line rate; new flows start at this rate (RDMA
        convention the paper builds on).
    base_rtt_ns:
        Unloaded round-trip estimate for the flow's path.
    mtu_bytes:
        Payload bytes per full packet.
    hops:
        Switch egress hops on the forward path (for Swift's topology-based
        target scaling).
    min_bdp_bytes:
        The network's minimum bandwidth-delay product — VAI's Token_Thresh
        for HPCC.
    rng:
        Seeded RNG (probabilistic feedback variants).
    """

    line_rate_bps: float
    base_rtt_ns: float
    mtu_bytes: int = 1000
    hops: int = 2
    min_bdp_bytes: float = 0.0
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def __post_init__(self) -> None:
        if self.line_rate_bps <= 0:
            raise ValueError("line_rate_bps must be positive")
        if self.base_rtt_ns <= 0:
            raise ValueError("base_rtt_ns must be positive")
        if self.mtu_bytes <= 0:
            raise ValueError("mtu_bytes must be positive")

    @property
    def line_rate_window_bytes(self) -> float:
        """Line-rate BDP: the window that fills the path at line rate."""
        return self.line_rate_bps / 8.0 * self.base_rtt_ns / 1e9


class CongestionControl(ABC):
    """Sender-side congestion control for one flow."""

    def __init__(self, env: CCEnv):
        self.env = env
        self.window_bytes: float = env.line_rate_window_bytes
        self.pacing_rate_bps: Optional[float] = None
        self._sender = None  # SenderState, set by bind()
        self._host = None  # Host, set by bind()

    def bind(self, sender_state, host) -> None:
        """Attach the sender-side state and host (called by the substrate).

        Protocols use the sender's ``next_seq`` to detect per-RTT update
        boundaries exactly as the HPCC pseudocode does (``lastUpdateSeq =
        snd_nxt``), and the host's simulator for protocol timers (DCQCN).
        """
        self._sender = sender_state
        self._host = host

    @property
    def snd_nxt(self) -> int:
        """The sender's next unsent sequence number (0 before binding)."""
        return self._sender.next_seq if self._sender is not None else 0

    @property
    def flow_id(self) -> int:
        """The bound flow's id (-1 before binding; used as a trace label)."""
        return self._sender.flow.flow_id if self._sender is not None else -1

    def on_flow_start(self, now: float) -> None:
        """Called when the flow begins transmitting (default: nothing)."""

    @abstractmethod
    def on_ack(self, ctx: AckContext) -> None:
        """React to one acknowledgement."""

    def on_cnp(self, now: float) -> None:
        """React to a DCQCN congestion-notification packet (default: no-op)."""

    def on_timeout(self, now: float) -> None:
        """React to a sender retransmission timeout (default: no-op).

        Only invoked when the host has loss recovery enabled (faulty-fabric
        experiments).  The substrate already applies go-back-N with
        exponential RTO backoff; protocols may additionally cut their
        window/rate here.  The default leaves the window untouched so that
        the paper's protocols behave identically on the lossless fabric.
        """

    # -- shared helpers ---------------------------------------------------------

    def _clamp_window(self, w: float) -> float:
        """Clamp a window to [one packet, line-rate BDP]."""
        lo = float(self.env.mtu_bytes)
        hi = self.env.line_rate_window_bytes
        if w < lo:
            return lo
        if w > hi:
            return hi
        return w

    @property
    def rate_estimate_bps(self) -> float:
        """Window expressed as a rate over the base RTT (for monitoring)."""
        return self.window_bytes * 8.0 / self.env.base_rtt_ns * 1e9
