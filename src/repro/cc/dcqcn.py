"""DCQCN (Zhu et al., SIGCOMM 2015): the paper's fairness reference point.

DCQCN is rate-based.  Switches RED-mark packets (probabilistically, which is
exactly the "probabilistic feedback" property Sec. III-C credits for DCQCN's
fairness); receivers convert marks into at most one CNP per 50 us; senders
react:

* **On CNP** — ``target = current``; ``current *= (1 - alpha/2)``;
  ``alpha = (1 - g) * alpha + g``; all increase state resets.
* **Alpha decay** — every ``alpha_timer_ns`` without a CNP,
  ``alpha *= (1 - g)``.
* **Rate increase** — two independent clocks (a timer and a byte counter)
  each count stages since the last decrease; per increase event:
  fast recovery (``current = (target + current)/2``) while
  ``max(stages) < F``; additive (``target += R_AI``) while
  ``min(stages) <= F``; hyper (``target += R_HAI``) beyond that.

The byte counter is driven from acknowledged bytes (equal to sent bytes in
steady state; the sender-side simulator exposes ACKs, not NIC egress — noted
in DESIGN.md).  DCQCN uses no window: the flow is purely paced, and
``window_bytes`` is set effectively unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.packet import AckContext
from ..units import mbps, us
from .base import CCEnv, CongestionControl


@dataclass
class DcqcnConfig:
    """DCQCN parameters (defaults follow the DCQCN paper / common practice)."""

    g: float = 1.0 / 16.0
    alpha_timer_ns: float = us(55.0)
    increase_timer_ns: float = us(55.0)
    byte_counter_bytes: float = 10_000_000.0
    fast_recovery_stages: int = 5  # F
    ai_rate_bps: float = mbps(40.0)
    hai_rate_bps: float = mbps(1000.0)
    min_rate_bps: float = mbps(10.0)

    def __post_init__(self) -> None:
        if not 0 < self.g < 1:
            raise ValueError(f"g must be in (0, 1), got {self.g}")
        if self.fast_recovery_stages < 1:
            raise ValueError("fast_recovery_stages must be >= 1")


class DcqcnCC(CongestionControl):
    """One DCQCN reaction-point instance (per flow)."""

    def __init__(self, env: CCEnv, config: Optional[DcqcnConfig] = None):
        super().__init__(env)
        self.config = config or DcqcnConfig()
        self.current_rate_bps = env.line_rate_bps  # RC: start at line rate
        self.target_rate_bps = env.line_rate_bps  # RT
        self.alpha = 1.0
        self.pacing_rate_bps = self.current_rate_bps
        self.window_bytes = float("inf")  # purely rate-based
        self.timer_stage = 0
        self.byte_stage = 0
        self._bytes_since_stage = 0.0
        self._cnp_since_alpha_timer = False
        self._alpha_event = None
        self._increase_event = None
        self.cnps_received = 0

    # -- lifecycle ---------------------------------------------------------------

    def on_flow_start(self, now: float) -> None:
        self._arm_timers()

    def _sim(self):
        if self._host is None:
            raise RuntimeError("DCQCN needs bind() before timers can run")
        return self._host.sim

    def _arm_timers(self) -> None:
        sim = self._sim()
        cfg = self.config
        self._cancel(self._alpha_event)
        self._cancel(self._increase_event)
        self._alpha_event = sim.schedule(cfg.alpha_timer_ns, self._alpha_timer)
        self._increase_event = sim.schedule(cfg.increase_timer_ns, self._increase_timer)

    @staticmethod
    def _cancel(event) -> None:
        if event is not None:
            event.cancel()

    # -- decrease ------------------------------------------------------------------

    def on_cnp(self, now: float) -> None:
        cfg = self.config
        self.cnps_received += 1
        self.target_rate_bps = self.current_rate_bps
        self.current_rate_bps = max(
            self.current_rate_bps * (1.0 - self.alpha / 2.0), cfg.min_rate_bps
        )
        self.alpha = (1.0 - cfg.g) * self.alpha + cfg.g
        self._cnp_since_alpha_timer = True
        self.timer_stage = 0
        self.byte_stage = 0
        self._bytes_since_stage = 0.0
        self.pacing_rate_bps = self.current_rate_bps
        self._arm_timers()

    # -- increase --------------------------------------------------------------------

    def _alpha_timer(self) -> None:
        cfg = self.config
        if not self._cnp_since_alpha_timer:
            self.alpha = (1.0 - cfg.g) * self.alpha
        self._cnp_since_alpha_timer = False
        self._alpha_event = self._sim().schedule(cfg.alpha_timer_ns, self._alpha_timer)

    def _increase_timer(self) -> None:
        self.timer_stage += 1
        self._increase_event = self._sim().schedule(
            self.config.increase_timer_ns, self._increase_timer
        )
        self._apply_increase()

    def on_ack(self, ctx: AckContext) -> None:
        self._bytes_since_stage += ctx.newly_acked
        if self._bytes_since_stage >= self.config.byte_counter_bytes:
            self._bytes_since_stage -= self.config.byte_counter_bytes
            self.byte_stage += 1
            self._apply_increase()

    def _apply_increase(self) -> None:
        cfg = self.config
        line = self.env.line_rate_bps
        lo, hi = sorted((self.timer_stage, self.byte_stage))
        if lo > cfg.fast_recovery_stages:
            self.target_rate_bps = min(self.target_rate_bps + cfg.hai_rate_bps, line)
        elif hi > cfg.fast_recovery_stages:
            self.target_rate_bps = min(self.target_rate_bps + cfg.ai_rate_bps, line)
        # Fast recovery: target unchanged; current halves the gap each event.
        self.current_rate_bps = min(
            (self.target_rate_bps + self.current_rate_bps) / 2.0, line
        )
        self.pacing_rate_bps = self.current_rate_bps
