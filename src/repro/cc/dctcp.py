"""DCTCP: ECN-fraction congestion control (Alizadeh et al., SIGCOMM 2010),
with the paper's VAI/SF extension hooks.

The paper cites DCTCP [5] as the origin of severity-scaled multiplicative
decrease ("protocols also scale the multiplicative decrease factor with the
extent of congestion", Sec. III-A).  As a window-based, ECN-driven protocol
it is the third structural family (after INT-based HPCC and delay-based
Swift) on which we demonstrate that Variable AI and Sampling Frequency
compose with sender-side protocols generally.

Algorithm (DCTCP paper, Sec. 3):

* switches mark packets whose enqueue finds the queue above a threshold
  (our RED config with ``kmin == kmax`` degenerates to the DCTCP step mark;
  the standard smooth RED profile works too);
* the sender maintains ``alpha``, an EWMA of the fraction ``F`` of marked
  bytes per window/RTT: ``alpha = (1 - g) alpha + g F``;
* once per RTT, if any byte was marked: ``cwnd *= 1 - alpha / 2``;
* otherwise the window grows additively (``ai_bytes`` per RTT, applied
  per-ACK scaled — the standard congestion-avoidance shape).

Extension hooks: VAI's congestion measurement is the marked fraction ``F``
(unit-agnostic, threshold defaults to 0.5); SF gates window decreases every
``s`` ACKs with HPCC-style reference-window semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.sampling_frequency import SamplingFrequency
from ..core.variable_ai import VariableAI, VariableAIConfig
from ..sim.packet import AckContext
from ..units import mbps
from .base import CCEnv, CongestionControl


@dataclass
class DctcpConfig:
    """DCTCP knobs (g from the DCTCP paper; AI as a rate like the others)."""

    g: float = 1.0 / 16.0
    ai_rate_bps: float = mbps(50.0)
    sampling_acks: Optional[int] = None
    vai: Optional[VariableAIConfig] = None

    def __post_init__(self) -> None:
        if not 0 < self.g <= 1:
            raise ValueError(f"g must be in (0, 1], got {self.g}")
        if self.ai_rate_bps < 0:
            raise ValueError("ai_rate_bps must be non-negative")


def dctcp_vai_config() -> VariableAIConfig:
    """Variable AI for DCTCP: congestion is the marked-byte fraction.

    Token_Thresh = 0.5 (half the window marked — the signature of a freshly
    joined line-rate flow); AI_DIV mints up to ~100 tokens at F = 1.
    """
    return VariableAIConfig(
        token_thresh=0.5,
        ai_div=0.01,
        bank_cap=1000.0,
        ai_cap=100.0,
        dampener_constant=8.0,
    )


class DctcpCC(CongestionControl):
    """One DCTCP sender instance (per flow)."""

    def __init__(self, env: CCEnv, config: Optional[DctcpConfig] = None):
        super().__init__(env)
        self.config = config or DctcpConfig()
        init = env.line_rate_window_bytes  # RDMA convention: line-rate start
        self.cwnd = init
        self.reference_cwnd = init
        self.window_bytes = init
        self.pacing_rate_bps = None
        self.alpha = 1.0  # start conservative, like DCQCN
        self.base_ai_bytes = self.config.ai_rate_bps / 8.0 * env.base_rtt_ns / 1e9
        self._acked_bytes_rtt = 0
        self._marked_bytes_rtt = 0
        self._last_rtt_mark_seq = 0
        self.sf = (
            SamplingFrequency(self.config.sampling_acks)
            if self.config.sampling_acks
            else None
        )
        self._sf_credit = False
        self._decrease_armed = False  # one decrease per RTT without SF
        self.vai = VariableAI(self.config.vai) if self.config.vai else None
        self._ai_multiplier = 1.0
        # Introspection.
        self.decreases = 0
        self.last_fraction = 0.0

    def on_ack(self, ctx: AckContext) -> None:
        cfg = self.config
        self._acked_bytes_rtt += ctx.newly_acked
        if ctx.ece:
            self._marked_bytes_rtt += ctx.newly_acked
        if self.sf is not None and self.sf.on_ack():
            self._sf_credit = True

        rtt_boundary = ctx.ack_seq > self._last_rtt_mark_seq
        if rtt_boundary:
            self._end_rtt(ctx)

        if self.sf is not None:
            # SF mode: per-ACK decreases from the reference window, reference
            # updates on the sampling schedule (Sec. V-B semantics).
            if ctx.ece:
                candidate = self.reference_cwnd * (1.0 - self.alpha / 2.0)
                if candidate < self.cwnd:
                    self.cwnd = candidate
                if self._sf_credit:
                    self.reference_cwnd = self._clamp_window(self.cwnd)
                    self._sf_credit = False
                    self.decreases += 1
            else:
                self._additive_increase(ctx.newly_acked)
        else:
            if not ctx.ece:
                self._additive_increase(ctx.newly_acked)
            # Decrease at most once per RTT, on the first marked ACK.
            elif self._decrease_armed:
                self.cwnd *= 1.0 - self.alpha / 2.0
                self._decrease_armed = False
                self.decreases += 1

        self.window_bytes = self._clamp_window(self.cwnd)
        self.cwnd = self.window_bytes

    def _additive_increase(self, newly_acked: int) -> None:
        if newly_acked <= 0:
            return
        ai = self._ai_multiplier * self.base_ai_bytes
        denom = max(self.cwnd, float(self.env.mtu_bytes))
        self.cwnd += ai * newly_acked / denom

    def _end_rtt(self, ctx: AckContext) -> None:
        cfg = self.config
        self._last_rtt_mark_seq = max(self.snd_nxt, ctx.ack_seq)
        if self._acked_bytes_rtt > 0:
            fraction = self._marked_bytes_rtt / self._acked_bytes_rtt
            self.last_fraction = fraction
            self.alpha = (1.0 - cfg.g) * self.alpha + cfg.g * fraction
            if self.vai is not None:
                self.vai.observe(fraction)
                self.vai.on_rtt_end(no_congestion=fraction == 0.0)
                self._ai_multiplier = self.vai.ai_multiplier(spend=True)
        self._acked_bytes_rtt = 0
        self._marked_bytes_rtt = 0
        self._decrease_armed = True
        if self.sf is not None and self.cwnd > self.reference_cwnd:
            self.reference_cwnd = self._clamp_window(self.cwnd)
