"""Variant registry: build the paper's named protocol configurations.

The evaluation compares these named variants (figure legends in the paper):

========================  ==================================================
Name                      Meaning
========================  ==================================================
``hpcc``                  default HPCC (AI = 50 Mb/s, eta = 0.95, stage 5)
``hpcc-1gbps``            HPCC with AI raised to 1 Gb/s (Sec. III-D)
``hpcc-prob``             HPCC with probabilistic feedback (Sec. III-D)
``hpcc-vai-sf``           HPCC + Variable AI + Sampling Frequency (ours)
``hpcc-vai``              ablation: Variable AI only
``hpcc-sf``               ablation: Sampling Frequency only
``swift``                 default Swift (AI = 50 Mb/s, beta = .8, FBS on)
``swift-1gbps``           Swift with AI raised to 1 Gb/s
``swift-prob``            Swift with probabilistic feedback
``swift-vai-sf``          Swift + VAI + SF (FBS off, reference rate,
                          always-AI — Sec. V-B / VI-B)
``swift-vai``             ablation: Variable AI only
``swift-sf``              ablation: Sampling Frequency only
``dcqcn``                 DCQCN baseline (needs RED-enabled switches)
========================  ==================================================

Paper constants (Sec. VI-A): SF interval 30 ACKs; HPCC Token_Thresh =
network min BDP, 1 token/KB, bank 1000, spend cap 100; Swift Token_Thresh =
target delay + min-BDP delay, 1 token/30 ns; dampener constant 8 for both.
"""

from __future__ import annotations

from typing import List

from ..core.variable_ai import VariableAIConfig
from ..units import gbps, mbps, us
from .base import CCEnv, CongestionControl
from .dcqcn import DcqcnCC
from .dctcp import DctcpCC, DctcpConfig, dctcp_vai_config
from .hpcc import HpccCC, HpccConfig
from .swift import SwiftCC, SwiftConfig
from .timely import TimelyCC, TimelyConfig

#: Sampling Frequency interval used throughout the paper's evaluation.
PAPER_SF_ACKS = 30
#: Variable AI constants (Sec. VI-A).
PAPER_BANK_CAP = 1000.0
PAPER_AI_CAP = 100.0
PAPER_DAMPENER_CONSTANT = 8.0
#: The paper's link speed; its absolute constants (AI = 50 Mb/s, 1 token/KB,
#: 1 token/30 ns) are converted into dimensionless ratios against this so
#: that scaled-down presets preserve the protocols' *relative* dynamics.
PAPER_LINE_RATE_BPS = gbps(100.0)
#: HPCC mints min-BDP/50 KB-worth of tokens per threshold crossing at paper
#: scale (Token_Thresh = 50 KB, AI_DIV = 1 KB/token -> ratio 50).
PAPER_HPCC_THRESH_TO_DIV = 50.0
#: Swift: min-BDP delay 4 us / 30 ns per token -> ratio 133.33.
PAPER_SWIFT_BDP_DELAY_TO_DIV = 4000.0 / 30.0


def scaled_ai_rate_bps(env: CCEnv, nominal_bps: float) -> float:
    """Scale a paper AI rate with the line rate (no-op at 100 Gbps)."""
    return nominal_bps * env.line_rate_bps / PAPER_LINE_RATE_BPS


def hpcc_vai_config(env: CCEnv) -> VariableAIConfig:
    """Variable AI configuration for HPCC: thresholds in queue bytes.

    At paper scale (min BDP = 50 KB) this is exactly Sec. VI-A: Token_Thresh
    = 50 KB, AI_DIV = 1 KB/token; scaled presets keep the 50:1 ratio.
    """
    thresh = env.min_bdp_bytes if env.min_bdp_bytes > 0 else env.line_rate_window_bytes
    return VariableAIConfig(
        token_thresh=thresh,
        ai_div=thresh / PAPER_HPCC_THRESH_TO_DIV,
        bank_cap=PAPER_BANK_CAP,
        ai_cap=PAPER_AI_CAP,
        dampener_constant=PAPER_DAMPENER_CONSTANT,
    )


def swift_vai_config(env: CCEnv, swift_cfg: SwiftConfig) -> VariableAIConfig:
    """Variable AI configuration for Swift: thresholds in RTT nanoseconds.

    Token_Thresh is the (FBS-free) target delay plus the delay the minimum
    BDP adds when queued at line rate (Sec. V-A / VI-A: "4 us plus target
    delay", 1 token / 30 ns at paper scale; scaled presets keep the ratio of
    BDP-delay to AI_DIV).
    """
    target = swift_cfg.base_target_ns + swift_cfg.per_hop_ns * env.hops
    bdp = env.min_bdp_bytes if env.min_bdp_bytes > 0 else env.line_rate_window_bytes
    bdp_delay_ns = bdp * 8.0 / env.line_rate_bps * 1e9
    return VariableAIConfig(
        token_thresh=target + bdp_delay_ns,
        ai_div=bdp_delay_ns / PAPER_SWIFT_BDP_DELAY_TO_DIV,
        bank_cap=PAPER_BANK_CAP,
        ai_cap=PAPER_AI_CAP,
        dampener_constant=PAPER_DAMPENER_CONSTANT,
    )


def _swift_base(env: CCEnv, fs_max_cwnd: float, ai_rate_bps: float) -> SwiftConfig:
    return SwiftConfig(fs_max_cwnd_pkts=fs_max_cwnd, ai_rate_bps=ai_rate_bps)


def make_cc(
    variant: str,
    env: CCEnv,
    *,
    fs_max_cwnd_pkts: float = 100.0,
    sampling_acks: int = PAPER_SF_ACKS,
) -> CongestionControl:
    """Instantiate a fresh congestion-control object for one flow.

    Parameters
    ----------
    variant:
        One of the registry names (see module docstring).
    env:
        Per-flow environment (line rate, base RTT, hops, min BDP, rng).
    fs_max_cwnd_pkts:
        Swift FBS max scaling window; the paper uses 100 packets on the
        fat-tree and 50 on the single-switch topology.
    sampling_acks:
        SF interval for the ``*-sf`` variants (paper: 30).
    """
    v = variant.lower()
    base_ai = scaled_ai_rate_bps(env, mbps(50.0))
    high_ai = scaled_ai_rate_bps(env, gbps(1.0))
    if v == "hpcc":
        return HpccCC(env, HpccConfig(ai_rate_bps=base_ai))
    if v == "hpcc-1gbps":
        return HpccCC(env, HpccConfig(ai_rate_bps=high_ai))
    if v == "hpcc-prob":
        return HpccCC(env, HpccConfig(ai_rate_bps=base_ai, probabilistic=True))
    if v == "hpcc-vai-sf":
        return HpccCC(
            env,
            HpccConfig(
                ai_rate_bps=base_ai,
                sampling_acks=sampling_acks,
                vai=hpcc_vai_config(env),
            ),
        )
    if v == "hpcc-vai":
        return HpccCC(env, HpccConfig(ai_rate_bps=base_ai, vai=hpcc_vai_config(env)))
    if v == "hpcc-sf":
        return HpccCC(env, HpccConfig(ai_rate_bps=base_ai, sampling_acks=sampling_acks))
    if v == "swift":
        return SwiftCC(env, _swift_base(env, fs_max_cwnd_pkts, base_ai))
    if v == "swift-1gbps":
        cfg = _swift_base(env, fs_max_cwnd_pkts, high_ai)
        return SwiftCC(env, cfg)
    if v == "swift-prob":
        cfg = _swift_base(env, fs_max_cwnd_pkts, base_ai)
        cfg.probabilistic = True
        return SwiftCC(env, cfg)
    if v == "swift-vai-sf":
        cfg = SwiftConfig(
            ai_rate_bps=base_ai,
            use_fbs=False,  # Sec. VI-B-1: the VAI SF variant does not use FBS
            sampling_acks=sampling_acks,
            use_reference_rate=True,
            always_ai=True,
        )
        cfg.vai = swift_vai_config(env, cfg)
        return SwiftCC(env, cfg)
    if v == "swift-vai":
        cfg = _swift_base(env, fs_max_cwnd_pkts, base_ai)
        cfg.vai = swift_vai_config(env, cfg)
        return SwiftCC(env, cfg)
    if v == "swift-sf":
        cfg = _swift_base(env, fs_max_cwnd_pkts, base_ai)
        cfg.sampling_acks = sampling_acks
        cfg.use_reference_rate = True
        return SwiftCC(env, cfg)
    if v == "dcqcn":
        return DcqcnCC(env)
    if v == "dctcp":
        return DctcpCC(env, DctcpConfig(ai_rate_bps=base_ai))
    if v == "dctcp-vai-sf":
        return DctcpCC(
            env,
            DctcpConfig(
                ai_rate_bps=base_ai,
                sampling_acks=sampling_acks,
                vai=dctcp_vai_config(),
            ),
        )
    if v == "timely":
        return TimelyCC(env, timely_config(env, base_ai))
    if v == "timely-vai-sf":
        cfg = timely_config(env, base_ai)
        cfg.sampling_acks = sampling_acks
        cfg.vai = timely_vai_config(env, cfg)
        return TimelyCC(env, cfg)
    raise ValueError(f"unknown congestion-control variant {variant!r}")


def timely_config(env: CCEnv, delta_bps: float) -> TimelyConfig:
    """TIMELY thresholds scaled to the flow's path: T_low just above the
    unloaded RTT, T_high a few BDPs of queueing beyond it."""
    return TimelyConfig(
        delta_bps=delta_bps,
        t_low_ns=env.base_rtt_ns * 1.1,
        t_high_ns=env.base_rtt_ns * 1.1 + 5.0 * _bdp_delay_ns(env),
    )


def timely_vai_config(env: CCEnv, timely_cfg: TimelyConfig) -> VariableAIConfig:
    """Variable AI for TIMELY: RTT-based, like Swift's (Sec. V-A)."""
    bdp_delay = _bdp_delay_ns(env)
    return VariableAIConfig(
        token_thresh=timely_cfg.t_low_ns + bdp_delay,
        ai_div=bdp_delay / PAPER_SWIFT_BDP_DELAY_TO_DIV,
        bank_cap=PAPER_BANK_CAP,
        ai_cap=PAPER_AI_CAP,
        dampener_constant=PAPER_DAMPENER_CONSTANT,
    )


def _bdp_delay_ns(env: CCEnv) -> float:
    bdp = env.min_bdp_bytes if env.min_bdp_bytes > 0 else env.line_rate_window_bytes
    return bdp * 8.0 / env.line_rate_bps * 1e9


def variant_names() -> List[str]:
    """All registry names (stable order, for CLI help and tests)."""
    return [
        "hpcc",
        "hpcc-1gbps",
        "hpcc-prob",
        "hpcc-vai-sf",
        "hpcc-vai",
        "hpcc-sf",
        "swift",
        "swift-1gbps",
        "swift-prob",
        "swift-vai-sf",
        "swift-vai",
        "swift-sf",
        "dcqcn",
        "dctcp",
        "dctcp-vai-sf",
        "timely",
        "timely-vai-sf",
    ]


def uses_cnp(variant: str) -> bool:
    """True when flows of this variant need receiver-side CNP generation."""
    return variant.lower() == "dcqcn"


def needs_red(variant: str) -> bool:
    """True when the variant needs RED/ECN marking enabled on switches."""
    return variant.lower() in ("dcqcn", "dctcp", "dctcp-vai-sf")
