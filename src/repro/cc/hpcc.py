"""HPCC: High Precision Congestion Control (Li et al., SIGCOMM 2019),
with the paper's Variable AI, Sampling Frequency, and probabilistic-feedback
extensions.

Baseline algorithm (HPCC paper, Alg. 1; parameters from Sec. III-D here —
``eta = 0.95``, ``maxStage = 5``, AI = 50 Mb/s):

* Every ACK carries per-hop INT.  ``MeasureInflight`` estimates the most
  utilized hop: ``u = qlen / (B * T) + txRate / B`` per hop, EWMA-blended
  into ``U`` with weight ``tau / T`` (``tau`` = telemetry interval, ``T`` =
  base RTT).
* ``ComputeWind``: if ``U >= eta`` or the additive-increase probation ran out
  (``incStage >= maxStage``), the window moves *multiplicatively* toward
  ``Wc / (U / eta)`` plus the additive ``W_AI``; otherwise it probes
  additively ``Wc + W_AI``.
* The **reference window** ``Wc`` updates at most once per RTT (detected by
  ``ack.seq > lastUpdateSeq``); per-ACK recomputations always start from
  ``Wc``, so reacting to many ACKs in one RTT cannot compound.

Paper extensions (all optional, default off):

* **Sampling Frequency** — reference-window *decreases* are instead permitted
  every ``s`` ACKs (30 in the paper); increases stay per-RTT (Sec. V-B).
* **Variable AI** — ``W_AI`` is scaled by the token multiplier of
  :class:`repro.core.variable_ai.VariableAI`; tokens are minted from the
  maximum INT queue depth seen over an RTT (Token_Thresh = network min BDP)
  and the dampener resets only after an RTT whose every multiplicative
  factor ``C = U / eta`` stayed <= 1 (Sec. V-A).
* **Probabilistic feedback** — reference-updating decreases are gated by
  :class:`repro.cc.probabilistic.ProbabilisticGate` (Sec. III-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.sampling_frequency import SamplingFrequency
from ..core.variable_ai import VariableAI, VariableAIConfig
from ..obs import registry as obs_registry
from ..obs import tracer as obs_tracer
from ..sim.packet import AckContext, HopRecord
from ..units import mbps
from .base import CCEnv, CongestionControl
from .probabilistic import ProbabilisticGate


@dataclass
class HpccConfig:
    """HPCC knobs; defaults are the paper's "default HPCC"."""

    eta: float = 0.95
    max_stage: int = 5
    ai_rate_bps: float = mbps(50.0)
    sampling_acks: Optional[int] = None  # Sampling Frequency interval (None = off)
    vai: Optional[VariableAIConfig] = None  # Variable AI (None = off)
    probabilistic: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.eta <= 1:
            raise ValueError(f"eta must be in (0, 1], got {self.eta}")
        if self.max_stage < 1:
            raise ValueError(f"max_stage must be >= 1, got {self.max_stage}")
        if self.ai_rate_bps < 0:
            raise ValueError("ai_rate_bps must be non-negative")


class HpccCC(CongestionControl):
    """One HPCC sender instance (per flow)."""

    def __init__(self, env: CCEnv, config: Optional[HpccConfig] = None):
        super().__init__(env)
        self.config = config or HpccConfig()
        # Windows: start at line rate (RDMA convention; HPCC's Winit).
        init = env.line_rate_window_bytes
        self.reference_window = init
        self.window_bytes = init
        self.pacing_rate_bps = env.line_rate_bps
        # W_AI in bytes: the paper expresses AI as a rate over the base RTT.
        self.base_ai_bytes = self.config.ai_rate_bps / 8.0 * env.base_rtt_ns / 1e9
        self.utilization = 0.0  # EWMA'd U
        self.inc_stage = 0
        self.last_update_seq = 0
        self._last_int: Optional[List[HopRecord]] = None
        # Extensions.
        self.sf = (
            SamplingFrequency(self.config.sampling_acks)
            if self.config.sampling_acks
            else None
        )
        self._sf_credit = False
        self.vai = VariableAI(self.config.vai) if self.config.vai else None
        self._max_c_in_rtt = 0.0
        self.gate = ProbabilisticGate(env.rng) if self.config.probabilistic else None
        # Introspection counters.
        self.reference_decreases = 0
        self.reference_increases = 0

    # -- telemetry ----------------------------------------------------------------

    def _measure_inflight(self, ctx: AckContext) -> Optional[float]:
        """HPCC's MeasureInflight: EWMA utilization of the max-utilized hop.

        Returns the updated ``U`` or None when this ACK carries no usable
        telemetry (first ACK, or path-change transient).
        """
        records = ctx.int_records
        if not records:
            return None
        prev = self._last_int
        self._last_int = records
        if prev is None or len(prev) != len(records):
            return None
        T = self.env.base_rtt_ns
        u_max = 0.0
        tau = 0.0
        for last, cur in zip(prev, records):
            bytes_per_ns = cur.rate_bps / 8.0 / 1e9
            dt = cur.ts - last.ts
            if dt > 0:
                tx_rate = (cur.tx_bytes - last.tx_bytes) / dt  # bytes/ns
                u = min(cur.qlen, last.qlen) / (bytes_per_ns * T) + tx_rate / bytes_per_ns
            else:
                u = cur.qlen / (bytes_per_ns * T)
            if u > u_max:
                u_max = u
                tau = dt
        tau = min(max(tau, 0.0), T)
        alpha = tau / T
        self.utilization = (1.0 - alpha) * self.utilization + alpha * u_max
        return self.utilization

    # -- main reaction ------------------------------------------------------------

    def on_ack(self, ctx: AckContext) -> None:
        cfg = self.config
        rtt_boundary = ctx.ack_seq > self.last_update_seq
        if self.sf is not None and self.sf.on_ack():
            self._sf_credit = True

        u = self._measure_inflight(ctx)
        if u is None:
            if rtt_boundary:
                self._end_rtt(ctx)
            return

        if self.vai is not None and ctx.int_records:
            self.vai.observe(max(rec.qlen for rec in ctx.int_records))

        norm = u / cfg.eta  # the paper's C: > 1 means decrease
        if norm > self._max_c_in_rtt:
            self._max_c_in_rtt = norm

        if u >= cfg.eta or self.inc_stage >= cfg.max_stage:
            is_decrease = norm > 1.0
            if is_decrease:
                update_ref = self._sf_credit if self.sf is not None else rtt_boundary
            else:
                update_ref = rtt_boundary
            if (
                is_decrease
                and update_ref
                and self.gate is not None
                and not self.gate.allow(
                    self.reference_window, self.env.line_rate_window_bytes
                )
            ):
                # Feedback disregarded: no reaction at all this update slot.
                if is_decrease and self.sf is not None:
                    self._sf_credit = False
                if rtt_boundary:
                    self._end_rtt(ctx)
                return
            w_ai = self._current_ai_bytes(spend=update_ref)
            w = self.reference_window / norm + w_ai
            if update_ref:
                self.inc_stage = 0
                self.reference_window = self._clamp_window(w)
                if is_decrease:
                    self.reference_decreases += 1
                    if self.sf is not None:
                        self._sf_credit = False
                    reg = obs_registry.STATS
                    if reg is not None:
                        reg.counter("cc.hpcc.reference_decreases").inc()
                    tr = obs_tracer.TRACER
                    if tr is not None:
                        tr.instant(
                            f"hpcc md flow {self.flow_id}",
                            ctx.now,
                            cat="cc",
                            tid=self.flow_id,
                            args={"norm": norm, "ref_window": self.reference_window},
                        )
                else:
                    self.reference_increases += 1
                    reg = obs_registry.STATS
                    if reg is not None:
                        reg.counter("cc.hpcc.reference_increases").inc()
        else:
            update_ref = rtt_boundary
            w_ai = self._current_ai_bytes(spend=update_ref)
            w = self.reference_window + w_ai
            if update_ref:
                self.inc_stage += 1
                self.reference_window = self._clamp_window(w)
                self.reference_increases += 1
                reg = obs_registry.STATS
                if reg is not None:
                    reg.counter("cc.hpcc.reference_increases").inc()

        self.window_bytes = self._clamp_window(w)
        self.pacing_rate_bps = self.window_bytes * 8.0 / self.env.base_rtt_ns * 1e9
        if rtt_boundary:
            self._end_rtt(ctx)

    def _end_rtt(self, ctx: AckContext) -> None:
        """Per-RTT bookkeeping: advance the boundary, run VAI Algorithm 1."""
        self.last_update_seq = max(self.snd_nxt, ctx.ack_seq)
        if self.vai is not None:
            self.vai.on_rtt_end(no_congestion=self._max_c_in_rtt <= 1.0)
        self._max_c_in_rtt = 0.0

    def _current_ai_bytes(self, spend: bool) -> float:
        if self.vai is None:
            return self.base_ai_bytes
        return self.vai.ai_multiplier(spend=spend) * self.base_ai_bytes
