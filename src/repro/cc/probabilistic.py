"""Probabilistic feedback gate (Sec. III-D).

To demonstrate that deterministic feedback is a source of unfairness, the
paper modifies HPCC and Swift to sometimes *ignore* congestion feedback,
with the ignore probability a linear function of the current window:

    feedback is disregarded when  Current Window < (rand() % Max Window)

i.e. feedback is *used* with probability ``window / max_window`` — a flow at
its maximum window always reacts, a starved flow almost never does, so big
flows decrease more often and fairness improves (mimicking DCQCN's RED).
The gate applies only to multiplicative decreases that would update the
reference rate; rate increases are never gated.
"""

from __future__ import annotations

import random


class ProbabilisticGate:
    """Decides whether a reference-rate decrease may use its feedback."""

    __slots__ = ("rng", "accepted", "rejected")

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.accepted = 0
        self.rejected = 0

    def allow(self, current_window: float, max_window: float) -> bool:
        """True when the feedback should be acted upon.

        Implements the paper's expression literally: draw an integer in
        ``[0, max_window)`` and use the feedback iff it is below the current
        window.  Windows are in bytes; scale is irrelevant to the ratio.
        """
        limit = max(int(max_window), 1)
        use = self.rng.randrange(limit) < current_window
        if use:
            self.accepted += 1
        else:
            self.rejected += 1
        return use
