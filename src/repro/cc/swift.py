"""Swift: delay-based congestion control (Kumar et al., SIGCOMM 2020), with
the paper's Variable AI, Sampling Frequency, and probabilistic-feedback
extensions.

Baseline (parameters from Sec. III-D here):

* **Delay target** — ``target = base + per_hop * hops`` ("topology-based
  scaling", 5 us base + 2 us/hop in the paper) plus the flow-based-scaling
  (FBS) term, which *raises* the target for flows with small windows:
  ``clamp(alpha / sqrt(cwnd_pkts) + beta_fs, 0, fs_range)`` with
  ``alpha = fs_range / (1/sqrt(fs_min) - 1/sqrt(fs_max))`` and
  ``beta_fs = -alpha / sqrt(fs_max)``.
* **Additive increase** — per ACK, ``cwnd += ai * acked_bytes / cwnd`` (so a
  full window of ACKs adds ``ai`` bytes per RTT), applied when delay is below
  target.
* **Multiplicative decrease** — at most once per RTT (Eq. 1):
  ``mdf = max(1 - beta * (delay - target)/delay, mdf_floor)`` and
  ``cwnd *= mdf``.  With the paper's numbers ``beta = 0.8`` and a floor of
  0.5 (its "maximum mdf"), the window at most halves per decrease.

Paper extensions (Sec. V):

* **Sampling Frequency** — decreases permitted every ``s`` ACKs instead of
  once per RTT; increases unchanged.
* **Reference-rate semantics** (enabled with SF, Sec. V-B) — per-ACK
  decreases are computed *from the reference window*, which itself updates
  only on the sampling schedule, so repeated per-ACK reactions within one
  period cannot compound.
* **Always-AI** (Sec. V-B) — the additive increase is applied on every ACK
  regardless of congestion, "like in HPCC", so Variable AI tokens are always
  spent.
* **Variable AI** — tokens minted from RTT samples above
  ``target + min-BDP delay``; the dampener resets after a fully
  congestion-free RTT with an empty bank.
* The paper's Swift VAI+SF variant disables FBS (Sec. VI-B-1); the factory
  encodes that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..core.sampling_frequency import SamplingFrequency
from ..core.variable_ai import VariableAI, VariableAIConfig
from ..obs import registry as obs_registry
from ..obs import tracer as obs_tracer
from ..sim.packet import AckContext
from ..units import mbps, us
from .base import CCEnv, CongestionControl
from .probabilistic import ProbabilisticGate


@dataclass
class SwiftConfig:
    """Swift knobs; defaults are the paper's Sec. III-D settings."""

    beta: float = 0.8
    mdf_floor: float = 0.5  # paper: "maximum mdf" of 0.5 -> multiplier >= 0.5
    ai_rate_bps: float = mbps(50.0)
    base_target_ns: float = us(5.0)
    per_hop_ns: float = us(2.0)
    use_fbs: bool = True
    fs_range_ns: Optional[float] = None  # None -> 3 x base_target_ns
    fs_min_cwnd_pkts: float = 0.1
    fs_max_cwnd_pkts: float = 100.0  # paper lowers to 50 on the small topology
    sampling_acks: Optional[int] = None
    vai: Optional[VariableAIConfig] = None
    probabilistic: bool = False
    use_reference_rate: bool = False  # auto-enabled when sampling_acks is set
    always_ai: bool = False
    #: Ablation only (Sec. IV-B argues AGAINST this): apply the additive
    #: increase on the sampling schedule instead of per-RTT-scaled.  Flows
    #: with more bandwidth then increase more often, hurting fairness.
    sf_increase: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.beta < 1:
            raise ValueError(f"beta must be in (0, 1), got {self.beta}")
        if not 0 < self.mdf_floor < 1:
            raise ValueError(f"mdf_floor must be in (0, 1), got {self.mdf_floor}")
        if self.fs_min_cwnd_pkts <= 0 or self.fs_max_cwnd_pkts <= self.fs_min_cwnd_pkts:
            raise ValueError("need 0 < fs_min_cwnd < fs_max_cwnd")


class SwiftCC(CongestionControl):
    """One Swift sender instance (per flow)."""

    def __init__(self, env: CCEnv, config: Optional[SwiftConfig] = None):
        super().__init__(env)
        self.config = config or SwiftConfig()
        cfg = self.config
        init = env.line_rate_window_bytes  # flows start at line rate
        self.cwnd = init
        self.reference_cwnd = init
        self.window_bytes = init
        self.pacing_rate_bps = None  # Swift is window-limited
        self.base_ai_bytes = cfg.ai_rate_bps / 8.0 * env.base_rtt_ns / 1e9
        self.last_decrease_time = -float("inf")
        self.last_rtt_seq = 0
        self._use_reference = cfg.use_reference_rate or cfg.sampling_acks is not None
        self.sf = SamplingFrequency(cfg.sampling_acks) if cfg.sampling_acks else None
        self._sf_credit = False
        self.vai = VariableAI(cfg.vai) if cfg.vai else None
        self._saw_congestion_in_rtt = False
        self._ai_multiplier = 1.0
        self.gate = ProbabilisticGate(env.rng) if cfg.probabilistic else None
        fs_range = cfg.fs_range_ns if cfg.fs_range_ns is not None else 3.0 * cfg.base_target_ns
        self._fs_range = fs_range
        self._fs_alpha = fs_range / (
            1.0 / math.sqrt(cfg.fs_min_cwnd_pkts) - 1.0 / math.sqrt(cfg.fs_max_cwnd_pkts)
        )
        self._fs_beta = -self._fs_alpha / math.sqrt(cfg.fs_max_cwnd_pkts)
        # Introspection counters.
        self.decreases = 0
        self.increase_bytes = 0.0

    # -- target delay ----------------------------------------------------------

    def flow_scaling_ns(self, cwnd_bytes: float) -> float:
        """FBS term: extra tolerated delay for small windows (0 if disabled)."""
        if not self.config.use_fbs:
            return 0.0
        cwnd_pkts = max(cwnd_bytes / self.env.mtu_bytes, 1e-9)
        term = self._fs_alpha / math.sqrt(cwnd_pkts) + self._fs_beta
        return min(max(term, 0.0), self._fs_range)

    def target_delay_ns(self) -> float:
        """Current delay target: base + topology scaling + flow scaling."""
        cfg = self.config
        return (
            cfg.base_target_ns
            + cfg.per_hop_ns * self.env.hops
            + self.flow_scaling_ns(self.cwnd)
        )

    def base_target_total_ns(self) -> float:
        """Target without FBS — the congestion yardstick used by Variable AI."""
        cfg = self.config
        return cfg.base_target_ns + cfg.per_hop_ns * self.env.hops

    # -- main reaction ------------------------------------------------------------

    def on_ack(self, ctx: AckContext) -> None:
        cfg = self.config
        delay = ctx.rtt
        target = self.target_delay_ns()
        congested = delay > target

        rtt_boundary = ctx.ack_seq > self.last_rtt_seq
        sf_grant = self.sf is not None and self.sf.on_ack()
        if sf_grant:
            self._sf_credit = True
        if self.vai is not None:
            self.vai.observe(delay)
        if delay > self.base_target_total_ns():
            self._saw_congestion_in_rtt = True
        if rtt_boundary:
            self._end_rtt(ctx)

        if cfg.sf_increase:
            # Ablation: full AI quantum per sampling grant.  A flow's grant
            # rate is proportional to its ACK rate, so faster flows grow
            # faster — the anti-fairness schedule the paper warns about.
            if sf_grant and (not congested or cfg.always_ai):
                self.cwnd += self._ai_multiplier * self.base_ai_bytes
        elif not congested or cfg.always_ai:
            self._additive_increase(ctx.newly_acked)
        if congested:
            self._multiplicative_decrease(ctx, delay, target)

        self.window_bytes = self._clamp_window(self.cwnd)
        self.cwnd = self.window_bytes

    def _additive_increase(self, newly_acked: int) -> None:
        if newly_acked <= 0:
            return
        ai = self._ai_multiplier * self.base_ai_bytes
        # Per-ACK scaled increase: a full window of ACKs adds `ai` per RTT.
        denom = max(self.cwnd, float(self.env.mtu_bytes))
        delta = ai * newly_acked / denom
        self.cwnd += delta
        self.increase_bytes += delta

    def _multiplicative_decrease(self, ctx: AckContext, delay: float, target: float) -> None:
        cfg = self.config
        mdf = max(1.0 - cfg.beta * (delay - target) / delay, cfg.mdf_floor)
        if self.sf is not None:
            can = self._sf_credit
        else:
            # Once per RTT: use the measured RTT as the spacing yardstick.
            can = ctx.now - self.last_decrease_time >= ctx.rtt
        if self._use_reference:
            # Per-ACK move computed from the reference window.
            candidate = self.reference_cwnd * mdf
            if candidate < self.cwnd:
                self.cwnd = candidate
            if can:
                if self.gate is None or self.gate.allow(
                    self.reference_cwnd, self.env.line_rate_window_bytes
                ):
                    self.reference_cwnd = self._clamp_window(self.cwnd)
                    self.last_decrease_time = ctx.now
                    self.decreases += 1
                    self._record_decrease(ctx.now, mdf)
                    self._spend_vai()
                self._sf_credit = False
        else:
            if can:
                if self.gate is None or self.gate.allow(
                    self.cwnd, self.env.line_rate_window_bytes
                ):
                    self.cwnd *= mdf
                    self.last_decrease_time = ctx.now
                    self.decreases += 1
                    self._record_decrease(ctx.now, mdf)
                    self._spend_vai()
                self._sf_credit = False

    def _record_decrease(self, now: float, mdf: float) -> None:
        """Observability for one taken multiplicative decrease."""
        reg = obs_registry.STATS
        if reg is not None:
            reg.counter("cc.swift.decreases").inc()
        tr = obs_tracer.TRACER
        if tr is not None:
            tr.instant(
                f"swift md flow {self.flow_id}",
                now,
                cat="cc",
                tid=self.flow_id,
                args={"mdf": mdf, "cwnd": self.cwnd},
            )

    def _end_rtt(self, ctx: AckContext) -> None:
        self.last_rtt_seq = max(self.snd_nxt, ctx.ack_seq)
        if self.vai is not None:
            self.vai.on_rtt_end(no_congestion=not self._saw_congestion_in_rtt)
        self._saw_congestion_in_rtt = False
        self._spend_vai()
        if self._use_reference and self.cwnd > self.reference_cwnd:
            # Increases fold into the reference once per RTT.
            self.reference_cwnd = self._clamp_window(self.cwnd)

    def _spend_vai(self) -> None:
        if self.vai is not None:
            self._ai_multiplier = self.vai.ai_multiplier(spend=True)
