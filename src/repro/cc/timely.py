"""TIMELY: RTT-gradient congestion control (Mittal et al., SIGCOMM 2015),
with the paper's VAI/SF extension hooks.

The paper cites TIMELY [23] as the origin of rate-based RTT reaction and
suggests Swift "may benefit from a hyper additive increase setting like in
Timely".  Implementing it here serves two purposes: it demonstrates the
claim that Variable AI and Sampling Frequency "could be used with a
multitude of congestion control algorithms" (Sec. VII) on a third,
structurally different protocol (rate-based, gradient-driven), and it
provides the HAI mechanism the paper references.

Algorithm (TIMELY paper, Sec. 4.3):

* maintain an EWMA of per-ACK RTT differences; normalize by the minimum
  RTT to get the *gradient*;
* ``rtt < T_low`` → additive increase ``delta`` (no questions asked);
* ``rtt > T_high`` → multiplicative decrease
  ``rate *= 1 - beta * (1 - T_high / rtt)`` (bounded, severity-scaled);
* otherwise: negative gradient → additive increase (HAI mode: ``N * delta``
  after five consecutive negative-gradient completions); positive gradient
  → ``rate *= 1 - beta * min(gradient, 1)``.

Extension hooks mirror the Swift integration: VAI mints tokens from RTT
measurements above ``target + min-BDP delay`` and scales ``delta``; SF
gates multiplicative decreases on an ACK count instead of the completion-
event clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.sampling_frequency import SamplingFrequency
from ..core.variable_ai import VariableAI, VariableAIConfig
from ..sim.packet import AckContext
from ..units import mbps, us
from .base import CCEnv, CongestionControl


@dataclass
class TimelyConfig:
    """TIMELY knobs (defaults follow the TIMELY paper, scaled like Swift)."""

    ewma_alpha: float = 0.46  # weight of the newest RTT difference
    beta: float = 0.8
    t_low_ns: float = us(5.0)
    t_high_ns: float = us(50.0)
    delta_bps: float = mbps(50.0)  # additive increase step, as a rate
    hai_threshold: int = 5  # consecutive negative gradients to enter HAI
    hai_multiplier: float = 5.0  # N
    min_rate_bps: float = mbps(10.0)
    sampling_acks: Optional[int] = None
    vai: Optional[VariableAIConfig] = None

    def __post_init__(self) -> None:
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if not 0 < self.beta < 1:
            raise ValueError(f"beta must be in (0, 1), got {self.beta}")
        if self.t_high_ns <= self.t_low_ns:
            raise ValueError("need t_low < t_high")
        if self.hai_threshold < 1:
            raise ValueError("hai_threshold must be >= 1")


class TimelyCC(CongestionControl):
    """One TIMELY sender instance (per flow)."""

    def __init__(self, env: CCEnv, config: Optional[TimelyConfig] = None):
        super().__init__(env)
        self.config = config or TimelyConfig()
        self.rate_bps = env.line_rate_bps  # start at line rate
        self.pacing_rate_bps = self.rate_bps
        # Rate-based, but keep a generous window backstop (2 BDP) so a
        # stale pacing rate cannot flood an already-congested path.
        self.window_bytes = 2.0 * env.line_rate_window_bytes
        self.prev_rtt_ns: Optional[float] = None
        self.rtt_diff_ewma = 0.0
        self.negative_gradient_streak = 0
        self.last_decrease_time = -float("inf")
        self.sf = (
            SamplingFrequency(self.config.sampling_acks)
            if self.config.sampling_acks
            else None
        )
        self._sf_credit = False
        self.vai = VariableAI(self.config.vai) if self.config.vai else None
        self._ai_multiplier = 1.0
        self._last_rtt_mark = 0.0
        self._saw_congestion = False
        # Introspection.
        self.decreases = 0
        self.hai_events = 0

    # -- helpers --------------------------------------------------------------

    def _delta_bps(self) -> float:
        return self._ai_multiplier * self.config.delta_bps

    def _set_rate(self, rate: float) -> None:
        self.rate_bps = min(max(rate, self.config.min_rate_bps), self.env.line_rate_bps)
        self.pacing_rate_bps = self.rate_bps

    def _gradient(self, rtt: float) -> float:
        if self.prev_rtt_ns is None:
            self.prev_rtt_ns = rtt
            return 0.0
        diff = rtt - self.prev_rtt_ns
        self.prev_rtt_ns = rtt
        a = self.config.ewma_alpha
        self.rtt_diff_ewma = (1.0 - a) * self.rtt_diff_ewma + a * diff
        return self.rtt_diff_ewma / self.env.base_rtt_ns

    # -- main reaction -----------------------------------------------------------

    def on_ack(self, ctx: AckContext) -> None:
        cfg = self.config
        rtt = ctx.rtt
        if self.sf is not None and self.sf.on_ack():
            self._sf_credit = True
        if self.vai is not None:
            self.vai.observe(rtt)
            if rtt > cfg.t_low_ns + self.env.base_rtt_ns:
                self._saw_congestion = True
            if ctx.now - self._last_rtt_mark >= self.env.base_rtt_ns:
                self._last_rtt_mark = ctx.now
                self.vai.on_rtt_end(no_congestion=not self._saw_congestion)
                self._saw_congestion = False
                self._ai_multiplier = self.vai.ai_multiplier(spend=True)

        gradient = self._gradient(rtt)

        if rtt < cfg.t_low_ns:
            self._set_rate(self.rate_bps + self._delta_bps())
            self.negative_gradient_streak = 0
            return
        if rtt > cfg.t_high_ns:
            if self._may_decrease(ctx):
                self._set_rate(
                    self.rate_bps * (1.0 - cfg.beta * (1.0 - cfg.t_high_ns / rtt))
                )
                self.decreases += 1
            self.negative_gradient_streak = 0
            return
        if gradient <= 0:
            self.negative_gradient_streak += 1
            n = (
                cfg.hai_multiplier
                if self.negative_gradient_streak >= cfg.hai_threshold
                else 1.0
            )
            if n > 1.0:
                self.hai_events += 1
            self._set_rate(self.rate_bps + n * self._delta_bps())
        else:
            self.negative_gradient_streak = 0
            if self._may_decrease(ctx):
                self._set_rate(self.rate_bps * (1.0 - cfg.beta * min(gradient, 1.0)))
                self.decreases += 1

    def _may_decrease(self, ctx: AckContext) -> bool:
        if self.sf is not None:
            if self._sf_credit:
                self._sf_credit = False
                self.last_decrease_time = ctx.now
                return True
            return False
        if ctx.now - self.last_decrease_time >= self.env.base_rtt_ns:
            self.last_decrease_time = ctx.now
            return True
        return False
