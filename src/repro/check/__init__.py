"""repro.check — the opt-in simulator sanitizer.

Modeled on runtime sanitizers (ASan/TSan): correctness invariants that the
figures silently rely on are checked *while the simulation runs*, and any
breach raises immediately with enough context to replay the failing run.

Two cooperating facilities:

* :mod:`repro.check.invariants` — cheap per-event physical-invariant checks
  (event-time monotonicity, byte conservation, FIFO queues, PFC
  losslessness, go-back-N sequence sanity, VAI/SF state bounds) installed
  through the same module-level ``None``-checked global idiom as
  :mod:`repro.obs` — disabled checking costs one attribute read per hook
  site and, crucially, never perturbs simulation output
  (``tests/check/test_sanitize_identity.py``);
* :mod:`repro.check.differential` — a differential harness asserting
  byte-identical flow-completion outputs across configurations that are
  supposed to be equivalent: fused vs. unfused delivery, serial vs.
  ``--jobs N`` campaigns, store-cold vs. store-warm, obs on vs. off.

Only :mod:`invariants` is imported eagerly: it is stdlib-only, so the sim
core can import it without cycles.  ``differential`` (which pulls in the
experiments layer) and ``selftest`` (which builds networks) are imported on
demand by the CLI and tests.
"""

from . import invariants
from .invariants import InvariantChecker, InvariantViolation

__all__ = ["invariants", "InvariantChecker", "InvariantViolation"]
