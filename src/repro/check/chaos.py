"""Orchestration chaos harness: fault injection must not change results.

The campaign supervisor (:mod:`repro.experiments.supervisor`) claims that
worker kills, hangs, transient errors, poison configs, and store
corruption are survivable *without touching the science*: every config
that produces a result produces the byte-identical result a fault-free
run would have.  This module makes that claim executable:

1. **Baseline pass** — every reference config simulated cleanly; its
   :func:`~repro.check.differential.fct_digest` is the ground truth.
2. **Chaos pass** — the same configs plus a deliberately poisoned one run
   under the supervisor while a seeded :class:`ChaosSpec` injects one
   fault per config *inside the workers*: a SIGKILL mid-run, a hang
   (silence past the stall deadline), a transient exception.  The pass
   asserts each fault actually fired (kill seen, stall kill issued,
   retry recorded), the poison config was quarantined without sinking
   the sweep, and every surviving digest equals its baseline.
3. **Corruption pass** — one store entry is bit-flipped on disk; the
   follow-up campaign must detect it via the entry checksum, evict,
   re-simulate, and again match the baseline digest.

Faults are planned deterministically from a seed (``plan_chaos``), so a
failure reproduces with the same command line.  ``repro-experiments
check chaos`` runs the whole ladder; the CI chaos-smoke job gates on it.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..experiments.config import scaled_incast, with_backend
from ..experiments.parallel import AnyConfig, run_config
from ..experiments.store import ResultStore, config_key
from ..experiments.supervisor import (
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_RETRIED,
    STATUS_SALVAGED,
    RetryPolicy,
    SupervisorConfig,
    run_supervised,
)
from .differential import _isolated_caches, fct_digest

__all__ = [
    "ChaosReport",
    "ChaosSpec",
    "ChaosTransientError",
    "PoisonConfig",
    "plan_chaos",
    "run_chaos",
]


class ChaosTransientError(RuntimeError):
    """The injected 'infrastructure blip' error (classified transient)."""


#: One fault per config; ``none`` keeps a control config fault-free.
ACTIONS = ("kill", "hang", "transient", "none")

#: Fired this long into a run so the SIGKILL lands mid-simulation (the
#: smallest reference config takes ~10x this to run).
KILL_DELAY_S = 0.05

#: An injected hang sleeps this long; the supervisor must kill it far
#: sooner (the harness runs with a sub-second stall deadline).
HANG_S = 600.0


@dataclass(frozen=True)
class ChaosSpec:
    """A deterministic fault plan: config key -> action, applied in-worker.

    ``inject`` runs inside the worker *before* the heartbeat thread
    starts, so an injected hang presents to the supervisor as true
    silence.  Faults fire on the first attempt only — retries of a
    chaos-struck config run clean, which is exactly the transient-fault
    model the retry machinery exists for.
    """

    plan: Tuple[Tuple[str, str], ...]  # (config key, action) pairs
    first_attempt_only: bool = True
    #: Seconds into a run before the injected SIGKILL fires.  Backends
    #: faster than packet (flow mode finishes a reference config in
    #: single-digit milliseconds) need a much shorter fuse so the kill
    #: still lands mid-simulation.
    kill_delay_s: float = KILL_DELAY_S

    def action_for(self, key: str) -> str:
        for plan_key, action in self.plan:
            if plan_key == key:
                return action
        return "none"

    def inject(self, key: str, attempt: int) -> None:
        if self.first_attempt_only and attempt > 1:
            return
        action = self.action_for(key)
        if action == "kill":
            timer = threading.Timer(
                self.kill_delay_s, os.kill, (os.getpid(), signal.SIGKILL)
            )
            timer.daemon = True
            timer.start()
        elif action == "hang":
            time.sleep(HANG_S)
        elif action == "transient":
            raise ChaosTransientError(f"injected transient fault for {key[:8]}")


def plan_chaos(
    keys: Sequence[str], seed: int, *, kill_delay_s: float = KILL_DELAY_S
) -> ChaosSpec:
    """Assign every action to some key, deterministically from ``seed``.

    With at least ``len(ACTIONS)`` keys each action fires at least once
    (actions cycle over the shuffled keys), so the harness never silently
    skips a fault family.
    """
    import random

    order = list(keys)
    random.Random(seed).shuffle(order)
    plan = tuple(
        (key, ACTIONS[i % len(ACTIONS)]) for i, key in enumerate(order)
    )
    return ChaosSpec(plan=plan, kill_delay_s=kill_delay_s)


@dataclass(frozen=True)
class PoisonConfig:
    """A config that deterministically fails: quarantine bait.

    Routed through the normal campaign machinery via the ``run_self``
    hook on :func:`repro.experiments.parallel.run_config`.
    """

    label: str = "poison"
    seed: int = 0

    def cache_key(self) -> str:
        return config_key(self)

    def describe(self) -> str:
        return f"poison config '{self.label}'"

    def run_self(self) -> Any:
        raise ValueError(f"poisoned config '{self.label}': unusable parameters")


# ---------------------------------------------------------------------------
# The ladder
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosCheck:
    name: str
    ok: bool
    detail: str = ""

    def render(self) -> str:
        return f"[{'ok ' if self.ok else 'FAIL'}] {self.name}" + (
            f": {self.detail}" if self.detail else ""
        )


@dataclass
class ChaosReport:
    """Every check from one chaos ladder; ``ok`` is the overall verdict."""

    seed: int
    backend: str = "packet"
    checks: List[ChaosCheck] = field(default_factory=list)
    digests: Dict[str, str] = field(default_factory=dict)  # key -> baseline

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def render(self) -> str:
        lines = [f"=== chaos harness (seed={self.seed}, backend={self.backend}) ==="]
        lines.extend(c.render() for c in self.checks)
        lines.append(
            f"{'PASS' if self.ok else 'FAIL'}: "
            f"{sum(c.ok for c in self.checks)}/{len(self.checks)} checks ok"
        )
        return "\n".join(lines)


def reference_chaos_configs(
    n: int = 4, backend: str = "packet"
) -> List[AnyConfig]:
    """``n`` small, distinct incast configs (seed-varied; ~0.2 s each)."""
    base = with_backend(scaled_incast("swift", 4), backend)
    return [dataclasses.replace(base, seed=base.seed + i) for i in range(n)]


def run_chaos(
    *,
    store_dir: str,
    seed: int = 0,
    n_configs: int = 4,
    jobs: int = 2,
    journal_path: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    backend: str = "packet",
) -> ChaosReport:
    """Run the three-pass chaos ladder; see the module docstring.

    ``backend`` reruns the whole ladder on another simulation backend —
    the supervisor's journaling/salvage/quarantine machinery must be
    backend-agnostic, so ``backend="flow"`` gets the same ladder with a
    kill fuse short enough to land inside millisecond-scale fluid runs.
    """
    if n_configs < len(ACTIONS):
        raise ValueError(
            f"n_configs must be >= {len(ACTIONS)} so every fault family fires"
        )
    report = ChaosReport(seed=seed, backend=backend)
    say = progress if progress is not None else (lambda _msg: None)
    configs = reference_chaos_configs(n_configs, backend)
    keys = [cfg.cache_key() for cfg in configs]
    kill_delay_s = KILL_DELAY_S if backend == "packet" else 0.002
    spec = plan_chaos(keys, seed, kill_delay_s=kill_delay_s)
    by_action = {action: key for key, action in spec.plan}

    # -- pass 1: fault-free baseline ---------------------------------------
    say(f"chaos pass 1/3: baseline over {n_configs} config(s)")
    with _isolated_caches():
        for cfg in configs:
            report.digests[cfg.cache_key()] = fct_digest(run_config(cfg))
    report.checks.append(
        ChaosCheck("baseline", True, f"{len(report.digests)} digest(s)")
    )

    # -- pass 2: supervised campaign under injected faults ------------------
    say(
        "chaos pass 2/3: supervised campaign with injected kill/hang/"
        "transient faults and one poison config"
    )
    poison = PoisonConfig(seed=seed)
    store = ResultStore(store_dir)
    sup = SupervisorConfig(
        policy=RetryPolicy(max_attempts=3),
        journal_path=Path(journal_path) if journal_path else None,
        partial_ok=True,
        heartbeat_interval_s=0.05,
        stall_timeout_s=1.0,
        chaos=spec,
    )
    with _isolated_caches(store):
        outcome = run_supervised(
            configs + [poison], jobs=jobs, sup=sup, progress=progress
        )
        chaos_digests = {
            key: fct_digest(result)
            for key, result in outcome.results.items()
            if key != poison.cache_key()
        }
    mismatched = [
        key for key, digest in report.digests.items()
        if chaos_digests.get(key) != digest
    ]
    report.checks.append(
        ChaosCheck(
            "chaos-digests-match-baseline",
            not mismatched and len(chaos_digests) == len(report.digests),
            f"{len(chaos_digests)}/{len(report.digests)} results, "
            f"{len(mismatched)} mismatched",
        )
    )
    stats = outcome.stats
    report.checks.append(
        ChaosCheck(
            "faults-actually-fired",
            stats.workers_lost >= 1
            and stats.workers_killed >= 1
            and stats.retried >= 1,
            f"workers_lost={stats.workers_lost} (kill), "
            f"workers_killed={stats.workers_killed} (hang), "
            f"retried={stats.retried} (transient)",
        )
    )
    expected = {
        by_action["kill"]: STATUS_SALVAGED,
        by_action["hang"]: STATUS_SALVAGED,
        by_action["transient"]: STATUS_RETRIED,
        by_action["none"]: STATUS_OK,
        poison.cache_key(): STATUS_QUARANTINED,
    }
    wrong = {
        key[:8]: (outcome.statuses.get(key), want)
        for key, want in expected.items()
        if outcome.statuses.get(key) != want
    }
    report.checks.append(
        ChaosCheck(
            "statuses-as-planned",
            not wrong,
            "each fault maps to its status" if not wrong else f"wrong: {wrong}",
        )
    )
    report.checks.append(
        ChaosCheck(
            "poison-quarantined-not-fatal",
            outcome.statuses.get(poison.cache_key()) == STATUS_QUARANTINED
            and len(outcome.quarantines) == 1
            and outcome.quarantines[0].classification == "deterministic"
            and poison.cache_key() not in outcome.results,
            outcome.quarantines[0].error if outcome.quarantines else "no report",
        )
    )

    # -- pass 3: store corruption self-heals --------------------------------
    say("chaos pass 3/3: store corruption detection and self-heal")
    victim = configs[0]
    victim_path = store.path_for(victim)
    data = bytearray(victim_path.read_bytes())
    data[-1] ^= 0x01
    victim_path.write_bytes(bytes(data))
    evicted_before = store.stats.evicted_corrupt
    with _isolated_caches(store), warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        healed = run_supervised(
            configs,
            jobs=1,
            sup=SupervisorConfig(policy=sup.policy, partial_ok=True),
            progress=progress,
        )
        healed_digest = fct_digest(healed.results[victim.cache_key()])
        rewritten = store.get(victim) is not None
    report.checks.append(
        ChaosCheck(
            "corruption-detected-and-healed",
            store.stats.evicted_corrupt == evicted_before + 1
            and healed.stats.executed == 1
            and healed.stats.cached == len(configs) - 1
            and healed_digest == report.digests[victim.cache_key()]
            and rewritten,
            f"evicted={store.stats.evicted_corrupt - evicted_before}, "
            f"re-simulated={healed.stats.executed}, digest match="
            f"{healed_digest == report.digests[victim.cache_key()]}",
        )
    )
    return report
