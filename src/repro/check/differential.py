"""Differential harness: equivalent configurations must agree byte-for-byte.

Several execution modes are *supposed* to be output-equivalent, and the
performance work leans on that equivalence hard:

* **fused vs. unfused delivery** — port fusion (PR2) collapses two events
  into one but must keep packet spacing, and therefore every output,
  identical;
* **serial vs. ``--jobs N`` campaigns** — a simulation is a pure function
  of its config, so pool workers must return exactly what an in-process
  run produces;
* **store-cold vs. store-warm** — a result replayed from the persistent
  store must equal the simulation it skipped;
* **obs on vs. off** — the passive instrumentation layers must never
  perturb simulation state.

This module turns each equivalence into an executable check over a
canonical digest of the flow-completion output, so the CI ``sanitize`` job
(and ``repro-experiments check differential``) can falsify them on every
push.  The same digest powers the CI determinism gate: the reference
configs below are hashed twice per interpreter and across the 3.10/3.12
matrix, catching dict-order or float-path nondeterminism.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional

from ..experiments import runner as exp_runner
from ..experiments.config import (
    DatacenterConfig,
    IncastConfig,
    scaled_datacenter,
    scaled_incast,
)
from ..experiments.parallel import AnyConfig, run_campaign, run_config
from ..experiments.store import ResultStore, get_store, set_store
from ..obs import flightrec as obs_flightrec
from ..obs import profiler as obs_profiler
from ..sim.port import Port
from ..units import ms
from .. import obs
from . import invariants as check_invariants


class DifferentialMismatch(RuntimeError):
    """Two supposedly equivalent configurations produced different outputs."""


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one equivalence check (``matched`` is the verdict)."""

    name: str
    digest_a: str
    digest_b: str
    matched: bool
    detail: str = ""

    def render(self) -> str:
        status = "ok " if self.matched else "FAIL"
        line = f"[{status}] {self.name}: {self.digest_a[:16]}"
        if not self.matched:
            line += f" != {self.digest_b[:16]}"
        if self.detail:
            line += f" ({self.detail})"
        return line


# ---------------------------------------------------------------------------
# Canonical flow-completion digest
# ---------------------------------------------------------------------------


def completion_rows(result: Any) -> List[str]:
    """Canonical text rows of a result's flow-completion output.

    ``repr`` of the float times preserves every bit (shortest round-trip
    repr), so two results agree on rows iff they agree byte-for-byte on
    completion output.  Incast results also contribute their fairness and
    queue series; datacenter results contribute per-flow slowdown records
    in collection order (which is itself deterministic).
    """
    rows: List[str] = []
    flows = getattr(result, "flows", None)
    if flows is not None:
        for f in sorted(flows, key=lambda f: f.flow_id):
            rows.append(
                f"flow {f.flow_id} start={f.start_time!r} "
                f"finish={f.finish_time!r} size={f.size} "
                f"completed={f.completed}"
            )
        for name in ("jain_times_ns", "jain_values",
                     "queue_times_ns", "queue_values_bytes"):
            digest = hashlib.sha256(getattr(result, name).tobytes()).hexdigest()
            rows.append(f"series {name} {digest}")
        rows.append(f"convergence {result.convergence_ns!r}")
    records = getattr(result, "records", None)
    if records is not None:
        for i, rec in enumerate(records):
            rows.append(
                f"record {i} size={rec.size_bytes} fct={rec.fct_ns!r} "
                f"ideal={rec.ideal_ns!r}"
            )
        rows.append(f"completed {result.n_completed}/{result.n_offered}")
    if not rows:
        raise TypeError(f"no flow-completion output on {type(result).__name__}")
    return rows


def fct_digest(result: Any) -> str:
    """SHA-256 over the canonical flow-completion rows."""
    h = hashlib.sha256()
    for row in completion_rows(result):
        h.update(row.encode())
        h.update(b"\n")
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Reference configs (CI determinism gate + sanitize job)
# ---------------------------------------------------------------------------


def reference_config(preset: str) -> AnyConfig:
    """The fixed config behind ``check digest --preset ...``.

    Small enough for CI (seconds, not minutes) but exercising the full
    stack: the incast preset covers the star/INT/VAI/SF path, the
    datacenter preset the fat-tree/ECMP/Poisson path.
    """
    if preset == "incast":
        return scaled_incast("hpcc-vai-sf", 8)
    if preset == "datacenter":
        return scaled_datacenter("hpcc-vai-sf", "hadoop", duration_ns=ms(1.0))
    raise ValueError(f"unknown preset {preset!r} (want 'incast' or 'datacenter')")


def digest_preset(preset: str) -> str:
    """Simulate a reference preset from scratch and return its digest.

    Caches are bypassed on purpose: the determinism gate must compare two
    *simulations*, not a simulation against its own cached copy.
    """
    with _isolated_caches():
        return fct_digest(run_config(reference_config(preset)))


# ---------------------------------------------------------------------------
# Equivalence checks
# ---------------------------------------------------------------------------


@contextmanager
def _isolated_caches(store: Optional[ResultStore] = None) -> Iterator[None]:
    """Run with empty LRU caches and ``store`` (default None) installed."""
    prev_store = get_store()
    set_store(store)
    exp_runner.clear_caches()
    try:
        yield
    finally:
        exp_runner.clear_caches()
        set_store(prev_store)


@contextmanager
def force_unfused() -> Iterator[None]:
    """Disable port fusion for every port built inside the block.

    Same technique as ``tests/sim/test_port_fusion.py``: new ports come up
    with ``allow_fusion`` off, so the legacy two-event schedule runs.
    """
    original = Port.__init__

    def no_fusion_init(self, *args: Any, **kwargs: Any) -> None:
        original(self, *args, **kwargs)
        self.allow_fusion = False

    Port.__init__ = no_fusion_init
    try:
        yield
    finally:
        Port.__init__ = original


def check_fused_vs_unfused(cfg: AnyConfig) -> DifferentialReport:
    """Fusion is a pure event-count optimization; outputs must match."""
    with _isolated_caches():
        fused = run_config(cfg)
    with _isolated_caches(), force_unfused():
        unfused = run_config(cfg)
    a, b = fct_digest(fused), fct_digest(unfused)
    return DifferentialReport(
        name="fused-vs-unfused",
        digest_a=a,
        digest_b=b,
        matched=a == b,
        detail=f"events {fused.events_executed} vs {unfused.events_executed}",
    )


def check_serial_vs_parallel(cfg: AnyConfig, jobs: int = 2) -> DifferentialReport:
    """A pool worker must return exactly what an in-process run produces."""
    with _isolated_caches():
        serial = run_campaign([cfg], jobs=1).result_for(cfg)
    with _isolated_caches():
        parallel = run_campaign([cfg], jobs=jobs).result_for(cfg)
    a, b = fct_digest(serial), fct_digest(parallel)
    return DifferentialReport(
        name=f"serial-vs-jobs{jobs}",
        digest_a=a,
        digest_b=b,
        matched=a == b,
    )


def check_store_roundtrip(cfg: AnyConfig, store_dir: str) -> DifferentialReport:
    """A store-warm replay must equal the cold simulation it skipped."""
    store = ResultStore(store_dir)
    if isinstance(cfg, IncastConfig):
        run_cached = exp_runner.run_incast_cached
    elif isinstance(cfg, DatacenterConfig):
        run_cached = exp_runner.run_datacenter_cached
    else:
        raise TypeError(f"not a runnable config: {type(cfg).__name__}")
    with _isolated_caches(store):
        cold = run_cached(cfg)
        exp_runner.clear_caches()  # force the next read through the store
        warm = run_cached(cfg)
    a, b = fct_digest(cold), fct_digest(warm)
    return DifferentialReport(
        name="store-cold-vs-warm",
        digest_a=a,
        digest_b=b,
        matched=a == b,
        detail=f"store hits {store.stats.hits}",
    )


def check_obs_on_vs_off(cfg: AnyConfig) -> DifferentialReport:
    """The passive obs layers must not perturb simulation output."""
    with _isolated_caches():
        bare = run_config(cfg)
    with _isolated_caches():
        obs.enable_all()
        try:
            instrumented = run_config(cfg)
        finally:
            obs.disable_all()
    a, b = fct_digest(bare), fct_digest(instrumented)
    events_match = bare.events_executed == instrumented.events_executed
    return DifferentialReport(
        name="obs-on-vs-off",
        digest_a=a,
        digest_b=b,
        matched=a == b and events_match,
        detail=f"events {bare.events_executed} vs {instrumented.events_executed}",
    )


# ---------------------------------------------------------------------------
# Packet-vs-flow backend divergence matrix
# ---------------------------------------------------------------------------
#
# The flow backend is an *approximation*, so packet-vs-flow is not a
# byte-identity check: instead each reference figure workload is run on
# both backends and summary statistics are compared against documented
# tolerance bands.  The bands encode where the fluid abstraction is
# trusted (see DESIGN.md "When flow mode is trustworthy"):
#
# * ``slowdown_p50`` / ``slowdown_p99`` — per-flow FCT slowdown
#   percentiles.  The fluid model carries no queueing delay or packet
#   jitter, so it runs systematically *fast*; the band is wide enough for
#   that bias but tight enough to catch a broken rate allocation (a
#   missing bottleneck constraint shifts p99 by integer factors).
# * ``jain_mean`` — mean Jain index after the last flow's start.  Both
#   backends must agree on the fairness *regime* (converged vs. not);
#   the band is absolute because Jain lives in [1/n, 1].
# * ``convergence_us`` — time from last start until Jain >= 0.9.  The
#   noisiest statistic (packet-level AIMD oscillates around the
#   threshold), hence the widest band.  ``None`` (never converged) on
#   exactly one backend is always a loud failure.

#: Per-metric tolerance: divergence limit = abs_tol + rel_tol * |packet|.
BACKEND_TOLERANCES = {
    "slowdown_p50": (0.10, 0.25),  # (abs_tol, rel_tol)
    "slowdown_p99": (0.10, 0.35),
    "jain_mean": (0.12, 0.0),
    "convergence_us": (25.0, 0.60),
}

#: Reference figure workloads for the divergence matrix (fig 8 is the
#: paper's headline fast-convergence comparison and must stay in).
BACKEND_REFERENCE_FIGURES = {
    "1": ("hpcc", "hpcc-1gbps", "swift"),
    "8": ("hpcc", "hpcc-vai-sf"),
    "9": ("swift", "swift-vai-sf"),
}


@dataclass(frozen=True)
class BackendDivergence:
    """One (figure, variant, metric) cell of the divergence matrix."""

    figure: str
    variant: str
    metric: str
    packet: Optional[float]
    flow: Optional[float]
    divergence: float
    limit: float

    @property
    def within(self) -> bool:
        return self.divergence <= self.limit

    def render(self) -> str:
        status = "ok " if self.within else "FAIL"

        def fmt(v: Optional[float]) -> str:
            return "never" if v is None else f"{v:.3f}"

        return (
            f"[{status}] fig{self.figure}/{self.variant} {self.metric}: "
            f"packet={fmt(self.packet)} flow={fmt(self.flow)} "
            f"|d|={self.divergence:.3f} <= {self.limit:.3f}"
        )

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "variant": self.variant,
            "metric": self.metric,
            "packet": self.packet,
            "flow": self.flow,
            "divergence": self.divergence,
            "limit": self.limit,
            "within": self.within,
        }


def _incast_divergence_metrics(result: Any) -> dict:
    """Summary statistics compared across backends for one incast run."""
    import numpy as np

    from ..metrics.fct import ideal_fct_ns
    from ..topology.star import build_star
    from ..units import ns_to_us

    cfg = result.config
    topo = build_star(
        cfg.n_senders,
        rate_bps=cfg.rate_bps,
        prop_delay_ns=cfg.prop_delay_ns,
        seed=cfg.seed,
    )
    slowdowns = sorted(
        f.fct / ideal_fct_ns(topo.network, f.src, f.dst, f.size)
        for f in result.flows
        if f.completed
    )
    if not slowdowns:
        raise DifferentialMismatch(
            f"no completed flows on {cfg.describe()} — cannot compare backends"
        )
    after = result.jain_times_ns >= result.last_start_ns
    jain_mean = float(np.mean(result.jain_values[after])) if after.any() else 0.0
    conv = result.convergence_ns
    return {
        "slowdown_p50": float(np.percentile(slowdowns, 50)),
        "slowdown_p99": float(np.percentile(slowdowns, 99)),
        "jain_mean": jain_mean,
        "convergence_us": None if conv is None else ns_to_us(conv),
    }


def backend_divergence_matrix(
    figures: Optional[List[str]] = None,
) -> List[BackendDivergence]:
    """Run each reference workload on both backends and compare metrics.

    Returns every (figure, variant, metric) cell; callers decide whether
    an out-of-band cell is fatal (:func:`assert_backend_matrix`) or just
    reported.  A metric that is ``None`` (never converged) on exactly one
    backend gets ``divergence = inf`` so it always fails loudly.
    """
    from ..experiments.config import with_backend

    cells: List[BackendDivergence] = []
    for figure in figures or sorted(BACKEND_REFERENCE_FIGURES):
        try:
            variants = BACKEND_REFERENCE_FIGURES[figure]
        except KeyError:
            raise ValueError(
                f"figure {figure!r} has no backend reference workload "
                f"(have {sorted(BACKEND_REFERENCE_FIGURES)})"
            )
        for variant in variants:
            cfg = scaled_incast(variant, 16)
            with _isolated_caches():
                packet = _incast_divergence_metrics(run_config(cfg))
            with _isolated_caches():
                flow = _incast_divergence_metrics(
                    run_config(with_backend(cfg, "flow"))
                )
            for metric, (abs_tol, rel_tol) in BACKEND_TOLERANCES.items():
                p, f = packet[metric], flow[metric]
                if p is None and f is None:
                    divergence, limit = 0.0, 0.0
                elif p is None or f is None:
                    divergence, limit = float("inf"), 0.0
                else:
                    divergence = abs(f - p)
                    limit = abs_tol + rel_tol * abs(p)
                cells.append(
                    BackendDivergence(
                        figure=figure,
                        variant=variant,
                        metric=metric,
                        packet=p,
                        flow=f,
                        divergence=divergence,
                        limit=limit,
                    )
                )
    return cells


def assert_backend_matrix(
    figures: Optional[List[str]] = None,
) -> List[BackendDivergence]:
    """Like :func:`backend_divergence_matrix` but raising on any breach."""
    cells = backend_divergence_matrix(figures)
    bad = [c for c in cells if not c.within]
    if bad:
        raise DifferentialMismatch(
            f"{len(bad)} backend divergence(s) out of tolerance:\n"
            + "\n".join(c.render() for c in bad)
        )
    return cells


# ---------------------------------------------------------------------------
# Reference-vs-turbo engine identity matrix
# ---------------------------------------------------------------------------
#
# Unlike the flow backend, the turbo engine is *not* an approximation: it is
# the same packet-level semantics on a different scheduler (timing wheel vs
# global heap) and a flattened struct-of-arrays datapath.  The bar is
# therefore byte-identity — the canonical flow-completion digest AND the
# executed-event count must match on every workload.  Each observability
# plane gets its own matrix column: a hook the turbo datapath forgot to call
# would leave *plain* digests equal while silently perturbing instrumented
# runs, so identity is asserted with the sanitizer on, with the obs stack
# (registry + tracer + telemetry + flight recorder + phase profiler) on, and
# under packet faults (which disable fusion and exercise loss recovery, RTO
# cancel/reschedule on the wheel, and the link-down paths).

#: Matrix modes: instrumentation/fault environment both engines run under.
ENGINE_MODES = ("plain", "sanitize", "obs", "faults")


def engine_reference_workloads() -> Dict[str, AnyConfig]:
    """The fixed workloads behind ``check differential --engines``.

    The three reference figures' incast variants (figs 1/8/9 are all 16-1
    star incasts — HPCC, HPCC VAI SF, Swift VAI SF cover the INT, ECN and
    delay CC paths) plus one scaled fat-tree run for ECMP/PFC/trace-driven
    coverage.  Small enough for CI; every cell is two full simulations.
    """
    return {
        "fig1/hpcc": scaled_incast("hpcc", 16),
        "fig8/hpcc-vai-sf": scaled_incast("hpcc-vai-sf", 16),
        "fig9/swift-vai-sf": scaled_incast("swift-vai-sf", 16),
        "dc/hpcc-vai-sf": scaled_datacenter(
            "hpcc-vai-sf", "hadoop", duration_ns=ms(1.0)
        ),
    }


@dataclass(frozen=True)
class EngineEquivalence:
    """One (workload, mode) cell of the engine identity matrix."""

    workload: str
    mode: str
    digest_reference: str
    digest_turbo: str
    events_reference: int
    events_turbo: int

    @property
    def matched(self) -> bool:
        return (
            self.digest_reference == self.digest_turbo
            and self.events_reference == self.events_turbo
        )

    def render(self) -> str:
        status = "ok " if self.matched else "FAIL"
        line = (
            f"[{status}] {self.workload} [{self.mode}]: "
            f"{self.digest_reference[:16]}"
        )
        if self.digest_reference != self.digest_turbo:
            line += f" != {self.digest_turbo[:16]}"
        line += f" (events {self.events_reference} vs {self.events_turbo})"
        return line

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "mode": self.mode,
            "digest_reference": self.digest_reference,
            "digest_turbo": self.digest_turbo,
            "events_reference": self.events_reference,
            "events_turbo": self.events_turbo,
            "matched": self.matched,
        }


@contextmanager
def _engine_mode(mode: str) -> Iterator[None]:
    """Install one matrix column's instrumentation for both engines."""
    if mode == "sanitize":
        check_invariants.enable()
        try:
            yield
        finally:
            check_invariants.disable()
    elif mode == "obs":
        obs.enable_all()
        obs_flightrec.enable()
        obs_profiler.enable()
        try:
            yield
        finally:
            obs_profiler.disable()
            obs_flightrec.disable()
            obs.disable_all()
    else:  # plain / faults need no process-wide switches
        yield


def engine_equivalence_matrix(
    workloads: Optional[List[str]] = None,
    modes: Optional[List[str]] = None,
) -> List[EngineEquivalence]:
    """Run each workload on both engines under each mode; compare digests.

    Raises ImportError up front when numpy (the turbo engine's ``[perf]``
    dependency) is missing — the matrix must refuse loudly, never
    silently compare the reference engine against itself.
    """
    from ..sim.turbo import require_numpy

    require_numpy()
    from ..experiments.config import FaultConfig, with_engine

    available = engine_reference_workloads()
    if workloads:
        unknown = sorted(set(workloads) - set(available))
        if unknown:
            raise ValueError(
                f"unknown engine workload(s) {unknown} "
                f"(have {sorted(available)})"
            )
        available = {name: available[name] for name in workloads}
    for mode in modes or ENGINE_MODES:
        if mode not in ENGINE_MODES:
            raise ValueError(f"unknown mode {mode!r} (have {ENGINE_MODES})")

    cells: List[EngineEquivalence] = []
    for name, cfg in available.items():
        for mode in modes or ENGINE_MODES:
            mcfg = cfg
            if mode == "faults":
                # Deterministic periodic dropper on the monitored bottleneck:
                # disables fusion on those ports, turns on go-back-N loss
                # recovery, and drives RTO arm/cancel/reschedule through the
                # wheel — in both engines identically.
                mcfg = replace(
                    cfg, faults=FaultConfig(drop_every_nth=401, target="bottleneck")
                )
            with _engine_mode(mode):
                with _isolated_caches():
                    ref = run_config(mcfg)
                    digest_ref = fct_digest(ref)
                    events_ref = ref.events_executed
                with _isolated_caches():
                    tur = run_config(with_engine(mcfg, "turbo"))
                    digest_tur = fct_digest(tur)
                    events_tur = tur.events_executed
            cells.append(
                EngineEquivalence(
                    workload=name,
                    mode=mode,
                    digest_reference=digest_ref,
                    digest_turbo=digest_tur,
                    events_reference=events_ref,
                    events_turbo=events_tur,
                )
            )
    return cells


def assert_engine_matrix(
    workloads: Optional[List[str]] = None,
    modes: Optional[List[str]] = None,
) -> List[EngineEquivalence]:
    """Like :func:`engine_equivalence_matrix` but raising on any mismatch."""
    cells = engine_equivalence_matrix(workloads, modes)
    bad = [c for c in cells if not c.matched]
    if bad:
        raise DifferentialMismatch(
            f"{len(bad)} engine identity cell(s) diverged:\n"
            + "\n".join(c.render() for c in bad)
        )
    return cells


def run_matrix(
    cfg: AnyConfig, *, store_dir: str, jobs: int = 2
) -> List[DifferentialReport]:
    """Run every equivalence check against one config."""
    return [
        check_fused_vs_unfused(cfg),
        check_serial_vs_parallel(cfg, jobs=jobs),
        check_store_roundtrip(cfg, store_dir),
        check_obs_on_vs_off(cfg),
    ]


def assert_matrix(
    cfg: AnyConfig, *, store_dir: str, jobs: int = 2
) -> List[DifferentialReport]:
    """Like :func:`run_matrix` but raising on the first mismatch."""
    reports = run_matrix(cfg, store_dir=store_dir, jobs=jobs)
    bad = [r for r in reports if not r.matched]
    if bad:
        raise DifferentialMismatch(
            "; ".join(r.render() for r in bad)
            + f" | config: {cfg.describe()} key={cfg.cache_key()[:16]}"
        )
    return reports
