"""Runtime invariant checking for the simulator (the sanitizer core).

The paper's claims rest on the simulator honoring physical invariants that
unit tests only spot-check: a lossless fabric under PFC, conserved bytes in
every queue, FIFO service order, causal event ordering, and the bounded
state machines of the paper's own mechanisms (VAI token bank, SF decrease
cadence).  After the hot-path rewrites (fused delivery, lazy-cancel
compaction) a latent break in any of these would silently skew every
figure.  This module makes such breaks loud.

Integration follows the :mod:`repro.obs.registry` idiom exactly: one
module-level ``None``-able global (:data:`CHECKER`), consulted at each hook
site as::

    chk = check_invariants.CHECKER
    if chk is not None:
        chk.on_enqueue(self, pkt)

so disabled checking costs a single attribute read, and an enabled checker
only *reads* simulation state — it never schedules events or draws random
numbers, so sanitized runs are byte-identical to bare ones
(``tests/check/test_sanitize_identity.py``).

A breach raises :class:`InvariantViolation` immediately, carrying the
invariant name, the simulated time, and the replay context (config
description, content digest, seed) installed by the experiment runner via
:meth:`InvariantChecker.begin_run`.

Invariant catalog (names appear in violation messages and summaries):

========================  ===================================================
``event-time-monotonic``  the engine never executes an event scheduled
                          before the current virtual time
``queue-bytes-nonneg``    per-port byte accounting never goes negative
``queue-conservation``    ``Port.queue_bytes`` equals the checker's own
                          enqueue-minus-dequeue tally at every transition
``fifo-order``            data packets leave each egress queue in arrival
                          order (control frames legitimately jump the queue)
``pfc-lossless``          no packet is dropped at a port whose upstream is
                          currently PFC-paused (the lossless-fabric promise)
``pfc-occupancy``         PFC ingress byte accounting never goes negative
``gbn-sequence``          go-back-N sanity: sequence numbers within the
                          flow, ACKs only for bytes actually sent, receiver
                          cumulative edge within bounds
``vai-bounds``            VAI token bank in ``[0, bank_cap]``, dampener
                          >= 0, spend multiplier >= 1
``sf-cadence``            SF grants a decrease exactly every
                          ``interval_acks`` acknowledgements
``switch-forward``        a switch only forwards out of its own ports, and
                          never routes control frames
``flightrec-conserve``    the flight recorder's six-way FCT decomposition
                          sums to the flow's FCT within 1 ns, and the flow
                          it explains really acknowledged every byte the
                          shadow high-water mark says was sent
========================  ===================================================

This module is stdlib-only on purpose: the sim core imports it, so it must
not import the sim core back.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional


class InvariantViolation(RuntimeError):
    """A simulator invariant was broken.

    Attributes
    ----------
    invariant:
        Catalog name of the broken invariant (e.g. ``"pfc-lossless"``).
    time_ns:
        Simulated time of the violation, when the hook site knows it.
    context:
        Replay context installed by :meth:`InvariantChecker.begin_run` —
        typically ``config`` (human description), ``cache_key`` (content
        digest prefix), and ``seed``.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        time_ns: Optional[float] = None,
        context: Optional[Dict[str, Any]] = None,
    ):
        self.invariant = invariant
        self.time_ns = time_ns
        self.context = dict(context or {})
        parts = [f"[{invariant}] {message}"]
        if time_ns is not None:
            parts.append(f"at t={time_ns:.1f}ns")
        if self.context:
            parts.append(
                "replay: "
                + " ".join(f"{k}={v}" for k, v in sorted(self.context.items()))
            )
        super().__init__(" | ".join(parts))


class InvariantChecker:
    """Holds per-run shadow state and performs the checks.

    The checker maintains its *own* parallel accounting (byte tallies, FIFO
    stamps, sent high-water marks, SF ACK counts) so that a bookkeeping bug
    in the simulator cannot hide itself — the check compares two
    independently maintained views.

    Shadow state adopts lazily: a port/flow first seen mid-stream is
    initialized from current simulator state, so enabling the checker at
    any point is safe (it simply cannot vouch for history it never saw).
    """

    __slots__ = (
        "context",
        "checks",
        "_port_tally",
        "_port_fifo",
        "_port_stamped",
        "_sf_counts",
        "_sent_hw",
    )

    def __init__(self) -> None:
        self.context: Dict[str, Any] = {}
        #: invariant name -> number of checks performed (summary/monitoring).
        self.checks: Dict[str, int] = {}
        # Shadow byte tally per port (independent of Port.queue_bytes).
        self._port_tally: Dict[Any, float] = {}
        # Expected dequeue order of data packets per port (object ids) and
        # the set of ids we stamped (packets enqueued before the checker was
        # enabled dequeue unstamped and are skipped, never misjudged).
        self._port_fifo: Dict[Any, deque] = {}
        self._port_stamped: Dict[Any, set] = {}
        # Shadow ACK count per SamplingFrequency instance.
        self._sf_counts: Dict[Any, int] = {}
        # Highest next_seq ever reached per SenderState: go-back-N rewinds
        # next_seq, but an ACK may never exceed what was actually sent.
        self._sent_hw: Dict[Any, int] = {}

    # -- lifecycle -----------------------------------------------------------

    def begin_run(self, **context: Any) -> None:
        """Reset per-run shadow state and install the replay context.

        The experiment runner calls this at the top of every run so that
        violations name the config that can reproduce them and shadow state
        from a previous run's (dead) ports cannot leak or accumulate.
        """
        self.context = context
        self._port_tally.clear()
        self._port_fifo.clear()
        self._port_stamped.clear()
        self._sf_counts.clear()
        self._sent_hw.clear()

    def total_checks(self) -> int:
        return sum(self.checks.values())

    def summary(self) -> str:
        total = self.total_checks()
        return (
            f"{total:,} checks across {len(self.checks)} invariant(s), "
            "0 violations"
        )

    def _fail(
        self, invariant: str, message: str, *, time_ns: Optional[float] = None
    ) -> None:
        raise InvariantViolation(
            invariant, message, time_ns=time_ns, context=self.context
        )

    def _count(self, invariant: str) -> None:
        checks = self.checks
        checks[invariant] = checks.get(invariant, 0) + 1

    # -- engine --------------------------------------------------------------

    def on_event(self, fire_time: float, now: float) -> None:
        """Engine hook: about to execute an event at ``fire_time``."""
        self._count("event-time-monotonic")
        if fire_time < now:
            self._fail(
                "event-time-monotonic",
                f"event fires at {fire_time!r}ns, before current time {now!r}ns",
                time_ns=now,
            )

    # -- port ----------------------------------------------------------------

    def on_enqueue(self, port: Any, pkt: Any) -> None:
        """Port hook: ``pkt`` was appended and ``queue_bytes`` charged."""
        self._count("queue-conservation")
        tally = self._port_tally
        prev = tally.get(port)
        if prev is None:
            # First sight of this port: adopt its pre-enqueue occupancy.
            prev = port.queue_bytes - pkt.size
        cur = prev + pkt.size
        tally[port] = cur
        if cur != port.queue_bytes:
            self._fail(
                "queue-conservation",
                f"{port.name}: queue_bytes={port.queue_bytes!r} but shadow "
                f"tally says {cur!r} after enqueue of {pkt.size}B",
                time_ns=port.sim._now,
            )
        if not pkt.is_control:
            pid = id(pkt)
            fifo = self._port_fifo.get(port)
            if fifo is None:
                fifo = self._port_fifo[port] = deque()
                self._port_stamped[port] = set()
            fifo.append(pid)
            self._port_stamped[port].add(pid)

    def on_dequeue(self, port: Any, pkt: Any) -> None:
        """Port hook: ``pkt`` was popped and ``queue_bytes`` released."""
        self._count("queue-bytes-nonneg")
        qb = port.queue_bytes
        now = port.sim._now
        if qb < 0:
            self._fail(
                "queue-bytes-nonneg",
                f"{port.name}: queue_bytes went negative ({qb!r})",
                time_ns=now,
            )
        tally = self._port_tally
        prev = tally.get(port)
        if prev is not None:
            self._count("queue-conservation")
            cur = prev - pkt.size
            tally[port] = cur
            if cur != qb:
                self._fail(
                    "queue-conservation",
                    f"{port.name}: queue_bytes={qb!r} but shadow tally says "
                    f"{cur!r} after dequeue of {pkt.size}B",
                    time_ns=now,
                )
        if not pkt.is_control:
            stamped = self._port_stamped.get(port)
            pid = id(pkt)
            if stamped and pid in stamped:
                # All data packets ahead of a stamped one are themselves
                # stamped (FIFO: older packets left first), so the head of
                # the shadow queue must be exactly this packet.
                self._count("fifo-order")
                stamped.discard(pid)
                expected = self._port_fifo[port].popleft()
                if expected != pid:
                    self._fail(
                        "fifo-order",
                        f"{port.name}: dequeued {pkt!r} out of FIFO order",
                        time_ns=now,
                    )

    def on_drop(self, port: Any, pkt: Any, ingress: Any, reason: str) -> None:
        """Port hook: ``pkt`` was dropped (tail, injected fault, link-down).

        The lossless-fabric promise: while an upstream is PFC-paused, the
        switch has asserted back-pressure precisely so it does not have to
        drop — a drop in that window means the pause machinery failed (or a
        fault injector deliberately broke it, which is how the CI self-test
        exercises this check).
        """
        self._count("pfc-lossless")
        if ingress is not None and ingress.pfc_ingress.paused_upstream:
            self._fail(
                "pfc-lossless",
                f"{port.name}: {reason} drop of {pkt!r} while the upstream "
                "is PFC-paused",
                time_ns=port.sim._now,
            )

    # -- PFC -----------------------------------------------------------------

    def on_pfc_occupancy(self, occupancy: float) -> None:
        """PFC hook: ingress occupancy after a release, before clamping."""
        self._count("pfc-occupancy")
        if occupancy < 0:
            self._fail(
                "pfc-occupancy",
                f"PFC ingress accounting went negative ({occupancy!r}B "
                "before clamp): released more bytes than were charged",
            )

    # -- host (go-back-N) ----------------------------------------------------

    def on_send(self, state: Any) -> None:
        """Host hook: sender emitted a data packet; ``next_seq`` advanced."""
        self._count("gbn-sequence")
        next_seq = state.next_seq
        if next_seq > state.flow.size:
            self._fail(
                "gbn-sequence",
                f"flow {state.flow.flow_id}: sent past end of flow "
                f"(next_seq={next_seq} > size={state.flow.size})",
            )
        if next_seq > self._sent_hw.get(state, 0):
            self._sent_hw[state] = next_seq

    def on_ack(self, state: Any, pkt: Any) -> None:
        """Host hook: cumulative ACK processed; ``state.acked`` updated.

        ``acked > next_seq`` is legitimate after a go-back-N rewind (ACKs
        for pre-rewind data still in flight), so the bound that must hold
        is the high-water mark of bytes ever sent, not ``next_seq``.
        """
        self._count("gbn-sequence")
        flow = state.flow
        if pkt.seq > flow.size:
            self._fail(
                "gbn-sequence",
                f"flow {flow.flow_id}: ACK for byte {pkt.seq} beyond flow "
                f"size {flow.size}",
            )
        hw = self._sent_hw.get(state)
        if hw is not None and pkt.seq > hw:
            self._fail(
                "gbn-sequence",
                f"flow {flow.flow_id}: ACK for byte {pkt.seq} but only "
                f"{hw} bytes were ever sent",
            )
        if state.acked > flow.size:
            self._fail(
                "gbn-sequence",
                f"flow {flow.flow_id}: cumulative ACK {state.acked} beyond "
                f"flow size {flow.size}",
            )

    def on_data(self, state: Any, pkt: Any) -> None:
        """Host hook: receiver processed a data packet."""
        self._count("gbn-sequence")
        flow = state.flow
        if pkt.end_seq() > flow.size:
            self._fail(
                "gbn-sequence",
                f"flow {flow.flow_id}: data [{pkt.seq}, {pkt.end_seq()}) "
                f"beyond flow size {flow.size}",
            )
        if state.received > flow.size:
            self._fail(
                "gbn-sequence",
                f"flow {flow.flow_id}: receiver cumulative edge "
                f"{state.received} beyond flow size {flow.size}",
            )

    # -- flight recorder (cross-layer validation) ----------------------------

    def on_flow_decomposition(
        self,
        state: Any,
        *,
        fct_ns: float,
        components_ns: float,
        residual_ns: float,
        tolerance_ns: float = 1.0,
    ) -> None:
        """Flight-recorder hook: a completed flow's FCT was decomposed.

        Called when both the sanitizer and :mod:`repro.obs.flightrec` are
        enabled, so the recorder's per-flow accounting is validated against
        this checker's *independent* shadow state: the decomposition must
        conserve (components sum to the FCT within ``tolerance_ns``) and
        the completed flow must be consistent with the go-back-N high-water
        mark — every acknowledged byte was actually sent.
        """
        self._count("flightrec-conserve")
        flow = state.flow
        if residual_ns > tolerance_ns or residual_ns < -tolerance_ns:
            self._fail(
                "flightrec-conserve",
                f"flow {flow.flow_id}: decomposition sums to "
                f"{components_ns!r}ns but FCT is {fct_ns!r}ns "
                f"(residual {residual_ns!r}ns exceeds {tolerance_ns}ns)",
            )
        hw = self._sent_hw.get(state)
        if hw is not None and hw < flow.size:
            self._fail(
                "flightrec-conserve",
                f"flow {flow.flow_id}: decomposed as complete but only "
                f"{hw} of {flow.size} bytes were ever sent",
            )

    # -- VAI / SF (the paper's mechanisms) -----------------------------------

    def on_vai(self, vai: Any, multiplier: Optional[float] = None) -> None:
        """VAI hook: after ``on_rtt_end`` or a spending ``ai_multiplier``."""
        self._count("vai-bounds")
        cfg = vai.config
        bank = vai.ai_bank
        if bank < 0 or bank > cfg.bank_cap:
            self._fail(
                "vai-bounds",
                f"VAI token bank {bank!r} outside [0, {cfg.bank_cap!r}]",
            )
        if vai.dampener < 0:
            self._fail("vai-bounds", f"VAI dampener went negative ({vai.dampener!r})")
        if multiplier is not None and multiplier < 1.0:
            self._fail(
                "vai-bounds",
                f"VAI spend multiplier {multiplier!r} below the floor of 1",
            )

    def on_sf_ack(self, sf: Any, granted: bool) -> None:
        """SF hook: one ACK counted; ``granted`` if a decrease was allowed.

        The checker counts ACKs independently; a grant must arrive exactly
        when the shadow count reaches ``interval_acks`` — neither early
        (more decreases than the paper's schedule permits) nor late (the
        fairness force the mechanism exists to restore would weaken).
        """
        self._count("sf-cadence")
        count = self._sf_counts.get(sf, 0) + 1
        if granted:
            if count != sf.interval_acks:
                self._fail(
                    "sf-cadence",
                    f"SF granted a decrease after {count} ACK(s); the "
                    f"schedule is exactly every {sf.interval_acks}",
                )
            count = 0
        elif count >= sf.interval_acks:
            self._fail(
                "sf-cadence",
                f"SF withheld a decrease at {count} ACK(s) with "
                f"interval {sf.interval_acks}",
            )
        self._sf_counts[sf] = count

    def on_sf_reset(self, sf: Any) -> None:
        """SF hook: the protocol reset the ACK counter."""
        self._sf_counts[sf] = 0

    # -- switch --------------------------------------------------------------

    def on_switch_forward(self, switch: Any, pkt: Any, out: Any) -> None:
        """Switch hook: ``pkt`` routed to egress ``out``."""
        self._count("switch-forward")
        if out.owner is not switch:
            self._fail(
                "switch-forward",
                f"{switch.name}: routed {pkt!r} to {out.name}, a port it "
                "does not own (corrupt ECMP table)",
                time_ns=switch.sim._now,
            )
        if pkt.is_control:
            self._fail(
                "switch-forward",
                f"{switch.name}: control frame {pkt!r} entered the routing "
                "path (PFC frames are link-local)",
                time_ns=switch.sim._now,
            )


#: The process-wide checker, or None when sanitizing is off (the default).
#: Hot paths read this once per hook site; None short-circuits everything.
CHECKER: Optional[InvariantChecker] = None


def enable(checker: Optional[InvariantChecker] = None) -> InvariantChecker:
    """Install (and return) the process-wide invariant checker."""
    global CHECKER
    CHECKER = checker if checker is not None else InvariantChecker()
    return CHECKER


def disable() -> None:
    """Remove the checker; hook sites revert to a single None test."""
    global CHECKER
    CHECKER = None


def enabled() -> bool:
    return CHECKER is not None


def get() -> Optional[InvariantChecker]:
    return CHECKER


@contextmanager
def capture() -> Iterator[InvariantChecker]:
    """Enable a fresh checker for a ``with`` block, restoring the old state.

    >>> from repro.check import invariants
    >>> with invariants.capture() as chk:
    ...     pass  # run a simulation
    >>> invariants.enabled()
    False
    """
    global CHECKER
    prev = CHECKER
    checker = InvariantChecker()
    CHECKER = checker
    try:
        yield checker
    finally:
        CHECKER = prev
