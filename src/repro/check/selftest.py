"""Sanitizer self-test: deliberately break an invariant and expect a bang.

A gate that can never fire is worse than no gate — it reads as green while
guarding nothing.  This module builds a tiny PFC-configured dumbbell,
drives it into a pause, and then uses the fault-injection layer to force a
drop during that pause: a textbook ``pfc-lossless`` violation.  With the
sanitizer enabled, the run must die with :class:`InvariantViolation`; the
CI job inverts the exit code (exactly like the ``obs diff`` gate
self-test), so a sanitizer that silently stops detecting breaks turns the
build red.
"""

from __future__ import annotations

from ..cc import make_cc
from ..experiments.runner import make_env
from ..sim.faults import PacketDropInjector
from ..sim.flow import Flow
from ..sim.network import Network
from ..sim.pfc import PfcConfig


def run_injected_violation(timeout_ns: float = 5_000_000.0) -> None:
    """Force a packet drop while a PFC pause is asserted.

    A 10:1 rate mismatch across the switch drives its ingress accounting
    past XOFF almost immediately, so the upstream stays paused for most of
    the run; a fault injector on the slow egress then drops a packet inside
    that window.  Under the sanitizer this raises
    :class:`~repro.check.invariants.InvariantViolation` (invariant
    ``pfc-lossless``); without it, the run completes via go-back-N and this
    function returns normally — which is precisely the "sanitizer is
    broken or off" signal the CI self-test asserts against.
    """
    net = Network(seed=1)
    sender = net.add_host("sender")
    receiver = net.add_host("receiver")
    sw = net.add_switch("sw")
    pfc = PfcConfig(xoff=4_000.0, xon=2_000.0)
    net.connect(sender, sw, 10e9, 1_000.0, pfc=pfc)
    net.connect(sw, receiver, 1e9, 1_000.0, pfc=pfc)
    net.build_routing()

    flow = Flow(0, sender.node_id, receiver.node_id, 200_000, 0.0)
    cc = make_cc("hpcc", make_env(net, sender.node_id, receiver.node_id))
    net.add_flow(flow, cc)

    # The 8th egress enqueue lands inside the initial line-rate burst, when
    # the ingress occupancy is far past XOFF and the pause is guaranteed to
    # be asserted (every value from 3 to 32 works; 8 sits in the middle).
    egress = sw.port_to[receiver.node_id]
    PacketDropInjector(ports=[egress], every_nth=8, seed=3).install(net)
    net.enable_loss_recovery()
    net.run_until_flows_complete(timeout_ns=timeout_ns)
