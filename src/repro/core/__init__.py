"""The paper's contribution: protocol-independent fairness mechanisms.

* :mod:`variable_ai` — Variable Additive Increase (Algorithms 1-2);
* :mod:`sampling_frequency` — ACK-counted multiplicative decreases;
* :mod:`fluid_model` — the Sec. IV-B convergence model behind Fig. 4.
"""

from .fluid_model import (
    FluidModelParams,
    fairness_difference,
    fairness_gap_slope_at_zero,
    fig4_series,
    gbps_to_bytes_per_ns,
    initial_slope_condition,
    integrate_numerically,
    per_rtt_rate,
    sampling_rate,
)
from .sampling_frequency import SamplingFrequency
from .variable_ai import VariableAI, VariableAIConfig

__all__ = [
    "FluidModelParams",
    "SamplingFrequency",
    "VariableAI",
    "VariableAIConfig",
    "fairness_difference",
    "fairness_gap_slope_at_zero",
    "fig4_series",
    "gbps_to_bytes_per_ns",
    "initial_slope_condition",
    "integrate_numerically",
    "per_rtt_rate",
    "sampling_rate",
]
