"""Fluid model of Sampling Frequency convergence (Sec. IV-B, Fig. 4).

The paper models two flows performing multiplicative decrease under two
schedules and compares how fast the rate *gap* closes:

* **per-RTT decrease** — ``R_i'(t) = -beta * R_i(t) / r`` with ``r`` the
  (fixed, congested) RTT.  Closed form: ``R_i(t) = R_i(0) * exp(-beta t / r)``.
* **Sampling Frequency decrease** — a decrease every ``s`` ACKs means a
  decrease frequency ``f = s * MTU / S_i(t)`` (the faster a flow sends, the
  more often it reacts), giving ``S_i'(t) = -beta * S_i(t)^2 / (s * MTU)``.
  Closed form: ``S_i(t) = S_i(0) / (1 + S_i(0) * beta * t / (s * MTU))``.

Fairness is measured as the rate gap between the two flows; Fig. 4 plots
``(R_1 - R_0) - (S_1 - S_0)`` over time — positive values mean Sampling
Frequency is fairer at that instant.  The paper also derives the initial-
slope condition ``1/r < (C_1 + C_0) / (s * MTU)`` for SF to win.

Units follow the paper's Fig. 4 caption: rates in **bytes per nanosecond**
(100 Gbps = 12.5 B/ns), time in nanoseconds, MTU in bytes.

Both closed forms and a generic ODE integration (``scipy.solve_ivp``) are
provided; tests confirm they agree, which validates the closed forms and
guards the model against regressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

import numpy as np
from scipy.integrate import solve_ivp

from ..units import Gbps


def gbps_to_bytes_per_ns(rate_gbps: float) -> float:
    """Convert Gbps to the model's bytes-per-nanosecond units."""
    return rate_gbps * Gbps / 8.0 / 1e9


@dataclass(frozen=True)
class FluidModelParams:
    """Fig. 4 parameters (defaults are the paper's caption values)."""

    rtt_ns: float = 30_000.0  # r
    sampling_acks: int = 30  # s
    mtu_bytes: float = 1_000.0  # MTU
    beta: float = 0.5
    rate1_bytes_per_ns: float = gbps_to_bytes_per_ns(100.0)  # C1 (faster flow)
    rate0_bytes_per_ns: float = gbps_to_bytes_per_ns(50.0)  # C0 (slower flow)

    def __post_init__(self) -> None:
        if not 0 < self.beta < 1:
            raise ValueError(f"beta must be in (0, 1), got {self.beta}")
        if self.rtt_ns <= 0 or self.mtu_bytes <= 0 or self.sampling_acks < 1:
            raise ValueError("rtt, MTU must be positive and s >= 1")
        if self.rate1_bytes_per_ns < self.rate0_bytes_per_ns:
            raise ValueError("rate1 must be the faster flow (>= rate0)")


def per_rtt_rate(t: np.ndarray, r0: float, params: FluidModelParams) -> np.ndarray:
    """Closed-form ``R(t)`` for the per-RTT decrease model."""
    t = np.asarray(t, dtype=float)
    return r0 * np.exp(-params.beta * t / params.rtt_ns)


def sampling_rate(t: np.ndarray, s0: float, params: FluidModelParams) -> np.ndarray:
    """Closed-form ``S(t)`` for the Sampling Frequency decrease model."""
    t = np.asarray(t, dtype=float)
    k = params.beta / (params.sampling_acks * params.mtu_bytes)
    return s0 / (1.0 + s0 * k * t)


def fairness_difference(
    t: np.ndarray, params: FluidModelParams
) -> np.ndarray:
    """Fig. 4 series: ``(R1 - R0) - (S1 - S0)`` at times ``t`` (ns)."""
    r1 = per_rtt_rate(t, params.rate1_bytes_per_ns, params)
    r0 = per_rtt_rate(t, params.rate0_bytes_per_ns, params)
    s1 = sampling_rate(t, params.rate1_bytes_per_ns, params)
    s0 = sampling_rate(t, params.rate0_bytes_per_ns, params)
    return (r1 - r0) - (s1 - s0)


def initial_slope_condition(params: FluidModelParams) -> bool:
    """The paper's Eq. constraint for SF to converge faster at t = 0.

    ``1/r < (C1 + C0) / (s * MTU)``: true when initial rates are high,
    sampling is frequent, and RTTs are long — exactly the conditions right
    after a new flow joins.
    """
    lhs = 1.0 / params.rtt_ns
    rhs = (params.rate1_bytes_per_ns + params.rate0_bytes_per_ns) / (
        params.sampling_acks * params.mtu_bytes
    )
    return lhs < rhs


def fairness_gap_slope_at_zero(params: FluidModelParams) -> float:
    """Initial derivative of the fairness difference (positive = SF fairer).

    ``d/dt [(R1-R0) - (S1-S0)]`` at ``t = 0``:
    ``-beta (C1 - C0)/r + beta (C1^2 - C0^2)/(s MTU)``.
    """
    c1, c0 = params.rate1_bytes_per_ns, params.rate0_bytes_per_ns
    return (
        -params.beta * (c1 - c0) / params.rtt_ns
        + params.beta * (c1 * c1 - c0 * c0) / (params.sampling_acks * params.mtu_bytes)
    )


def integrate_numerically(
    t_end_ns: float,
    params: FluidModelParams,
    n_points: int = 500,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Integrate both models with scipy and return ``(t, R pair, S pair)``.

    Cross-checks the closed forms; returned arrays have shapes
    ``(n,)``, ``(n, 2)``, ``(n, 2)`` with columns ``[flow1, flow0]``.
    """
    t_eval = np.linspace(0.0, t_end_ns, n_points)

    def rhs(_t: float, y: np.ndarray) -> np.ndarray:
        r1, r0, s1, s0 = y
        k = params.beta / (params.sampling_acks * params.mtu_bytes)
        return np.array(
            [
                -params.beta * r1 / params.rtt_ns,
                -params.beta * r0 / params.rtt_ns,
                -k * s1 * s1,
                -k * s0 * s0,
            ]
        )

    y0 = np.array(
        [
            params.rate1_bytes_per_ns,
            params.rate0_bytes_per_ns,
            params.rate1_bytes_per_ns,
            params.rate0_bytes_per_ns,
        ]
    )
    sol = solve_ivp(rhs, (0.0, t_end_ns), y0, t_eval=t_eval, rtol=1e-9, atol=1e-12)
    if not sol.success:  # pragma: no cover - solve_ivp failure is exceptional
        raise RuntimeError(f"fluid model integration failed: {sol.message}")
    return sol.t, sol.y[:2].T, sol.y[2:].T


def fig4_series(
    t_end_ns: float = 200_000.0,
    n_points: int = 400,
    params: FluidModelParams = FluidModelParams(),
) -> Tuple[np.ndarray, np.ndarray]:
    """The Fig. 4 curve with paper-default parameters.

    Returns ``(t_ns, fairness_difference_bytes_per_ns)``.
    """
    t = np.linspace(0.0, t_end_ns, n_points)
    return t, fairness_difference(t, params)


# ---------------------------------------------------------------------------
# General max-min fair allocation (flow-level simulation backend)
# ---------------------------------------------------------------------------

#: Relative slack used when deciding a link is saturated / a cap is reached.
_WF_EPS = 1e-12


def max_min_allocation(
    capacities: Mapping[Hashable, float],
    flow_links: Mapping[Hashable, Iterable[Hashable]],
    caps: Optional[Mapping[Hashable, float]] = None,
) -> Dict[Hashable, float]:
    """Max-min fair rates via progressive water-filling.

    Parameters
    ----------
    capacities:
        Link id -> capacity (any consistent rate unit, >= 0).  A
        zero-capacity link models a faulted/down link: every flow crossing
        it is frozen at rate 0.
    flow_links:
        Flow id -> the link ids the flow traverses.  A flow listed with no
        links (an idealized loopback) must carry a cap, otherwise its fair
        rate would be unbounded and a ``ValueError`` is raised.
    caps:
        Optional flow id -> maximum rate (congestion-control window caps,
        NIC line rates).  A capped flow freezes at its cap once the shared
        water level reaches it; its unused share is redistributed.

    Returns flow id -> allocated rate.  The algorithm raises all unfrozen
    flows' rates in lockstep; each iteration freezes at least one flow
    (either a saturated link's users or a flow at its cap), so it
    terminates in at most ``len(flow_links)`` rounds.  Iteration order is
    sorted by ``repr`` of the ids, making ties deterministic.
    """
    order = sorted(flow_links, key=repr)
    links_of: Dict[Hashable, Tuple[Hashable, ...]] = {}
    for fid in order:
        links = tuple(flow_links[fid])
        for link in links:
            if link not in capacities:
                raise KeyError(f"flow {fid!r} crosses unknown link {link!r}")
            if capacities[link] < 0:
                raise ValueError(f"link {link!r} has negative capacity")
        if not links and (caps is None or fid not in caps):
            raise ValueError(
                f"flow {fid!r} crosses no links and has no cap; its max-min "
                "rate is unbounded"
            )
        links_of[fid] = links

    rates: Dict[Hashable, float] = {fid: 0.0 for fid in order}
    remaining: Dict[Hashable, float] = dict(capacities)
    unfrozen = list(order)
    while unfrozen:
        users: Dict[Hashable, int] = {}
        for fid in unfrozen:
            for link in links_of[fid]:
                users[link] = users.get(link, 0) + 1
        # The uniform increment at which the first constraint binds.
        increment = float("inf")
        for link in sorted(users, key=repr):
            increment = min(increment, remaining[link] / users[link])
        if caps is not None:
            for fid in unfrozen:
                cap = caps.get(fid)
                if cap is not None:
                    increment = min(increment, cap - rates[fid])
        if increment == float("inf"):  # only capless, linkless flows remain
            raise ValueError("unbounded allocation: no binding constraint")
        increment = max(increment, 0.0)
        for fid in unfrozen:
            rates[fid] += increment
        for link, n in users.items():
            remaining[link] -= increment * n
        still: list = []
        for fid in unfrozen:
            scale = max(
                (capacities[link] for link in links_of[fid]), default=1.0
            )
            saturated = any(
                remaining[link] <= _WF_EPS * max(capacities[link], 1.0)
                for link in links_of[fid]
            )
            capped = (
                caps is not None
                and caps.get(fid) is not None
                and rates[fid] >= caps[fid] - _WF_EPS * max(caps[fid], scale, 1.0)
            )
            if saturated or capped:
                continue
            still.append(fid)
        if len(still) == len(unfrozen):  # pragma: no cover - defensive
            raise RuntimeError("water-filling failed to make progress")
        unfrozen = still
    return rates
