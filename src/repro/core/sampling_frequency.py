"""Sampling Frequency (Sec. IV-B): ACK-counted multiplicative decreases.

Protocols like HPCC and Swift fully react to at most one congestion signal
per RTT, which destroys a natural fairness force: flows with more bandwidth
receive more ACKs and, if the protocol reacted per ACK, would decrease more
often.  Sampling Frequency restores a tunable fraction of that force: a
*decrease* of the reference rate is permitted every ``interval_acks``
acknowledgements (the paper uses 30), while *increases* remain once-per-RTT
(reacting to every ACK on increase would advantage big flows — the opposite
of the goal, Sec. IV-B).

This class is the schedule only; the reference-rate semantics (per-ACK rate
moves computed against a reference that updates per sampling period,
Sec. V-B) live in the protocol implementations.
"""

from __future__ import annotations

from ..check import invariants as check_invariants
from ..obs import registry as obs_registry


class SamplingFrequency:
    """Counts ACKs and grants a decrease every ``interval_acks`` of them."""

    __slots__ = ("interval_acks", "_count", "decreases_granted")

    def __init__(self, interval_acks: int):
        if interval_acks < 1:
            raise ValueError(
                f"sampling interval must be >= 1 ACK, got {interval_acks}"
            )
        self.interval_acks = interval_acks
        self._count = 0
        self.decreases_granted = 0

    def on_ack(self) -> bool:
        """Record one ACK; True when a reference-rate decrease is permitted."""
        self._count += 1
        granted = self._count >= self.interval_acks
        if granted:
            self._count = 0
            self.decreases_granted += 1
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("sf.decreases_granted").inc()
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_sf_ack(self, granted)
        return granted

    @property
    def acks_since_grant(self) -> int:
        return self._count

    def reset(self) -> None:
        self._count = 0
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_sf_reset(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SamplingFrequency every={self.interval_acks} acks "
            f"count={self._count} granted={self.decreases_granted}>"
        )
