"""Variable Additive Increase (Sec. IV-A, Algorithms 1 and 2).

The mechanism exploits the paper's two observations: (1) bandwidth
allocations are unfair right after a new flow joins, and (2) a new flow
joining produces a large congestion spike on the bottleneck.  It therefore
makes the additive-increase parameter *a function of congestion*:

* **Token generation (Algorithm 1)** — once per RTT, if the maximum measured
  congestion over the RTT exceeded ``token_thresh``, mint
  ``measured_congestion / ai_div`` tokens into a bank capped at ``bank_cap``.
* **Dampener (Algorithm 1)** — to prevent the feedback loop (elevated AI →
  queues → more tokens), a dampener grows with congestion
  (``+= measured/thresh`` per congested RTT) and divides the spent tokens.
  It decays by 1 per mildly-congested RTT once the bank is empty, and resets
  to zero only when the bank is empty *and* a full RTT saw no congestion —
  at that point there is no input left in the system, so no feedback.
* **Token spending (Algorithm 2)** — each rate-update period the protocol
  takes ``min(ai_cap, bank)`` tokens out of the bank, divides by
  ``dampener / dampener_constant + 1``, floors at one token, and multiplies
  its base AI by the result.

"Congestion" is in protocol-native units: bytes of queue for HPCC
(via INT), nanoseconds of RTT for Swift.  The class is unit-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..check import invariants as check_invariants
from ..obs import registry as obs_registry


@dataclass(frozen=True)
class VariableAIConfig:
    """Parameters for Variable AI (Sec. VI-A gives the paper's values).

    Attributes
    ----------
    token_thresh:
        Congestion level above which tokens are minted and the dampener
        grows.  Paper: the network's minimum BDP (~50 KB of queue) for HPCC;
        target delay + min-BDP delay (~target + 4 us) for Swift.
    ai_div:
        Congestion units per minted token.  Paper: 1 KB/token (HPCC),
        30 ns/token (Swift).
    bank_cap:
        Maximum tokens the bank can hold.  Paper: 1000.
    ai_cap:
        Maximum tokens spent per rate-update period.  Paper: 100.
    dampener_constant:
        Divisor scale for the dampener.  Paper: 8.
    """

    token_thresh: float
    ai_div: float
    bank_cap: float = 1000.0
    ai_cap: float = 100.0
    dampener_constant: float = 8.0

    def __post_init__(self) -> None:
        if self.token_thresh <= 0:
            raise ValueError(f"token_thresh must be positive, got {self.token_thresh}")
        if self.ai_div <= 0:
            raise ValueError(f"ai_div must be positive, got {self.ai_div}")
        if self.bank_cap < 0 or self.ai_cap <= 0:
            raise ValueError("bank_cap must be >= 0 and ai_cap > 0")
        if self.dampener_constant <= 0:
            raise ValueError("dampener_constant must be positive")


class VariableAI:
    """Token bank + dampener state machine (Algorithms 1 and 2).

    Protocol integration contract:

    * call :meth:`observe` for every congestion measurement (per ACK);
    * call :meth:`on_rtt_end` exactly once per RTT, passing whether the whole
      RTT was congestion-free in the protocol's own terms (HPCC: the
      multiplicative factor ``C = U/eta`` stayed <= 1; Swift: no delay sample
      exceeded the target);
    * call :meth:`ai_multiplier` at each rate-update period with
      ``spend=True`` to debit the bank, or ``spend=False`` to peek.
    """

    __slots__ = ("config", "ai_bank", "dampener", "_measured", "_spent_multiplier")

    def __init__(self, config: VariableAIConfig):
        self.config = config
        self.ai_bank = 0.0
        self.dampener = 0.0
        self._measured = 0.0
        # Multiplier from the most recent spend; per-ACK peeks reuse it.
        self._spent_multiplier = 1.0

    # -- Algorithm 1: token generation & dampener ----------------------------

    def observe(self, congestion: float) -> None:
        """Record one congestion measurement (tracks the max over the RTT)."""
        if congestion > self._measured:
            self._measured = congestion

    @property
    def measured_congestion(self) -> float:
        """Max congestion observed since the last RTT boundary."""
        return self._measured

    def on_rtt_end(self, no_congestion: bool) -> None:
        """Run Algorithm 1 at an RTT boundary.

        Parameters
        ----------
        no_congestion:
            True iff the protocol saw *no* congestion at all during the RTT
            (a stronger statement than ``measured < token_thresh``) — the
            only condition, together with an empty bank, that resets the
            dampener to zero.
        """
        cfg = self.config
        measured = self._measured
        if measured > cfg.token_thresh:
            before = self.ai_bank
            self.ai_bank = min(measured / cfg.ai_div + self.ai_bank, cfg.bank_cap)
            self.dampener += measured / cfg.token_thresh
            reg = obs_registry.STATS
            if reg is not None:
                # Banked delta, not the raw mint: the cap truncation matters.
                reg.counter("vai.tokens_banked").inc(self.ai_bank - before)
        elif self.ai_bank == 0.0:
            if no_congestion:
                self.dampener = 0.0
            elif measured < cfg.token_thresh:
                self.dampener = max(self.dampener - 1.0, 0.0)
        self._measured = 0.0
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_vai(self)

    # -- Algorithm 2: token spending ------------------------------------------

    def ai_multiplier(self, spend: bool = True) -> float:
        """Number of effective tokens for this update (>= 1).

        The protocol multiplies its base AI by this value.  With
        ``spend=True`` (a real rate-update period) the undampened token count
        is debited from the bank; with ``spend=False`` the most recently spent
        multiplier is returned unchanged, so per-ACK window recomputations
        between update periods see a consistent AI.
        """
        if not spend:
            return self._spent_multiplier
        cfg = self.config
        tokens = min(cfg.ai_cap, self.ai_bank)
        self.ai_bank = max(self.ai_bank - tokens, 0.0)
        divisor = self.dampener / cfg.dampener_constant + 1.0
        self._spent_multiplier = max(tokens / divisor, 1.0)
        if tokens > 0.0:
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("vai.tokens_spent").inc(tokens)
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_vai(self, multiplier=self._spent_multiplier)
        return self._spent_multiplier

    def reset(self) -> None:
        """Return to the initial (no tokens, no dampener) state."""
        self.ai_bank = 0.0
        self.dampener = 0.0
        self._measured = 0.0
        self._spent_multiplier = 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VariableAI bank={self.ai_bank:.1f} dampener={self.dampener:.2f} "
            f"measured={self._measured:.1f}>"
        )
