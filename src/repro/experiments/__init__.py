"""Experiment harness: configs, runners, and per-figure reproductions."""

from .config import (
    DATACENTER_VARIANTS,
    DatacenterConfig,
    IncastConfig,
    paper_datacenter,
    paper_incast,
    red_for_rate,
    scaled_datacenter,
    scaled_incast,
    with_seed,
)
from .extensions import ALL_EXTENSIONS, ext_generality, ext_load_sweep, ext_seed_variance
from .figures import ALL_FIGURES, FigureResult
from .reporting import format_table, render
from .sweeps import (
    Aggregate,
    compare_variants_across_seeds,
    datacenter_seed_sweep,
    incast_seed_sweep,
    load_sweep,
)
from .runner import (
    DatacenterResult,
    IncastResult,
    clear_caches,
    make_env,
    run_datacenter,
    run_datacenter_cached,
    run_incast,
    run_incast_cached,
)

__all__ = [
    "ALL_EXTENSIONS",
    "ALL_FIGURES",
    "Aggregate",
    "DATACENTER_VARIANTS",
    "DatacenterConfig",
    "DatacenterResult",
    "FigureResult",
    "IncastConfig",
    "IncastResult",
    "clear_caches",
    "compare_variants_across_seeds",
    "datacenter_seed_sweep",
    "ext_generality",
    "ext_load_sweep",
    "ext_seed_variance",
    "format_table",
    "incast_seed_sweep",
    "load_sweep",
    "make_env",
    "paper_datacenter",
    "paper_incast",
    "red_for_rate",
    "render",
    "run_datacenter",
    "run_datacenter_cached",
    "run_incast",
    "run_incast_cached",
    "scaled_datacenter",
    "scaled_incast",
    "with_seed",
]
