"""Command-line entry point: ``repro-experiments --fig 5`` or ``--all``.

``--scale paper`` runs the paper's full parameters (hours in pure Python at
figure 10-13 scale — see EXPERIMENTS.md); the default ``scaled`` presets run
each figure in seconds to a couple of minutes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .extensions import ALL_EXTENSIONS
from .figures import ALL_FIGURES
from .reporting import render


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the figures of 'Fast Convergence to Fairness for "
            "Reduced Long Flow Tail Latency in Datacenter Networks' "
            "(IPPS 2022)."
        ),
    )
    parser.add_argument(
        "--fig",
        action="append",
        dest="figs",
        metavar="N",
        help=f"figure to reproduce (repeatable); one of {sorted(ALL_FIGURES, key=int)}",
    )
    parser.add_argument(
        "--all", action="store_true", help="reproduce every figure in order"
    )
    parser.add_argument(
        "--ext",
        action="append",
        dest="exts",
        metavar="NAME",
        help=f"extension experiment (repeatable); one of {sorted(ALL_EXTENSIONS)}",
    )
    parser.add_argument(
        "--scale",
        choices=("scaled", "paper"),
        default="scaled",
        help="parameter preset (default: scaled; 'paper' is full Sec. VI-A scale)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    figs = list(args.figs or [])
    exts = list(args.exts or [])
    if args.all:
        figs = sorted(ALL_FIGURES, key=int)
    if not figs and not exts:
        build_parser().print_help()
        return 2
    for fig_id in figs:
        fn = ALL_FIGURES.get(str(fig_id))
        if fn is None:
            print(f"error: unknown figure {fig_id!r}", file=sys.stderr)
            return 2
        start = time.perf_counter()
        result = fn(scale=args.scale)
        elapsed = time.perf_counter() - start
        print(render(result))
        print(f"\n[figure {fig_id} reproduced in {elapsed:.1f}s]\n")
    for ext_id in exts:
        fn = ALL_EXTENSIONS.get(str(ext_id))
        if fn is None:
            print(f"error: unknown extension {ext_id!r}", file=sys.stderr)
            return 2
        start = time.perf_counter()
        result = fn(scale=args.scale)
        elapsed = time.perf_counter() - start
        print(render(result))
        print(f"\n[extension {ext_id} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
