"""Command-line entry point: ``repro-experiments --fig 5`` or ``--all``.

``--scale paper`` runs the paper's full parameters (hours in pure Python at
figure 10-13 scale — see EXPERIMENTS.md); the default ``scaled`` presets run
each figure in seconds to a couple of minutes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..sim.network import RunBudget
from .extensions import ALL_EXTENSIONS
from .figures import ALL_FIGURES
from .reporting import render
from .runner import drain_incomplete_runs, run_with_retry, set_default_budget


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the figures of 'Fast Convergence to Fairness for "
            "Reduced Long Flow Tail Latency in Datacenter Networks' "
            "(IPPS 2022)."
        ),
    )
    parser.add_argument(
        "--fig",
        action="append",
        dest="figs",
        metavar="N",
        help=f"figure to reproduce (repeatable); one of {sorted(ALL_FIGURES, key=int)}",
    )
    parser.add_argument(
        "--all", action="store_true", help="reproduce every figure in order"
    )
    parser.add_argument(
        "--ext",
        action="append",
        dest="exts",
        metavar="NAME",
        help=f"extension experiment (repeatable); one of {sorted(ALL_EXTENSIONS)}",
    )
    parser.add_argument(
        "--scale",
        choices=("scaled", "paper"),
        default="scaled",
        help="parameter preset (default: scaled; 'paper' is full Sec. VI-A scale)",
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        metavar="S",
        help="per-run wall-clock watchdog (abort a run exceeding S seconds)",
    )
    parser.add_argument(
        "--budget-events",
        type=int,
        default=None,
        metavar="N",
        help="per-run event-count watchdog (abort a run exceeding N events)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry a failing figure/extension up to N times (default: 0)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    figs = list(args.figs or [])
    exts = list(args.exts or [])
    if args.all:
        figs = sorted(ALL_FIGURES, key=int)
    if not figs and not exts:
        build_parser().print_help()
        return 2
    if args.budget_seconds is not None or args.budget_events is not None:
        set_default_budget(
            RunBudget(
                wall_clock_s=args.budget_seconds, max_events=args.budget_events
            )
        )
    exit_code = 0
    jobs = [("figure", str(f), ALL_FIGURES) for f in figs]
    jobs += [("extension", str(e), ALL_EXTENSIONS) for e in exts]
    for kind, job_id, registry in jobs:
        fn = registry.get(job_id)
        if fn is None:
            print(f"error: unknown {kind} {job_id!r}", file=sys.stderr)
            return 2
        start = time.perf_counter()
        try:
            result = run_with_retry(fn, scale=args.scale, retries=args.retries)
        except Exception as exc:
            print(
                f"error: {kind} {job_id} failed after {args.retries + 1} "
                f"attempt(s): {type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            exit_code = 1
            continue
        elapsed = time.perf_counter() - start
        print(render(result))
        print(f"\n[{kind} {job_id} reproduced in {elapsed:.1f}s]\n")
    incomplete = drain_incomplete_runs()
    if incomplete:
        print(
            f"error: {len(incomplete)} run(s) ended with incomplete flows:",
            file=sys.stderr,
        )
        for line in incomplete:
            print(f"  - {line}", file=sys.stderr)
        exit_code = 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
