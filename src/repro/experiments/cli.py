"""Command-line entry point: ``repro-experiments --fig 5`` or ``--all``.

``--scale paper`` runs the paper's full parameters (hours in pure Python at
figure 10-13 scale — see EXPERIMENTS.md); the default ``scaled`` presets run
each figure in seconds to a couple of minutes.

Campaign execution: the simulations behind the selected figures are
collected up front and run as one deduplicated campaign — across ``--jobs``
worker processes, backed by the persistent result store (``--store DIR``,
on by default; ``--no-store`` opts out).  A store entry is valid only for
the exact simulator code version that produced it (see
:mod:`repro.experiments.store`); ``--store-gc`` deletes entries from older
code versions.  ``--profile`` reports per-figure event counts and events/s
from the simulator's global event counter.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, List, Optional

from ..check import invariants as check_invariants
from ..obs import analytics as obs_analytics
from ..obs import exporter as obs_exporter
from ..obs import flightrec as obs_flightrec
from ..obs import live as obs_live
from ..obs import profiler as obs_profiler
from ..obs import registry as obs_registry
from ..obs import regress as obs_regress
from ..obs import stitch as obs_stitch
from ..obs import telemetry as obs_telemetry
from ..obs import tracer as obs_tracer
from ..obs.report import render_flows, render_report, render_why
from ..sim import engine
from ..sim.network import RunBudget
from .extensions import ALL_EXTENSIONS
from .figures import ALL_FIGURES
from .config import BACKENDS, ENGINES, set_default_backend, set_default_engine
from .parallel import campaign_for_figures, run_campaign, run_config
from .reporting import render
from .runner import drain_incomplete_runs, run_with_retry, set_default_budget
from .store import ResultStore, set_store
from .supervisor import (
    CampaignIncomplete,
    CampaignJournal,
    RetryPolicy,
    SupervisorConfig,
    load_journal,
)

#: Default on-disk result store location (relative to the working directory).
DEFAULT_STORE_DIR = ".repro-store"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the figures of 'Fast Convergence to Fairness for "
            "Reduced Long Flow Tail Latency in Datacenter Networks' "
            "(IPPS 2022)."
        ),
    )
    parser.add_argument(
        "--fig",
        action="append",
        dest="figs",
        metavar="N",
        help=f"figure to reproduce (repeatable); one of {sorted(ALL_FIGURES, key=int)}",
    )
    parser.add_argument(
        "--all", action="store_true", help="reproduce every figure in order"
    )
    parser.add_argument(
        "--ext",
        action="append",
        dest="exts",
        metavar="NAME",
        help=f"extension experiment (repeatable); one of {sorted(ALL_EXTENSIONS)}",
    )
    parser.add_argument(
        "--scale",
        choices=("scaled", "paper"),
        default="scaled",
        help="parameter preset (default: scaled; 'paper' is full Sec. VI-A scale)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="packet",
        help=(
            "simulation backend: 'packet' is the exact event-level "
            "simulator, 'flow' the fluid fast path (~20x+ faster, "
            "approximate — see DESIGN.md), 'hybrid' packetizes short "
            "flows over a fluid background (default: packet)"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="reference",
        help=(
            "simulator core for packet-backend runs: 'reference' is the "
            "pure-Python global-heap engine, 'turbo' the struct-of-arrays "
            "timing-wheel core (byte-identical outputs, CI-enforced; "
            "requires numpy — see 'pip install repro[perf]') "
            "(default: reference)"
        ),
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        metavar="S",
        help="per-run wall-clock watchdog (abort a run exceeding S seconds)",
    )
    parser.add_argument(
        "--budget-events",
        type=int,
        default=None,
        metavar="N",
        help="per-run event-count watchdog (abort a run exceeding N events)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry a failing figure/extension up to N times (default: 0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the simulation campaign (default: 1)",
    )
    parser.add_argument(
        "--supervise",
        action="store_true",
        help=(
            "run the campaign under the fault-tolerant supervisor: worker "
            "liveness monitoring (hung workers killed and rescheduled), "
            "transient-error retries with backoff, and quarantine of poison "
            "configs instead of aborting the sweep"
        ),
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "append-only campaign journal (one fsync'd JSON line per state "
            "transition); survives crashes and feeds --resume"
        ),
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help=(
            "resume an interrupted campaign from its journal: completed "
            "configs are served from the store, quarantines carry over, and "
            "only unfinished work re-runs (implies --supervise)"
        ),
    )
    parser.add_argument(
        "--partial-ok",
        action="store_true",
        help=(
            "finish a supervised campaign even when some configs are "
            "quarantined or lost, surfacing per-config statuses instead of "
            "failing the whole invocation"
        ),
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help=(
            "supervised mode: total attempts per config before it is "
            "quarantined (transient errors) or written off (worker losses) "
            "(default: 3)"
        ),
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.0,
        metavar="S",
        help=(
            "supervised mode: base delay before re-attempting a failed "
            "config; doubles per attempt with deterministic jitter "
            "(default: 0, retry immediately)"
        ),
    )
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE_DIR,
        metavar="DIR",
        help=f"persistent result store directory (default: {DEFAULT_STORE_DIR})",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the persistent result store for this invocation",
    )
    parser.add_argument(
        "--store-gc",
        action="store_true",
        help="delete store entries from older simulator code versions",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="report per-figure simulator event counts and events/s",
    )
    parser.add_argument(
        "--telemetry",
        nargs="?",
        const="telemetry.json",
        default=None,
        metavar="PATH",
        help=(
            "collect run/campaign telemetry (phase timings, per-worker "
            "heartbeats, cache stats) and write a schema-validated manifest "
            "(default PATH: telemetry.json)"
        ),
    )
    parser.add_argument(
        "--analytics",
        action="store_true",
        help=(
            "attach a live streaming-analytics sampler to every run "
            "(Jain fairness + online convergence detection + P2 FCT-slowdown "
            "percentiles); summaries land in the telemetry manifest's "
            "'analytics' section and in [campaign] heartbeats"
        ),
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "enable the runtime invariant sanitizer (repro.check): every "
            "simulated run is checked for event-order, byte-conservation, "
            "FIFO, PFC-losslessness, go-back-N, and VAI/SF invariants; a "
            "violation aborts the run with an InvariantViolation naming "
            "the replayable config"
        ),
    )
    parser.add_argument(
        "--flightrec",
        action="store_true",
        help=(
            "attach the flow flight recorder to every packet-backend run: "
            "per-flow FCT decomposition (queueing / serialization / "
            "propagation / PFC pause / retx recovery / CC throttle, "
            "conservation-checked to 1 ns), per-link utilization + queue "
            "series, and a convergence timeline; lands in the manifest's "
            "'flightrec' section — inspect with 'obs why FLOW' and "
            "'obs flows --top-tail'"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "record a structured event trace and write Chrome trace_event "
            "JSON (open in Perfetto or chrome://tracing)"
        ),
    )
    parser.add_argument(
        "--trace-capacity",
        type=int,
        default=obs_tracer.DEFAULT_CAPACITY,
        metavar="N",
        help=(
            "tracer ring-buffer capacity for --trace-out and --trace-shards "
            f"(oldest events are dropped beyond it; default: "
            f"{obs_tracer.DEFAULT_CAPACITY})"
        ),
    )
    parser.add_argument(
        "--trace-shards",
        default=None,
        metavar="DIR",
        help=(
            "supervised campaigns: write one Chrome-trace shard per "
            "completed run to DIR (drained from each worker's tracer ring) "
            "and journal their paths; merge with 'obs stitch JOURNAL'"
        ),
    )
    parser.add_argument(
        "--profile-phases",
        nargs="?",
        const="phase",
        default=None,
        choices=("phase", "func"),
        metavar="MODE",
        help=(
            "attribute simulator wall time to hot-path phases (event loop, "
            "port serialize/propagate, CC decision, PFC, fluid relax); "
            "'phase' uses explicit engine hooks, 'func' adds a "
            "sys.setprofile function profiler (slower, finer).  The "
            "attribution lands in the manifest's 'profile' section "
            "(default MODE: phase)"
        ),
    )
    parser.add_argument(
        "--flame-out",
        default=None,
        metavar="PATH",
        help=(
            "with --profile-phases: also write collapsed-stack flamegraph "
            "text (one 'a;b;c <usec>' line per stack; feed to flamegraph.pl "
            "or speedscope)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "write an OpenMetrics text snapshot of the instrumentation "
            "registry (counters/gauges/histograms + campaign gauges) at "
            "the end of the invocation"
        ),
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve live OpenMetrics on http://127.0.0.1:PORT/metrics for "
            "the duration of the invocation (0 picks a free port)"
        ),
    )
    return parser


def _read_json(path: str, what: str) -> Optional[dict]:
    """Load a JSON file, printing a uniform error on failure."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {what} {path}: {exc}", file=sys.stderr)
        return None


def obs_diff_main(args: "argparse.Namespace") -> int:
    """``obs diff``: compare two observability artifacts, exit 1 on regression."""
    baseline_doc = _read_json(args.baseline, "baseline")
    current_doc = _read_json(args.current, "current")
    if baseline_doc is None or current_doc is None:
        return 2
    try:
        base_metrics, tolerances, directions = obs_regress.load_comparable(
            baseline_doc
        )
        current_metrics = obs_regress.extract_metrics(current_doc)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for spec in args.tolerances or ():
        name, _, frac = spec.partition("=")
        try:
            tolerances[name] = float(frac)
        except ValueError:
            print(f"error: bad --tolerance {spec!r} (want NAME=FRACTION)",
                  file=sys.stderr)
            return 2
    deltas = obs_regress.compare(
        base_metrics,
        current_metrics,
        tolerances=tolerances,
        directions=directions,
        default_tolerance=args.default_tolerance,
    )
    print(obs_regress.render_diff(deltas, verbose=args.verbose))
    if args.append_trajectory is not None:
        record = obs_regress.trajectory_record(
            current_doc,
            label=args.current,
            extra={
                "regressed": sum(1 for d in deltas if d.status == "regressed")
            },
        )
        obs_regress.append_trajectory(args.append_trajectory, record)
        print(f"[trajectory] appended -> {args.append_trajectory}")
    if args.update_baseline is not None:
        baseline = obs_regress.make_baseline(
            current_doc,
            tolerances=tolerances,
            default_tolerance=args.default_tolerance,
            source=args.current,
        )
        Path(args.update_baseline).write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"[baseline] refreshed -> {args.update_baseline}")
    if obs_regress.has_regression(deltas, fail_on_missing=args.fail_on_missing):
        print("regression gate: FAIL", file=sys.stderr)
        return 1
    print("regression gate: ok")
    return 0


def obs_top_main(args: "argparse.Namespace") -> int:
    """``obs top``: live dashboard over a supervised campaign's journal."""
    journal = Path(args.journal)
    if not journal.exists():
        print(f"error: journal {journal} does not exist", file=sys.stderr)
        return 2
    try:
        obs_live.watch(
            journal,
            once=args.once,
            interval_s=args.interval,
            clear=not args.no_clear,
            stale_after_s=args.stale_after,
            max_frames=args.max_frames,
        )
    except KeyboardInterrupt:
        pass
    return 0


def obs_export_main(args: "argparse.Namespace") -> int:
    """``obs export``: render a telemetry manifest as OpenMetrics text."""
    manifest = _read_json(args.manifest, "manifest")
    if manifest is None:
        return 2
    families = obs_exporter.manifest_families(manifest)
    text = obs_exporter.render(families)
    # Self-check: refuse to emit output our own strict parser rejects.
    try:
        obs_exporter.parse_openmetrics(text)
    except ValueError as exc:  # pragma: no cover - guards exporter bugs
        print(f"error: generated exposition is invalid: {exc}", file=sys.stderr)
        return 1
    if args.out is not None:
        Path(args.out).write_text(text)
        summary = obs_exporter.export_section(families)
        print(
            f"[export] {summary['families']} families, "
            f"{summary['samples']} samples -> {args.out}"
        )
    else:
        print(text, end="")
    return 0


def obs_stitch_main(args: "argparse.Namespace") -> int:
    """``obs stitch``: merge a campaign journal + trace shards into one trace."""
    try:
        summary = obs_stitch.write_stitched(
            args.journal, args.out, shard_root=args.shard_root
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"[stitch] {summary['workers']} worker track(s), "
        f"{summary['shards_embedded']} shard(s) embedded "
        f"({summary['shards_missing']} missing) -> {args.out} "
        "(open in Perfetto)"
    )
    return 0


def _read_manifest(path: str) -> Optional[Any]:
    """Load + schema-warn a telemetry manifest, or None on read failure."""
    try:
        manifest = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read manifest {path}: {exc}", file=sys.stderr)
        return None
    errors = obs_telemetry.validate_manifest(manifest)
    if errors:
        print(f"warning: {path} fails schema validation:", file=sys.stderr)
        for err in errors[:5]:
            print(f"  - {err}", file=sys.stderr)
    return manifest


def obs_why_main(args: "argparse.Namespace") -> int:
    """``obs why``: decompose one flow's FCT from a manifest."""
    manifest = _read_manifest(args.manifest)
    if manifest is None:
        return 2
    text = render_why(manifest, args.flow, run_index=args.run)
    if text is None:
        from ..obs.report import flightrec_runs

        runs = flightrec_runs(manifest)
        if not runs:
            print(
                "error: manifest has no flightrec section — re-run with "
                "--flightrec to record decompositions",
                file=sys.stderr,
            )
        else:
            truncated = sum(r.get("flows_truncated", 0) for r in runs)
            hint = (
                f" ({truncated} flow(s) were truncated from the section)"
                if truncated
                else ""
            )
            print(
                f"error: flow {args.flow} not found in any recorded "
                f"decomposition{hint}",
                file=sys.stderr,
            )
        return 1
    print(text)
    return 0


def obs_flows_main(args: "argparse.Namespace") -> int:
    """``obs flows``: rank the recorded tail flows from a manifest."""
    manifest = _read_manifest(args.manifest)
    if manifest is None:
        return 2
    text = render_flows(manifest, top=args.top_tail)
    if text is None:
        print(
            "error: manifest has no flightrec section — re-run with "
            "--flightrec to record decompositions",
            file=sys.stderr,
        )
        return 1
    print(text)
    return 0


def obs_main(argv: List[str]) -> int:
    """``repro-experiments obs`` (report, diff, top, export, stitch, why, flows)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments obs",
        description="Inspect observability artifacts from past invocations.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)
    rep = sub.add_parser(
        "report",
        help="render a text dashboard from telemetry manifests",
    )
    rep.add_argument(
        "manifests",
        nargs="+",
        metavar="MANIFEST",
        help="telemetry manifest JSON file(s) written by --telemetry",
    )
    rep.add_argument(
        "--bench",
        default=None,
        metavar="PATH",
        help="include benchmark results (BENCH_results.json) in the report",
    )
    diff = sub.add_parser(
        "diff",
        help=(
            "compare two telemetry manifests / BENCH_results.json / baseline "
            "files; exit 1 when any metric regressed beyond tolerance"
        ),
    )
    diff.add_argument(
        "baseline",
        metavar="BASELINE",
        help=(
            "baseline artifact: a baselines file (benchmarks/baselines.json), "
            "a telemetry manifest, or BENCH_results.json"
        ),
    )
    diff.add_argument(
        "current",
        metavar="CURRENT",
        help="current artifact: a telemetry manifest or BENCH_results.json",
    )
    diff.add_argument(
        "--tolerance",
        action="append",
        dest="tolerances",
        metavar="NAME=FRACTION",
        help="override one metric's relative tolerance (repeatable)",
    )
    diff.add_argument(
        "--default-tolerance",
        type=float,
        default=obs_regress.DEFAULT_TOLERANCE,
        metavar="FRACTION",
        help=(
            "tolerance for metrics without an explicit entry "
            f"(default: {obs_regress.DEFAULT_TOLERANCE})"
        ),
    )
    diff.add_argument(
        "--fail-on-missing",
        action="store_true",
        help="also fail when a baseline metric is absent from CURRENT",
    )
    diff.add_argument(
        "--verbose",
        action="store_true",
        help="list every metric, not just regressions/improvements",
    )
    diff.add_argument(
        "--update-baseline",
        default=None,
        metavar="PATH",
        help="write a fresh baselines file derived from CURRENT to PATH",
    )
    diff.add_argument(
        "--append-trajectory",
        default=None,
        metavar="PATH",
        help="append CURRENT's metrics as one JSON line to PATH (BENCH trajectory)",
    )
    top = sub.add_parser(
        "top",
        help=(
            "live campaign dashboard: tail a supervised campaign's journal "
            "(read-only, from any process) showing per-worker liveness, "
            "attempt/retry/quarantine counts, and streaming tail estimates"
        ),
    )
    top.add_argument(
        "journal",
        metavar="JOURNAL",
        help="campaign journal written by --supervise --journal PATH",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (scripting/CI mode)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="S",
        help="refresh interval in seconds (default: 0.5)",
    )
    top.add_argument(
        "--stale-after",
        type=float,
        default=obs_live.STALE_AFTER_S,
        metavar="S",
        help=(
            "mark a running worker stale when its last heartbeat is older "
            f"than S seconds (default: {obs_live.STALE_AFTER_S})"
        ),
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen between them",
    )
    top.add_argument(
        "--max-frames",
        type=int,
        default=None,
        metavar="N",
        help="exit after N frames even if the campaign is still running",
    )
    exp = sub.add_parser(
        "export",
        help=(
            "render a telemetry manifest's counters, campaign stats, and "
            "supervision outcome as OpenMetrics (Prometheus) text"
        ),
    )
    exp.add_argument(
        "manifest",
        metavar="MANIFEST",
        help="telemetry manifest JSON file written by --telemetry",
    )
    exp.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the exposition to PATH instead of stdout",
    )
    sti = sub.add_parser(
        "stitch",
        help=(
            "merge a campaign journal and its per-worker trace shards into "
            "one Perfetto-loadable Chrome trace (one track per worker)"
        ),
    )
    sti.add_argument(
        "journal",
        metavar="JOURNAL",
        help="campaign journal written by --supervise --journal PATH",
    )
    sti.add_argument(
        "--out",
        default="stitched_trace.json",
        metavar="PATH",
        help="output trace path (default: stitched_trace.json)",
    )
    sti.add_argument(
        "--shard-root",
        default=None,
        metavar="DIR",
        help=(
            "directory to re-root relative/moved shard paths (defaults to "
            "the paths recorded in the journal)"
        ),
    )
    why = sub.add_parser(
        "why",
        help=(
            "explain one flow's FCT: render its recorded decomposition "
            "(component table, dominant component, conservation residual)"
        ),
    )
    why.add_argument(
        "flow",
        type=int,
        metavar="FLOW",
        help="flow id to explain",
    )
    why.add_argument(
        "manifest",
        metavar="MANIFEST",
        help="telemetry manifest written by --flightrec --telemetry",
    )
    why.add_argument(
        "--run",
        type=int,
        default=None,
        metavar="N",
        help="restrict the search to flightrec run index N (default: all)",
    )
    flo = sub.add_parser(
        "flows",
        help=(
            "rank the recorded flows by FCT slowdown (tail first) with "
            "each flow's dominant FCT component"
        ),
    )
    flo.add_argument(
        "manifest",
        metavar="MANIFEST",
        help="telemetry manifest written by --flightrec --telemetry",
    )
    flo.add_argument(
        "--top-tail",
        type=int,
        default=10,
        metavar="K",
        help="show the K worst flows (default: 10)",
    )
    args = parser.parse_args(argv)
    if args.verb == "diff":
        return obs_diff_main(args)
    if args.verb == "top":
        return obs_top_main(args)
    if args.verb == "export":
        return obs_export_main(args)
    if args.verb == "stitch":
        return obs_stitch_main(args)
    if args.verb == "why":
        return obs_why_main(args)
    if args.verb == "flows":
        return obs_flows_main(args)

    pairs = []
    for path in args.manifests:
        try:
            manifest = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read manifest {path}: {exc}", file=sys.stderr)
            return 2
        errors = obs_telemetry.validate_manifest(manifest)
        if errors:
            print(f"warning: {path} fails schema validation:", file=sys.stderr)
            for err in errors[:5]:
                print(f"  - {err}", file=sys.stderr)
        pairs.append((Path(path).name, manifest))
    bench = None
    if args.bench is not None:
        try:
            bench = json.loads(Path(args.bench).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read bench file {args.bench}: {exc}", file=sys.stderr)
            return 2
    print(render_report(pairs, bench))
    return 0


def check_main(argv: List[str]) -> int:
    """The ``repro-experiments check`` subcommand family.

    Verbs: ``run`` (a reference preset under the sanitizer), ``digest``
    (canonical flow-completion digest, repeatable for determinism gating),
    ``selftest`` (inject a known violation; must die), ``differential``
    (fused/unfused x serial/parallel x store x obs equivalence matrix), and
    ``chaos`` (fault-injected supervised campaign vs fault-free digests).
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments check",
        description=(
            "Correctness-checking entry points: sanitized reference runs, "
            "determinism digests, the injected-violation self-test, and the "
            "differential equivalence matrix (see repro.check)."
        ),
    )
    sub = parser.add_subparsers(dest="verb", required=True)
    run_p = sub.add_parser(
        "run", help="simulate a reference preset with every invariant checked"
    )
    run_p.add_argument(
        "--preset",
        choices=("incast", "datacenter"),
        default="incast",
        help="reference config (default: incast)",
    )
    dig = sub.add_parser(
        "digest",
        help=(
            "print the canonical flow-completion digest of a reference "
            "preset; with --runs N, simulate N times and fail on mismatch"
        ),
    )
    dig.add_argument(
        "--preset", choices=("incast", "datacenter"), default="incast"
    )
    dig.add_argument(
        "--runs",
        type=int,
        default=1,
        metavar="N",
        help="independent simulations to digest (default: 1)",
    )
    dig.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also append 'DIGEST  PRESET' lines to PATH (CI artifact)",
    )
    sub.add_parser(
        "selftest",
        help=(
            "inject a deliberate pfc-lossless violation; the process must "
            "die with InvariantViolation (CI inverts the exit code)"
        ),
    )
    di = sub.add_parser(
        "differential",
        help="run the full differential equivalence matrix on a reference preset",
    )
    di.add_argument(
        "--preset", choices=("incast", "datacenter"), default="incast"
    )
    di.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker processes for the serial-vs-parallel leg (default: 2)",
    )
    di.add_argument(
        "--backends",
        nargs="*",
        metavar="FIG",
        default=None,
        help=(
            "run the packet-vs-flow backend divergence matrix instead: "
            "each reference figure workload (default: all of "
            "1/8/9) runs on both backends and summary statistics must "
            "agree within documented tolerance bands"
        ),
    )
    di.add_argument(
        "--engines",
        nargs="*",
        metavar="WORKLOAD",
        default=None,
        help=(
            "run the reference-vs-turbo engine identity matrix instead: "
            "each workload (default: all — figs 1/8/9 incasts plus a "
            "fat-tree run) runs on both engine cores under each mode "
            "(plain/sanitize/obs/faults), and FCT digests plus executed "
            "event counts must be byte-identical"
        ),
    )
    di.add_argument(
        "--modes",
        nargs="*",
        metavar="MODE",
        default=None,
        help=(
            "with --engines: restrict matrix modes "
            "(subset of plain/sanitize/obs/faults; default: all)"
        ),
    )
    di.add_argument(
        "--report-out",
        default=None,
        metavar="PATH",
        help="write the divergence matrix as JSON to PATH (CI failure artifact)",
    )
    ch = sub.add_parser(
        "chaos",
        help=(
            "orchestration chaos harness: inject worker SIGKILLs, hangs, "
            "transient errors, a poison config, and store corruption into a "
            "supervised campaign; assert byte-identical digests vs a "
            "fault-free run"
        ),
    )
    ch.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fault-plan seed (same seed = same fault assignment; default: 0)",
    )
    ch.add_argument(
        "--configs",
        type=int,
        default=4,
        metavar="N",
        help="reference configs to sweep (>= 4 so every fault fires; default: 4)",
    )
    ch.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="supervised worker processes (default: 2)",
    )
    ch.add_argument(
        "--journal-out",
        default=None,
        metavar="PATH",
        help="write the chaos campaign's journal to PATH (CI failure artifact)",
    )
    ch.add_argument(
        "--verbose",
        action="store_true",
        help="stream supervisor progress lines while the ladder runs",
    )
    ch.add_argument(
        "--backend",
        choices=("packet", "flow"),
        default="packet",
        help=(
            "simulation backend for the chaos ladder; 'flow' proves the "
            "supervisor's journaling/salvage/quarantine machinery is "
            "backend-agnostic (default: packet)"
        ),
    )
    args = parser.parse_args(argv)
    # Imported here, not at module top: differential pulls in the whole
    # experiments stack and is only needed by this subcommand.
    from ..check import differential

    if args.verb == "run":
        checker = check_invariants.enable()
        try:
            cfg = differential.reference_config(args.preset)
            result = run_config(cfg)
        finally:
            check_invariants.disable()
        print(f"[sanitize] {checker.summary()}")
        print(f"{differential.fct_digest(result)}  {cfg.describe()}")
        return 0
    if args.verb == "digest":
        digests = []
        for i in range(args.runs):
            digest = differential.digest_preset(args.preset)
            digests.append(digest)
            print(f"{digest}  {args.preset} (run {i + 1}/{args.runs})")
        if args.out is not None:
            with open(args.out, "a") as fh:
                for digest in digests:
                    fh.write(f"{digest}  {args.preset}\n")
        if len(set(digests)) > 1:
            print(
                "determinism: FAIL (identical runs produced different "
                "flow-completion digests)",
                file=sys.stderr,
            )
            return 1
        print("determinism: ok")
        return 0
    if args.verb == "selftest":
        from ..check import selftest as check_selftest

        check_invariants.enable()
        try:
            # An InvariantViolation propagates out of main() here — that is
            # the expected (healthy-sanitizer) outcome, and CI asserts the
            # resulting non-zero exit.  Reaching the lines below means the
            # injected break went undetected.
            check_selftest.run_injected_violation()
        finally:
            check_invariants.disable()
        print(
            "sanitizer self-test: the injected pfc-lossless violation went "
            "UNDETECTED — the sanitizer is broken",
            file=sys.stderr,
        )
        return 0
    if args.verb == "chaos":
        import tempfile

        from ..check import chaos as check_chaos

        progress = (
            (lambda message: print(f"[chaos] {message}", flush=True))
            if args.verbose
            else None
        )
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            journal_path = args.journal_out or str(Path(tmp) / "chaos.jsonl")
            report = check_chaos.run_chaos(
                store_dir=str(Path(tmp) / "store"),
                seed=args.seed,
                n_configs=args.configs,
                jobs=args.jobs,
                journal_path=journal_path,
                progress=progress,
                backend=args.backend,
            )
        print(report.render())
        return 0 if report.ok else 1
    # args.verb == "differential"
    import tempfile

    if args.engines is not None:
        workloads = args.engines or None  # empty list = all workloads
        try:
            cells = differential.engine_equivalence_matrix(workloads, args.modes)
        except ImportError as exc:
            # numpy missing: the matrix refuses loudly rather than comparing
            # the reference engine against itself.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for cell in cells:
            print(cell.render())
        if args.report_out is not None:
            Path(args.report_out).write_text(
                json.dumps([c.to_dict() for c in cells], indent=2) + "\n"
            )
            print(f"[report] engine identity matrix -> {args.report_out}")
        bad = [c for c in cells if not c.matched]
        if bad:
            print(
                f"engine identity matrix: FAIL ({len(bad)} cell(s) diverged)",
                file=sys.stderr,
            )
            return 1
        print("engine identity matrix: ok")
        return 0
    if args.backends is not None:
        figures = args.backends or None  # empty list = all reference figures
        try:
            cells = differential.backend_divergence_matrix(figures)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for cell in cells:
            print(cell.render())
        if args.report_out is not None:
            Path(args.report_out).write_text(
                json.dumps([c.to_dict() for c in cells], indent=2) + "\n"
            )
            print(f"[report] divergence matrix -> {args.report_out}")
        bad = [c for c in cells if not c.within]
        if bad:
            print(
                f"backend divergence matrix: FAIL ({len(bad)} cell(s) out "
                "of tolerance)",
                file=sys.stderr,
            )
            return 1
        print("backend divergence matrix: ok")
        return 0
    cfg = differential.reference_config(args.preset)
    with tempfile.TemporaryDirectory(prefix="repro-diff-") as tmp:
        reports = differential.run_matrix(cfg, store_dir=tmp, jobs=args.jobs)
    for report in reports:
        print(report.render())
    if any(not report.matched for report in reports):
        print("differential matrix: FAIL", file=sys.stderr)
        return 1
    print("differential matrix: ok")
    return 0


def _print_supervision(outcome: "Any") -> None:
    """One status line per supervised campaign + quarantine details."""
    counts: dict = {}
    for status in outcome.statuses.values():
        counts[status] = counts.get(status, 0) + 1
    rendered = ", ".join(
        f"{counts[s]} {s}"
        for s in ("ok", "retried", "salvaged", "quarantined", "lost")
        if counts.get(s)
    )
    print(f"[supervisor] per-config statuses: {rendered or 'none'}")
    for q in outcome.quarantines:
        print(
            f"[supervisor] quarantined {q.desc} [{q.classification}] after "
            f"{q.attempts} attempt(s): {q.error}"
        )
        print(f"[supervisor]   replay with: {q.config_repr}")


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["obs"]:
        return obs_main(argv[1:])
    if argv[:1] == ["check"]:
        return check_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.backend != "packet":
        # Process-wide default: the figure functions spell packet-backend
        # configs, and the cache boundary rewrites them (pool workers get
        # the same default via the initializer).
        set_default_backend(args.backend)
        print(f"[backend] running simulations on the [{args.backend}] backend")
    if args.engine != "reference":
        # Same mechanism as --backend: figure functions spell reference-engine
        # configs, the cache boundary rewrites them, pool workers inherit the
        # default via the initializer.
        set_default_engine(args.engine)
        print(f"[engine] running packet simulations on the [{args.engine}] engine")
    wall_start = time.perf_counter()
    events_start = engine.total_events_executed()
    figs = list(args.figs or [])
    exts = list(args.exts or [])
    if args.all:
        figs = sorted(ALL_FIGURES, key=int)

    store: Optional[ResultStore] = None
    if not args.no_store:
        store = ResultStore(args.store)
        set_store(store)
    if args.store_gc:
        gc_store = store if store is not None else ResultStore(args.store)
        removed, freed = gc_store.gc()
        print(f"[store] gc: removed {removed} stale file(s), freed {freed} bytes")
        if not figs and not exts:
            return 0
    if not figs and not exts:
        build_parser().print_help()
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    budget = None
    if args.budget_seconds is not None or args.budget_events is not None:
        budget = RunBudget(
            wall_clock_s=args.budget_seconds, max_events=args.budget_events
        )
        set_default_budget(budget)

    collector = None
    if args.telemetry is not None:
        obs_registry.enable()
        collector = obs_telemetry.enable()
    analytics_agg = None
    if args.analytics:
        analytics_agg = obs_analytics.enable(obs_analytics.AnalyticsConfig())
    tracer = None
    if args.trace_out is not None:
        tracer = obs_tracer.enable(capacity=args.trace_capacity)
    sanitizer = None
    if args.sanitize:
        sanitizer = check_invariants.enable()
    recorder = None
    if args.flightrec:
        recorder = obs_flightrec.enable()
    profiler = None
    if args.profile_phases is not None:
        profiler = obs_profiler.enable(args.profile_phases)
    metrics_server = None
    metrics_port_bound: Optional[int] = None
    metrics_registry_owned = False
    if args.metrics_out is not None or args.metrics_port is not None:
        if obs_registry.STATS is None:
            obs_registry.enable()
            metrics_registry_owned = True
        if args.metrics_port is not None:
            metrics_server = obs_exporter.MetricsServer(
                port=args.metrics_port, producer=obs_exporter.render_registry
            )
            metrics_port_bound = metrics_server.start()
            print(
                "[metrics] serving OpenMetrics on "
                f"http://127.0.0.1:{metrics_port_bound}/metrics"
            )
    progress = None
    if collector is not None or analytics_agg is not None:
        def progress(message: str) -> None:
            print(f"[campaign] {message}", flush=True)

    supervised = args.supervise or args.resume is not None
    supervisor_cfg: Optional[SupervisorConfig] = None
    plain_journal: Optional[CampaignJournal] = None
    if supervised:
        resume_state = None
        if args.resume is not None:
            try:
                resume_state = load_journal(args.resume)
            except (OSError, ValueError) as exc:
                print(f"error: cannot resume from {args.resume}: {exc}",
                      file=sys.stderr)
                return 2
        journal_path = args.journal
        if journal_path is None and args.resume is not None:
            journal_path = args.resume  # keep appending to the same history
        supervisor_cfg = SupervisorConfig(
            policy=RetryPolicy(
                max_attempts=args.max_attempts, backoff_s=args.retry_backoff
            ),
            journal_path=Path(journal_path) if journal_path else None,
            resume=resume_state,
            partial_ok=args.partial_ok,
            trace_shard_dir=Path(args.trace_shards) if args.trace_shards else None,
            trace_capacity=args.trace_capacity,
        )
    elif args.journal is not None:
        # Unsupervised campaigns still journal the Ctrl-C case so an
        # interrupted sweep leaves a --resume-able trace behind.
        plain_journal = CampaignJournal(Path(args.journal))
    if args.trace_shards is not None and not supervised:
        print(
            "warning: --trace-shards is drained by the supervisor's workers; "
            "pass --supervise to collect shards (ignoring)",
            file=sys.stderr,
        )

    # Run the figures' simulations as one deduplicated campaign up front;
    # the figure functions then replay them from the warm caches.
    exit_code = 0
    campaign = campaign_for_figures(
        figs, scale=args.scale, backend=args.backend, engine=args.engine
    )
    if campaign:
        campaign_events = engine.total_events_executed()
        try:
            outcome = run_campaign(
                campaign,
                jobs=args.jobs,
                budget=budget,
                progress=progress,
                supervisor=supervisor_cfg,
                journal=plain_journal,
            )
        except CampaignIncomplete as exc:
            # Supervised mode without --partial-ok: the journal and partial
            # results are intact; figures depending on missing configs fail
            # individually below.  No serial fallback — re-running poison
            # serially would just fail again, slower.
            outcome = exc.outcome
            print(f"error: {exc}", file=sys.stderr)
            print(f"[campaign] {outcome.stats.summary()}")
            _print_supervision(outcome)
            exit_code = 1
        except Exception as exc:
            # Figures retry failing runs individually below; the campaign
            # failing wholesale (e.g. a broken pool) only loses parallelism.
            print(
                f"warning: campaign failed ({type(exc).__name__}: {exc}); "
                "falling back to serial per-figure runs",
                file=sys.stderr,
            )
        else:
            print(f"[campaign] {outcome.stats.summary()}")
            if supervised:
                _print_supervision(outcome)
            if args.profile:
                # Events executed by pool workers happen in other processes;
                # this counter covers the serial (jobs=1) campaign path.
                events = engine.total_events_executed() - campaign_events
                rate = events / outcome.stats.wall_s if outcome.stats.wall_s else 0.0
                print(
                    f"[profile] campaign: events={events} "
                    f"wall={outcome.stats.wall_s:.2f}s events/s={rate:,.0f}"
                )

    jobs = [("figure", str(f), ALL_FIGURES) for f in figs]
    jobs += [("extension", str(e), ALL_EXTENSIONS) for e in exts]
    for kind, job_id, registry in jobs:
        fn = registry.get(job_id)
        if fn is None:
            print(f"error: unknown {kind} {job_id!r}", file=sys.stderr)
            return 2
        start = time.perf_counter()
        events_before = engine.total_events_executed()
        try:
            result = run_with_retry(fn, scale=args.scale, retries=args.retries)
        except Exception as exc:
            print(
                f"error: {kind} {job_id} failed after {args.retries + 1} "
                f"attempt(s): {type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            exit_code = 1
            continue
        elapsed = time.perf_counter() - start
        print(render(result))
        print(f"\n[{kind} {job_id} reproduced in {elapsed:.1f}s]\n")
        if args.profile:
            events = engine.total_events_executed() - events_before
            rate = events / elapsed if elapsed > 0 else 0.0
            print(
                f"[profile] {kind} {job_id}: events={events} "
                f"wall={elapsed:.2f}s events/s={rate:,.0f}"
            )
    if plain_journal is not None:
        plain_journal.close()
    if store is not None:
        print(f"[store] {store.stats.summary()}")
    incomplete = drain_incomplete_runs()
    if incomplete:
        print(
            f"error: {len(incomplete)} run(s) ended with incomplete flows:",
            file=sys.stderr,
        )
        for line in incomplete:
            print(f"  - {line}", file=sys.stderr)
        exit_code = 1

    if tracer is not None:
        Path(args.trace_out).write_text(tracer.to_chrome_json() + "\n")
        print(
            f"[trace] {len(tracer)} event(s) ({tracer.dropped} dropped) -> "
            f"{args.trace_out} (open in Perfetto)"
        )
        if tracer.dropped:
            print(
                f"warning: trace truncated: ring overflowed and dropped "
                f"{tracer.dropped} event(s) (capacity {tracer.capacity}); "
                "the oldest events are missing — raise --trace-capacity",
                file=sys.stderr,
            )
    profile_section = None
    if profiler is not None:
        obs_profiler.disable()
        profile_section = profiler.section()
        if args.flame_out is not None:
            Path(args.flame_out).write_text(profiler.collapsed())
            print(f"[profile] flamegraph stacks -> {args.flame_out}")
        top_phases = sorted(
            profile_section["phases"].items(), key=lambda kv: -kv[1]["wall_s"]
        )[:4]
        rendered = ", ".join(
            f"{name}={entry['wall_s']:.3f}s" for name, entry in top_phases
        )
        print(
            f"[profile] phases ({profile_section['mode']}): "
            f"{rendered or 'none recorded'}"
        )
    export_info = None
    if args.metrics_out is not None or metrics_server is not None:
        families = obs_exporter.registry_families()
        if args.metrics_out is not None:
            obs_exporter.write_snapshot(args.metrics_out, families)
            print(f"[metrics] snapshot -> {args.metrics_out}")
        export_info = obs_exporter.export_section(families)
        export_info["metrics_out"] = args.metrics_out
        export_info["metrics_port"] = metrics_port_bound
    if metrics_server is not None:
        metrics_server.stop()
    if analytics_agg is not None and collector is None:
        # No manifest to carry the section — print it so the numbers are
        # not silently dropped.
        for run in analytics_agg.section()["runs"]:
            slowdown = run.get("slowdown") or {}
            conv = run.get("convergence_ns")
            conv_txt = f"{conv / 1e6:.3f}ms" if conv is not None else "never"
            p999 = slowdown.get("p999_slowdown")
            p999_txt = f"{p999:.2f}" if p999 is not None else "-"
            print(
                f"[analytics] {run['desc']}: jain={run['jain']:.3f} "
                f"conv={conv_txt} p999-slowdown={p999_txt} "
                f"({run['flows_completed']}/{run['flows']} flows, "
                f"{run['samples']} samples)"
            )
    if recorder is not None and collector is None:
        # No manifest to carry the section — print the decomposition
        # headlines so the recorder's work is not silently dropped.
        for run in recorder.runs:
            totals = run.get("components_total") or {}
            dominant = max(totals, key=lambda k: totals[k]) if totals else "-"
            failures = run.get("conservation_failures", 0)
            status = "conserved" if not failures else f"{failures} FAILURE(S)"
            print(
                f"[flightrec] {run.get('desc', '?')}: "
                f"{run.get('flows_completed', 0)}/{run.get('flows_tracked', 0)} "
                f"flow(s), dominant={dominant}, {status} "
                f"(worst residual {run.get('max_residual_ns', 0.0):.3g} ns)"
            )
        print(f"[flightrec] {recorder.summary()}")
    if collector is not None:
        # Pool workers execute their events in other processes; their run
        # records carry the counts, so fold them into the process total.
        events_total = engine.total_events_executed() - events_start
        events_total += sum(
            r["events"] for r in collector.runs if r.get("pid") is not None
        )
        manifest = obs_telemetry.build_manifest(
            collector,
            wall_s=time.perf_counter() - wall_start,
            events_executed=events_total,
            argv=argv,
            store_stats=store.stats if store is not None else None,
            counters=(
                obs_registry.STATS.snapshot()
                if obs_registry.STATS is not None
                else None
            ),
            trace=tracer,
            analytics=(
                analytics_agg.section() if analytics_agg is not None else None
            ),
            profile=profile_section,
            export=export_info,
            flightrec=(recorder.section() if recorder is not None else None),
        )
        errors = obs_telemetry.validate_manifest(manifest)
        if errors:
            print(
                "error: telemetry manifest fails schema validation:",
                file=sys.stderr,
            )
            for err in errors:
                print(f"  - {err}", file=sys.stderr)
            exit_code = exit_code or 1
        obs_telemetry.write_manifest(args.telemetry, manifest)
        print(f"[telemetry] manifest -> {args.telemetry}")
    if sanitizer is not None and exit_code == 0:
        # A violation surfaces above as a failed figure (exit_code 1); the
        # summary is only meaningful when every checked run survived.  Pool
        # workers run their own checkers (violations still abort the
        # campaign), so their counts are not in the parent's tally.
        note = " (+ per-worker checks)" if args.jobs > 1 else ""
        print(f"[sanitize] {sanitizer.summary()}{note}")
    # Leave the process as we found it for in-process callers (tests).
    if sanitizer is not None:
        check_invariants.disable()
    if recorder is not None:
        obs_flightrec.disable()
    if tracer is not None:
        obs_tracer.disable()
    if analytics_agg is not None:
        obs_analytics.disable()
    if collector is not None:
        obs_telemetry.disable()
        obs_registry.disable()
    elif metrics_registry_owned:
        obs_registry.disable()
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
