"""Command-line entry point: ``repro-experiments --fig 5`` or ``--all``.

``--scale paper`` runs the paper's full parameters (hours in pure Python at
figure 10-13 scale — see EXPERIMENTS.md); the default ``scaled`` presets run
each figure in seconds to a couple of minutes.

Campaign execution: the simulations behind the selected figures are
collected up front and run as one deduplicated campaign — across ``--jobs``
worker processes, backed by the persistent result store (``--store DIR``,
on by default; ``--no-store`` opts out).  A store entry is valid only for
the exact simulator code version that produced it (see
:mod:`repro.experiments.store`); ``--store-gc`` deletes entries from older
code versions.  ``--profile`` reports per-figure event counts and events/s
from the simulator's global event counter.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..sim import engine
from ..sim.network import RunBudget
from .extensions import ALL_EXTENSIONS
from .figures import ALL_FIGURES
from .parallel import campaign_for_figures, run_campaign
from .reporting import render
from .runner import drain_incomplete_runs, run_with_retry, set_default_budget
from .store import ResultStore, set_store

#: Default on-disk result store location (relative to the working directory).
DEFAULT_STORE_DIR = ".repro-store"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the figures of 'Fast Convergence to Fairness for "
            "Reduced Long Flow Tail Latency in Datacenter Networks' "
            "(IPPS 2022)."
        ),
    )
    parser.add_argument(
        "--fig",
        action="append",
        dest="figs",
        metavar="N",
        help=f"figure to reproduce (repeatable); one of {sorted(ALL_FIGURES, key=int)}",
    )
    parser.add_argument(
        "--all", action="store_true", help="reproduce every figure in order"
    )
    parser.add_argument(
        "--ext",
        action="append",
        dest="exts",
        metavar="NAME",
        help=f"extension experiment (repeatable); one of {sorted(ALL_EXTENSIONS)}",
    )
    parser.add_argument(
        "--scale",
        choices=("scaled", "paper"),
        default="scaled",
        help="parameter preset (default: scaled; 'paper' is full Sec. VI-A scale)",
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        metavar="S",
        help="per-run wall-clock watchdog (abort a run exceeding S seconds)",
    )
    parser.add_argument(
        "--budget-events",
        type=int,
        default=None,
        metavar="N",
        help="per-run event-count watchdog (abort a run exceeding N events)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry a failing figure/extension up to N times (default: 0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the simulation campaign (default: 1)",
    )
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE_DIR,
        metavar="DIR",
        help=f"persistent result store directory (default: {DEFAULT_STORE_DIR})",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the persistent result store for this invocation",
    )
    parser.add_argument(
        "--store-gc",
        action="store_true",
        help="delete store entries from older simulator code versions",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="report per-figure simulator event counts and events/s",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    figs = list(args.figs or [])
    exts = list(args.exts or [])
    if args.all:
        figs = sorted(ALL_FIGURES, key=int)

    store: Optional[ResultStore] = None
    if not args.no_store:
        store = ResultStore(args.store)
        set_store(store)
    if args.store_gc:
        gc_store = store if store is not None else ResultStore(args.store)
        removed, freed = gc_store.gc()
        print(f"[store] gc: removed {removed} stale file(s), freed {freed} bytes")
        if not figs and not exts:
            return 0
    if not figs and not exts:
        build_parser().print_help()
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    budget = None
    if args.budget_seconds is not None or args.budget_events is not None:
        budget = RunBudget(
            wall_clock_s=args.budget_seconds, max_events=args.budget_events
        )
        set_default_budget(budget)

    # Run the figures' simulations as one deduplicated campaign up front;
    # the figure functions then replay them from the warm caches.
    campaign = campaign_for_figures(figs, scale=args.scale)
    if campaign:
        campaign_events = engine.total_events_executed()
        try:
            outcome = run_campaign(campaign, jobs=args.jobs, budget=budget)
        except Exception as exc:
            # Figures retry failing runs individually below; the campaign
            # failing wholesale (e.g. a broken pool) only loses parallelism.
            print(
                f"warning: campaign failed ({type(exc).__name__}: {exc}); "
                "falling back to serial per-figure runs",
                file=sys.stderr,
            )
        else:
            print(f"[campaign] {outcome.stats.summary()}")
            if args.profile:
                # Events executed by pool workers happen in other processes;
                # this counter covers the serial (jobs=1) campaign path.
                events = engine.total_events_executed() - campaign_events
                rate = events / outcome.stats.wall_s if outcome.stats.wall_s else 0.0
                print(
                    f"[profile] campaign: events={events} "
                    f"wall={outcome.stats.wall_s:.2f}s events/s={rate:,.0f}"
                )

    exit_code = 0
    jobs = [("figure", str(f), ALL_FIGURES) for f in figs]
    jobs += [("extension", str(e), ALL_EXTENSIONS) for e in exts]
    for kind, job_id, registry in jobs:
        fn = registry.get(job_id)
        if fn is None:
            print(f"error: unknown {kind} {job_id!r}", file=sys.stderr)
            return 2
        start = time.perf_counter()
        events_before = engine.total_events_executed()
        try:
            result = run_with_retry(fn, scale=args.scale, retries=args.retries)
        except Exception as exc:
            print(
                f"error: {kind} {job_id} failed after {args.retries + 1} "
                f"attempt(s): {type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            exit_code = 1
            continue
        elapsed = time.perf_counter() - start
        print(render(result))
        print(f"\n[{kind} {job_id} reproduced in {elapsed:.1f}s]\n")
        if args.profile:
            events = engine.total_events_executed() - events_before
            rate = events / elapsed if elapsed > 0 else 0.0
            print(
                f"[profile] {kind} {job_id}: events={events} "
                f"wall={elapsed:.2f}s events/s={rate:,.0f}"
            )
    if store is not None:
        print(f"[store] {store.stats.summary()}")
    incomplete = drain_incomplete_runs()
    if incomplete:
        print(
            f"error: {len(incomplete)} run(s) ended with incomplete flows:",
            file=sys.stderr,
        )
        for line in incomplete:
            print(f"  - {line}", file=sys.stderr)
        exit_code = 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
