"""Experiment configurations: the paper's parameters and scaled presets.

Two preset families:

* ``paper_*`` — the exact parameters from Secs. III-D and VI-A (16-1 / 96-1
  incast at 100 Gbps; 320-host fat-tree at 50% load for 50 ms).  Running
  these in pure Python takes hours; they exist so the harness can be pointed
  at full scale on a big machine (``repro-experiments --scale paper``).
* ``scaled_*`` — shape-preserving reductions used by the benchmark suite:
  smaller incast degree and a 16-host fat-tree at 10/40 Gbps with flow sizes
  scaled by 0.1 (the BDP shrinks by roughly the same factor, so
  "long flow" stays long relative to the pipe).  EXPERIMENTS.md records the
  exact scaling per figure.

The RED marking profile for DCQCN follows common 100 Gbps practice
(kmin 100 KB, kmax 400 KB, pmax 0.01 — Sec. III-C quotes the 1% maximum
marking probability), scaled with the link rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..sim.port import RedConfig
from ..topology.fattree import FatTreeParams, scaled_fattree_params
from ..units import gbps, mb, ms, us
from .store import config_key


class _CacheKeyMixin:
    """Content-hash key shared by the in-memory LRU and the on-disk store.

    The key comes from :func:`repro.experiments.store.config_key`'s
    canonical rendering (fields sorted by name, defaults omitted), so it is
    stable across field reordering and across adding new defaulted fields —
    unlike the dataclass hash, which is also per-process.
    """

    def cache_key(self) -> str:
        return config_key(self)


def red_for_rate(rate_bps: float) -> RedConfig:
    """DCQCN RED thresholds proportional to link speed (100 KB at 100 Gbps)."""
    scale = rate_bps / gbps(100.0)
    return RedConfig(
        kmin_bytes=100_000.0 * scale,
        kmax_bytes=400_000.0 * scale,
        pmax=0.01,
    )


#: Valid ``FaultConfig.target`` values for packet-level faults.
FAULT_TARGETS = ("bottleneck", "fabric", "all")

#: Valid simulation backends.  ``packet`` is the exact discrete-event
#: engine; ``flow`` is the fluid fast path (:mod:`repro.sim.fluid`);
#: ``hybrid`` packetizes designated flows over a fluid background (see
#: :mod:`repro.experiments.flowsim`).
BACKENDS = ("packet", "flow", "hybrid")


def _validate_backend(backend: str) -> None:
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")


#: Valid packet-engine implementations.  ``reference`` is the pure-Python
#: heap-based engine (ground truth); ``turbo`` is the struct-of-arrays /
#: timing-wheel core (:mod:`repro.sim.turbo`, needs numpy), proven
#: byte-identical by ``check differential --engines``.  Only meaningful for
#: ``backend="packet"`` runs; the fluid backend has its own integrator.
ENGINES = ("reference", "turbo")


def _validate_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")


@dataclass(frozen=True)
class FaultConfig(_CacheKeyMixin):
    """Declarative fault specification attached to an experiment config.

    Frozen (and therefore hashable) so faulty configs key the result caches
    exactly like healthy ones.  The runner translates this into
    :mod:`repro.sim.faults` injectors at build time and automatically
    enables go-back-N loss recovery on every host.

    ``target`` selects where packet faults land: the monitored bottleneck
    ports, every switch egress port (``"fabric"``), or every port including
    host NICs (``"all"``).  ``link_flap`` is ``(down_at_ns, down_for_ns)``
    applied to an automatically chosen link (first fabric switch-switch
    link, falling back to a host uplink on single-switch topologies);
    setting ``flap_period_ns`` repeats the cycle ``flap_count`` times.
    """

    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    drop_every_nth: Optional[int] = None
    target: str = "bottleneck"
    link_flap: Optional[Tuple[float, float]] = None
    flap_period_ns: Optional[float] = None
    flap_count: int = 1
    seed: int = 7
    rto_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.target not in FAULT_TARGETS:
            raise ValueError(
                f"target must be one of {FAULT_TARGETS}, got {self.target!r}"
            )
        if not 0.0 <= self.drop_rate <= 1.0 or not 0.0 <= self.corrupt_rate <= 1.0:
            raise ValueError("fault rates must be in [0, 1]")

    @property
    def has_packet_faults(self) -> bool:
        return (
            self.drop_rate > 0.0
            or self.corrupt_rate > 0.0
            or self.drop_every_nth is not None
        )

    @property
    def has_link_faults(self) -> bool:
        return self.link_flap is not None


@dataclass(frozen=True)
class IncastConfig(_CacheKeyMixin):
    """An N-to-1 staggered incast experiment on the star topology."""

    variant: str
    n_senders: int = 16
    flow_size_bytes: int = mb(1)
    flows_per_batch: int = 2
    batch_interval_ns: float = us(20.0)
    rate_bps: float = gbps(100.0)
    prop_delay_ns: float = us(1.0)
    fs_max_cwnd_pkts: float = 50.0  # paper lowers FBS max window on the star
    sample_interval_ns: float = us(2.0)  # queue-depth sampling
    goodput_interval_ns: float = us(10.0)  # rate sampling for the Jain index
    timeout_ns: float = ms(50.0)
    seed: int = 1
    faults: Optional[FaultConfig] = None
    #: Simulation backend (defaulted, so packet-run cache keys are
    #: unchanged from before the field existed — see store.config_key).
    backend: str = "packet"
    #: Packet-engine implementation (defaulted for the same cache-key
    #: stability reason; byte-identical results either way, so turbo runs
    #: key separately only to keep provenance honest).
    engine: str = "reference"

    def __post_init__(self) -> None:
        _validate_backend(self.backend)
        _validate_engine(self.engine)

    def describe(self) -> str:
        tag = "" if self.backend == "packet" else f" [{self.backend}]"
        if self.engine != "reference":
            tag += f" [{self.engine}]"
        return (
            f"{self.n_senders}-1 incast, {self.variant}, "
            f"{self.flow_size_bytes / 1e6:g} MB flows, "
            f"{self.rate_bps / 1e9:g} Gbps links{tag}"
        )


@dataclass(frozen=True)
class DatacenterConfig(_CacheKeyMixin):
    """A trace-driven fat-tree experiment."""

    variant: str
    workload: str = "hadoop"  # distribution registry name
    fattree: FatTreeParams = field(default_factory=scaled_fattree_params)
    load: float = 0.5
    duration_ns: float = ms(5.0)
    size_scale: float = 0.1  # multiply sampled flow sizes (scaled runs)
    drain_timeout_ns: float = ms(30.0)
    fs_max_cwnd_pkts: float = 100.0
    seed: int = 42
    faults: Optional[FaultConfig] = None
    #: Simulation backend (defaulted, so packet-run cache keys are
    #: unchanged from before the field existed — see store.config_key).
    backend: str = "packet"
    #: ``backend="hybrid"`` packetizes flows at or below this size (the
    #: latency-sensitive short flows); larger flows stay fluid background.
    hybrid_packet_max_bytes: int = 100_000
    #: Packet-engine implementation (defaulted for the same cache-key
    #: stability reason; byte-identical results either way, so turbo runs
    #: key separately only to keep provenance honest).
    engine: str = "reference"

    def __post_init__(self) -> None:
        _validate_backend(self.backend)
        _validate_engine(self.engine)
        if self.hybrid_packet_max_bytes <= 0:
            raise ValueError("hybrid_packet_max_bytes must be positive")

    def describe(self) -> str:
        tag = "" if self.backend == "packet" else f" [{self.backend}]"
        if self.engine != "reference":
            tag += f" [{self.engine}]"
        return (
            f"{self.workload} @ {self.load:.0%} load on "
            f"{self.fattree.n_hosts}-host fat-tree, {self.variant}, "
            f"{self.duration_ns / 1e6:g} ms{tag}"
        )


# ---------------------------------------------------------------------------
# Paper-scale presets (Secs. III-D / VI-A)
# ---------------------------------------------------------------------------


def paper_incast(variant: str, n_senders: int = 16) -> IncastConfig:
    """The paper's incast: 100 Gbps star, 1 MB flows, 2 starts / 20 us."""
    return IncastConfig(variant=variant, n_senders=n_senders)


def paper_datacenter(variant: str, workload: str = "hadoop") -> DatacenterConfig:
    """The paper's datacenter run: 320 hosts, 100G/400G, 50% load, 50 ms."""
    return DatacenterConfig(
        variant=variant,
        workload=workload,
        fattree=FatTreeParams(),
        load=0.5,
        duration_ns=ms(50.0),
        size_scale=1.0,
        drain_timeout_ns=ms(200.0),
    )


# ---------------------------------------------------------------------------
# Scaled presets (bench defaults)
# ---------------------------------------------------------------------------

#: Incast degree used in scaled reproductions of the 96-1 experiments.
SCALED_LARGE_INCAST = 32


def scaled_incast(variant: str, n_senders: int = 16) -> IncastConfig:
    """Paper-shape incast, bench-friendly.

    The 16-1 pattern is cheap enough to run at the paper's own parameters,
    so only the sampling interval differs from :func:`paper_incast`.
    """
    return IncastConfig(variant=variant, n_senders=n_senders)


def scaled_datacenter(
    variant: str,
    workload: str = "hadoop",
    *,
    duration_ns: float = ms(6.0),
    seed: int = 42,
) -> DatacenterConfig:
    """Scaled fat-tree run: 16 hosts at 10/40 Gbps, sizes x0.1."""
    return DatacenterConfig(
        variant=variant,
        workload=workload,
        fattree=scaled_fattree_params(),
        load=0.5,
        duration_ns=duration_ns,
        size_scale=0.1,
        seed=seed,
    )


def with_seed(cfg, seed: int):
    """A copy of any config with a different seed (multi-seed sweeps)."""
    return replace(cfg, seed=seed)


def with_backend(cfg, backend: str):
    """A copy of any config running on a different simulation backend."""
    _validate_backend(backend)
    return replace(cfg, backend=backend)


def with_engine(cfg, engine: str):
    """A copy of any config running on a different packet-engine core."""
    _validate_engine(engine)
    return replace(cfg, engine=engine)


# ---------------------------------------------------------------------------
# Process-default backend (CLI --backend)
# ---------------------------------------------------------------------------

_DEFAULT_BACKEND = "packet"


def set_default_backend(backend: str) -> None:
    """Set the backend applied to configs left at the default ``"packet"``.

    The CLI's ``--backend`` installs this so that figure functions — which
    construct their own configs without a backend argument — transparently
    run (and cache) on the selected backend.  Configs that carry an
    explicit non-default backend are never rewritten.
    """
    _validate_backend(backend)
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = backend


def get_default_backend() -> str:
    return _DEFAULT_BACKEND


def apply_default_backend(cfg):
    """Normalize a config to the process-default backend.

    Called at every cache boundary (runner LRU/store lookups, the campaign
    dispatcher) so a figure's internally built packet-default config keys
    and runs under the process default.  No-op when the default is
    ``packet`` or the config already names another backend.
    """
    if _DEFAULT_BACKEND != "packet" and getattr(cfg, "backend", None) == "packet":
        return replace(cfg, backend=_DEFAULT_BACKEND)
    return cfg


# ---------------------------------------------------------------------------
# Process-default engine (CLI --engine)
# ---------------------------------------------------------------------------

_DEFAULT_ENGINE = "reference"


def set_default_engine(engine: str) -> None:
    """Set the engine applied to configs left at the default ``"reference"``.

    The CLI's ``--engine`` installs this so that figure functions — which
    construct their own configs without an engine argument — transparently
    run on the selected core.  Configs that carry an explicit non-default
    engine are never rewritten.
    """
    _validate_engine(engine)
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine


def get_default_engine() -> str:
    return _DEFAULT_ENGINE


def apply_default_engine(cfg):
    """Normalize a config to the process-default engine (see backend twin)."""
    if _DEFAULT_ENGINE != "reference" and getattr(cfg, "engine", None) == "reference":
        return replace(cfg, engine=_DEFAULT_ENGINE)
    return cfg


#: The variant line-ups each figure compares (paper legends).
FIG1_HPCC_VARIANTS: Tuple[str, ...] = ("hpcc", "hpcc-1gbps", "hpcc-prob")
FIG1_SWIFT_VARIANTS: Tuple[str, ...] = ("swift", "swift-1gbps", "swift-prob")
FIG5_HPCC_VARIANTS: Tuple[str, ...] = (
    "hpcc",
    "hpcc-1gbps",
    "hpcc-prob",
    "hpcc-vai-sf",
)
FIG6_SWIFT_VARIANTS: Tuple[str, ...] = (
    "swift",
    "swift-1gbps",
    "swift-prob",
    "swift-vai-sf",
)
DATACENTER_VARIANTS: Tuple[str, ...] = (
    "hpcc",
    "hpcc-vai-sf",
    "swift",
    "swift-vai-sf",
)
