"""Extension experiments beyond the paper's figures.

The paper's conclusion claims VAI and SF "could be used with a multitude of
congestion control algorithms".  The paper only evaluates HPCC and Swift;
these experiments extend the evaluation to the other protocol families in
:mod:`repro.cc` and add robustness studies:

* ``ext_generality`` — the 16-1 incast across *four* protocol families
  (HPCC/INT, Swift/delay, DCTCP/ECN-fraction, TIMELY/RTT-gradient), each
  with and without VAI+SF;
* ``ext_seed_variance`` — the headline incast metrics across seeds (the
  paper reports single runs);
* ``ext_load_sweep`` — long-flow tail vs. offered load on the fat-tree;
* ``ext_failure_sweep`` — the fault-tolerance study: seeded packet loss on
  the incast bottleneck (go-back-N keeps every flow completing) and a
  fabric link flap on the fat-tree (reroute keeps traffic flowing).

Each returns a :class:`repro.experiments.figures.FigureResult` so the CLI
and reporting pipeline render them like paper figures
(``repro-experiments --ext generality``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence

from ..units import ms, ns_to_us
from .config import FaultConfig, scaled_datacenter, scaled_incast
from .figures import FigureResult
from .runner import run_datacenter_cached, run_incast_cached
from .sweeps import compare_variants_across_seeds, load_sweep

GENERALITY_PAIRS = (
    ("hpcc", "hpcc-vai-sf"),
    ("swift", "swift-vai-sf"),
    ("dctcp", "dctcp-vai-sf"),
    ("timely", "timely-vai-sf"),
)


def ext_generality(scale: str = "scaled") -> FigureResult:
    """VAI+SF across four protocol families on the 16-1 incast."""
    fig = FigureResult(
        figure="ext-generality",
        title="VAI + SF across protocol families (16-1 incast)",
    )
    rows = []
    for base, extended in GENERALITY_PAIRS:
        rb = run_incast_cached(scaled_incast(base))
        re_ = run_incast_cached(scaled_incast(extended))
        spread_gain = (
            rb.finish_spread_ns() / re_.finish_spread_ns()
            if re_.finish_spread_ns() > 0
            else float("inf")
        )
        rows.append(
            (
                base,
                round(ns_to_us(rb.finish_spread_ns()), 1),
                round(ns_to_us(re_.finish_spread_ns()), 1),
                round(spread_gain, 2),
                round(rb.start_finish_correlation(), 2),
                round(re_.start_finish_correlation(), 2),
            )
        )
    fig.add_table(
        "families",
        (
            "protocol",
            "spread default (us)",
            "spread +VAI+SF (us)",
            "spread gain (x)",
            "corr default",
            "corr +VAI+SF",
        ),
        rows,
    )
    fig.notes.append(
        "Sec. VII's generality claim, tested on four structurally different "
        "signal types: INT (HPCC), delay (Swift), ECN fraction (DCTCP), and "
        "RTT gradient (TIMELY)."
    )
    return fig


def ext_seed_variance(
    scale: str = "scaled", seeds: Sequence[int] = (1, 2, 3, 4, 5)
) -> FigureResult:
    """Run-to-run variance of the incast headline metrics."""
    fig = FigureResult(
        figure="ext-seed-variance",
        title="Incast metrics across seeds (mean ± std)",
    )
    sweep = compare_variants_across_seeds(
        lambda v: scaled_incast(v), ("hpcc", "hpcc-vai-sf", "swift", "swift-vai-sf"),
        seeds,
    )
    rows = []
    for variant, aggs in sweep.items():
        rows.append(
            (
                variant,
                str(aggs["convergence_ns"]),
                str(aggs["finish_spread_ns"]),
                str(aggs["mean_queue_bytes"]),
                str(aggs["start_finish_corr"]),
            )
        )
    fig.add_table(
        "variance",
        ("variant", "convergence (ns)", "finish spread (ns)", "mean queue (B)",
         "start-finish corr"),
        rows,
    )
    fig.notes.append(
        f"Seeds {tuple(seeds)}; the paper reports single runs.  Note: the "
        "incast workload itself is deterministic; seeds perturb RED marking "
        "and ECMP hashing, so deterministic variants may show zero variance."
    )
    return fig


def ext_load_sweep(
    scale: str = "scaled", loads: Sequence[float] = (0.3, 0.5, 0.7)
) -> FigureResult:
    """Long-flow tail slowdown vs offered load, with and without VAI+SF."""
    fig = FigureResult(
        figure="ext-load-sweep",
        title="Long-flow tail slowdown vs offered load (Hadoop)",
    )
    for variant in ("hpcc", "hpcc-vai-sf"):
        base = scaled_datacenter(variant, "hadoop")
        rows = []
        for load, aggs in load_sweep(base, loads):
            rows.append(
                (
                    f"{load:.0%}",
                    str(aggs["p50_slowdown"]),
                    str(aggs["long_flow_p90"]),
                    str(aggs["completion_fraction"]),
                )
            )
        fig.add_table(
            variant,
            ("load", "p50 slowdown", "long-flow p90", "completed"),
            rows,
        )
    fig.notes.append(
        "The paper evaluates only 50% load; the sweep shows where the "
        "fairness win grows (contention) and where it vanishes (idle)."
    )
    return fig


def ext_failure_sweep(
    scale: str = "scaled", drop_rates: Sequence[float] = (0.001, 0.01)
) -> FigureResult:
    """Fault tolerance: loss recovery under drops, reroute under a flap."""
    fig = FigureResult(
        figure="ext-failure-sweep",
        title="Fault tolerance: packet loss and link failure",
    )
    rows = []
    for rate in drop_rates:
        cfg = replace(
            scaled_incast("hpcc"),
            faults=FaultConfig(drop_rate=rate, target="bottleneck"),
        )
        r = run_incast_cached(cfg)
        rows.append(
            (
                f"{rate:.2%}",
                "yes" if r.all_completed else "no",
                r.fault_drops,
                round(r.retransmitted_bytes / 1e3, 1),
                round(ns_to_us(r.finish_spread_ns()), 1),
            )
        )
    fig.add_table(
        "incast-drops",
        ("drop rate", "all completed", "pkts dropped", "resent (KB)",
         "spread (us)"),
        rows,
    )
    flap = FaultConfig(link_flap=(ms(1.0), ms(0.5)))
    dcfg = replace(
        scaled_datacenter("hpcc", duration_ns=ms(3.0)), faults=flap
    )
    dr = run_datacenter_cached(dcfg)
    fig.add_table(
        "fattree-link-flap",
        ("completed", "offered", "pkts lost on link", "resent (KB)"),
        [
            (
                dr.n_completed,
                dr.n_offered,
                dr.fault_drops,
                round(dr.retransmitted_bytes / 1e3, 1),
            )
        ],
    )
    fig.notes.append(
        "The paper assumes a lossless PFC fabric; this study injects seeded "
        "faults (repro.sim.faults) with go-back-N loss recovery enabled.  "
        "Incast flows all complete despite bottleneck drops; the fat-tree "
        "reroutes around a 0.5 ms fabric-link failure."
    )
    return fig


ALL_EXTENSIONS: Dict[str, object] = {
    "generality": ext_generality,
    "seed-variance": ext_seed_variance,
    "load-sweep": ext_load_sweep,
    "failure-sweep": ext_failure_sweep,
}
