"""One entry point per paper figure.

Every function returns a :class:`FigureResult` whose ``tables`` hold the
rows the paper's plot encodes (so the harness "prints the same series the
paper reports").  ``scale`` selects parameter presets:

* ``"scaled"`` (default) — bench-friendly reductions (EXPERIMENTS.md);
* ``"paper"`` — the full Sec. III-D / VI-A parameters.

Figure inventory (the paper has no numbered tables):

=====  ====================================================================
Fig    Content
=====  ====================================================================
1      16-1 incast Jain index & queue depth, HPCC and Swift baselines
2, 3   16-1 incast start-vs-finish scatter (HPCC / Swift baselines)
4      fluid-model fairness difference
5, 6   16-1 and 96-1 incast Jain/queue with VAI+SF (HPCC / Swift)
7      fat-tree topology (reproduced as structural validation)
8, 9   16-1 incast start-vs-finish, default vs VAI+SF (HPCC / Swift)
10-13  FCT slowdown vs flow size on datacenter traces (tail and median)
=====  ====================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.fluid_model import FluidModelParams, fig4_series, initial_slope_condition
from ..metrics.fct import slowdown_by_size, summarize, tail_slowdown_above
from ..topology.fattree import FatTreeParams, build_fattree
from ..units import ms, ns_to_us
from .config import (
    DATACENTER_VARIANTS,
    FIG1_HPCC_VARIANTS,
    FIG1_SWIFT_VARIANTS,
    FIG5_HPCC_VARIANTS,
    FIG6_SWIFT_VARIANTS,
    SCALED_LARGE_INCAST,
    paper_datacenter,
    paper_incast,
    scaled_datacenter,
    scaled_incast,
)
from .runner import (
    IncastResult,
    run_datacenter_cached,
    run_incast_cached,
)


@dataclass
class FigureResult:
    """Tabular reproduction of one figure."""

    figure: str
    title: str
    tables: Dict[str, List[tuple]] = field(default_factory=dict)
    columns: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_table(self, name: str, columns: Tuple[str, ...], rows: List[tuple]) -> None:
        self.tables[name] = rows
        self.columns[name] = columns


def _incast_cfg(variant: str, n_senders: int, scale: str):
    if scale == "paper":
        return paper_incast(variant, n_senders)
    return scaled_incast(variant, n_senders)


def _large_incast_degree(scale: str) -> int:
    return 96 if scale == "paper" else SCALED_LARGE_INCAST


def _incast_summary_rows(results: Sequence[IncastResult]) -> List[tuple]:
    rows = []
    for r in results:
        conv = ns_to_us(r.convergence_ns) if r.convergence_ns is not None else None
        rows.append(
            (
                r.config.variant,
                round(conv, 1) if conv is not None else None,
                round(r.queue.max_bytes / 1000.0, 1),
                round(r.queue.mean_bytes / 1000.0, 1),
                round(r.queue.oscillation_bytes / 1000.0, 1),
                round(ns_to_us(r.finish_spread_ns()), 1),
                round(r.start_finish_correlation(), 3),
                r.all_completed,
            )
        )
    return rows


_INCAST_SUMMARY_COLUMNS = (
    "variant",
    "jain>=0.9 after last start (us)",
    "max queue (KB)",
    "mean queue (KB)",
    "queue osc. (KB std)",
    "finish spread (us)",
    "start-finish corr",
    "completed",
)


def _jain_decimated(r: IncastResult, n_points: int = 40) -> List[tuple]:
    """Decimate the Jain series to a printable table."""
    t, v = r.jain_times_ns, r.jain_values
    if len(t) == 0:
        return []
    idx = np.linspace(0, len(t) - 1, min(n_points, len(t))).astype(int)
    return [(round(ns_to_us(t[i]), 1), round(float(v[i]), 4)) for i in idx]


def _queue_decimated(r: IncastResult, n_points: int = 40) -> List[tuple]:
    t, v = r.queue_times_ns, r.queue_values_bytes
    if len(t) == 0:
        return []
    idx = np.linspace(0, len(t) - 1, min(n_points, len(t))).astype(int)
    return [(round(ns_to_us(t[i]), 1), round(float(v[i]) / 1000.0, 2)) for i in idx]


def _incast_figure(
    figure: str,
    title: str,
    variants: Sequence[str],
    n_senders: int,
    scale: str,
    *,
    include_series: bool = True,
) -> FigureResult:
    results = [run_incast_cached(_incast_cfg(v, n_senders, scale)) for v in variants]
    fig = FigureResult(figure=figure, title=title)
    fig.add_table("summary", _INCAST_SUMMARY_COLUMNS, _incast_summary_rows(results))
    if include_series:
        for r in results:
            fig.add_table(
                f"jain:{r.config.variant}", ("t (us)", "jain"), _jain_decimated(r)
            )
            fig.add_table(
                f"queue:{r.config.variant}", ("t (us)", "KB"), _queue_decimated(r)
            )
    fig.notes.append(
        f"{n_senders}-1 staggered incast at {scale} scale; convergence time is "
        "measured from the last flow's start."
    )
    return fig


def _start_finish_figure(
    figure: str, title: str, variants: Sequence[str], scale: str
) -> FigureResult:
    fig = FigureResult(figure=figure, title=title)
    for v in variants:
        r = run_incast_cached(_incast_cfg(v, 16, scale))
        rows = [
            (round(ns_to_us(s), 1), round(ns_to_us(f), 1))
            for s, f in r.start_finish_pairs()
        ]
        fig.add_table(v, ("start (us)", "finish (us)"), rows)
        fig.notes.append(
            f"{v}: start-finish correlation {r.start_finish_correlation():+.3f}, "
            f"finish spread {ns_to_us(r.finish_spread_ns()):.1f} us"
        )
    return fig


# ---------------------------------------------------------------------------
# Figures 1-3: baseline unfairness (Sec. III-E)
# ---------------------------------------------------------------------------


def fig1(scale: str = "scaled") -> FigureResult:
    """Jain index & queue depth, 16-1 incast, HPCC and Swift baselines."""
    fig = _incast_figure(
        "1(a,b)",
        "16-1 incast: Jain index and queue depth (HPCC baselines)",
        FIG1_HPCC_VARIANTS,
        16,
        scale,
    )
    swift = _incast_figure(
        "1(c,d)",
        "16-1 incast: Jain index and queue depth (Swift baselines)",
        FIG1_SWIFT_VARIANTS,
        16,
        scale,
    )
    merged = FigureResult(figure="1", title="Incast fairness and queues (baselines)")
    for name, rows in fig.tables.items():
        merged.add_table(f"hpcc/{name}", fig.columns[name], rows)
    for name, rows in swift.tables.items():
        merged.add_table(f"swift/{name}", swift.columns[name], rows)
    merged.notes = fig.notes + swift.notes
    return merged


def fig2(scale: str = "scaled") -> FigureResult:
    """Start vs finish time, 16-1 staggered incast, HPCC baselines."""
    return _start_finish_figure(
        "2", "Start vs finish time (HPCC baselines)", FIG1_HPCC_VARIANTS, scale
    )


def fig3(scale: str = "scaled") -> FigureResult:
    """Start vs finish time, 16-1 staggered incast, Swift baselines."""
    return _start_finish_figure(
        "3", "Start vs finish time (Swift baselines)", FIG1_SWIFT_VARIANTS, scale
    )


# ---------------------------------------------------------------------------
# Figure 4: fluid model
# ---------------------------------------------------------------------------


def fig4(scale: str = "scaled") -> FigureResult:
    """Fluid-model fairness difference between the two MD schedules."""
    params = FluidModelParams()
    t, diff = fig4_series(params=params)
    fig = FigureResult(
        figure="4",
        title="Fluid model: (R1-R0) - (S1-S0) over time",
    )
    idx = np.linspace(0, len(t) - 1, 40).astype(int)
    fig.add_table(
        "fairness-difference",
        ("t (us)", "diff (bytes/ns)"),
        [(round(ns_to_us(t[i]), 1), round(float(diff[i]), 4)) for i in idx],
    )
    fig.add_table(
        "properties",
        ("property", "value"),
        [
            ("initial slope condition (1/r < (C1+C0)/(s*MTU))", initial_slope_condition(params)),
            ("peak difference (bytes/ns)", round(float(diff.max()), 4)),
            ("peak time (us)", round(ns_to_us(float(t[np.argmax(diff)])), 1)),
            ("difference at t_end (bytes/ns)", round(float(diff[-1]), 4)),
        ],
    )
    fig.notes.append(
        "r=30000 ns, s=30 ACKs, MTU=1000 B, beta=0.5, rates 100/50 Gbps "
        "(paper Fig. 4 caption)."
    )
    return fig


# ---------------------------------------------------------------------------
# Figures 5, 6: VAI + SF incast (Sec. VI-B-1)
# ---------------------------------------------------------------------------


def fig5(scale: str = "scaled") -> FigureResult:
    """HPCC incast with VAI+SF: 16-1 (a, b) and 96-1 (c, d)."""
    small = _incast_figure(
        "5(a,b)",
        "16-1 incast with HPCC VAI SF",
        FIG5_HPCC_VARIANTS,
        16,
        scale,
    )
    big_n = _large_incast_degree(scale)
    large = _incast_figure(
        "5(c,d)",
        f"{big_n}-1 incast with HPCC VAI SF",
        FIG5_HPCC_VARIANTS,
        big_n,
        scale,
        include_series=False,
    )
    merged = FigureResult(figure="5", title="HPCC incast with VAI + SF")
    for name, rows in small.tables.items():
        merged.add_table(f"16-1/{name}", small.columns[name], rows)
    for name, rows in large.tables.items():
        merged.add_table(f"{big_n}-1/{name}", large.columns[name], rows)
    merged.notes = small.notes + large.notes
    return merged


def fig6(scale: str = "scaled") -> FigureResult:
    """Swift incast with VAI+SF: 16-1 (a, b) and 96-1 (c, d)."""
    small = _incast_figure(
        "6(a,b)",
        "16-1 incast with Swift VAI SF",
        FIG6_SWIFT_VARIANTS,
        16,
        scale,
    )
    big_n = _large_incast_degree(scale)
    large = _incast_figure(
        "6(c,d)",
        f"{big_n}-1 incast with Swift VAI SF",
        FIG6_SWIFT_VARIANTS,
        big_n,
        scale,
        include_series=False,
    )
    merged = FigureResult(figure="6", title="Swift incast with VAI + SF")
    for name, rows in small.tables.items():
        merged.add_table(f"16-1/{name}", small.columns[name], rows)
    for name, rows in large.tables.items():
        merged.add_table(f"{big_n}-1/{name}", large.columns[name], rows)
    merged.notes = small.notes + large.notes
    return merged


# ---------------------------------------------------------------------------
# Figure 7: topology
# ---------------------------------------------------------------------------


def fig7(scale: str = "scaled") -> FigureResult:
    """Structural validation of the Fig. 7 fat-tree (paper-scale build)."""
    params = FatTreeParams()  # always the paper's shape; building is cheap
    topo = build_fattree(params)
    net = topo.network
    hosts = topo.hosts
    # Hop-count extremes: same ToR (2 links), same pod (4), cross pod (6).
    same_tor = net.hop_count(hosts[0].node_id, hosts[1].node_id)
    same_pod = net.hop_count(
        hosts[0].node_id, hosts[params.hosts_per_tor].node_id
    )
    cross_pod = net.hop_count(
        hosts[0].node_id,
        hosts[params.hosts_per_tor * params.tors_per_pod].node_id,
    )
    fig = FigureResult(figure="7", title="Fat-tree topology structure")
    fig.add_table(
        "structure",
        ("property", "value"),
        [
            ("hosts", len(hosts)),
            ("ToR switches", params.n_tors),
            ("Agg switches", params.n_aggs),
            ("spine switches", params.spines),
            ("host link", f"{params.host_rate_bps / 1e9:g} Gbps"),
            ("fabric link", f"{params.fabric_rate_bps / 1e9:g} Gbps"),
            ("links same-ToR pair", same_tor),
            ("links same-pod pair", same_pod),
            ("links cross-pod pair", cross_pod),
            ("switch hops cross-pod (paper: max 5)", cross_pod - 1),
        ],
    )
    fig.notes.append(
        "Paper: 320 hosts, 5 pods x (4 ToR + 4 Agg), 16 spines, 100G/400G "
        "links, 1 us propagation per link."
    )
    return fig


# ---------------------------------------------------------------------------
# Figures 8, 9: start vs finish with VAI + SF
# ---------------------------------------------------------------------------


def fig8(scale: str = "scaled") -> FigureResult:
    """Start vs finish, 16-1 incast: HPCC default vs HPCC VAI SF."""
    return _start_finish_figure(
        "8", "Start vs finish (HPCC vs HPCC VAI SF)", ("hpcc", "hpcc-vai-sf"), scale
    )


def fig9(scale: str = "scaled") -> FigureResult:
    """Start vs finish, 16-1 incast: Swift default vs Swift VAI SF."""
    return _start_finish_figure(
        "9", "Start vs finish (Swift vs Swift VAI SF)", ("swift", "swift-vai-sf"), scale
    )


# ---------------------------------------------------------------------------
# Figures 10-13: datacenter FCT slowdowns
# ---------------------------------------------------------------------------


def _dc_cfg(variant: str, workload: str, scale: str):
    if scale == "paper":
        return paper_datacenter(variant, workload)
    return scaled_datacenter(variant, workload)


def _long_flow_threshold_bytes(scale: str) -> float:
    """The paper's "long flow" boundary (1 MB), scaled with flow sizes."""
    return 1_000_000.0 if scale == "paper" else 100_000.0


def _dc_figure(
    figure: str,
    title: str,
    workload: str,
    percentile: float,
    scale: str,
) -> FigureResult:
    fig = FigureResult(figure=figure, title=title)
    threshold = _long_flow_threshold_bytes(scale)
    tail_pct = percentile if scale == "paper" else min(percentile, 99.0)
    n_buckets = 100 if scale == "paper" else 12
    for variant in DATACENTER_VARIANTS:
        result = run_datacenter_cached(_dc_cfg(variant, workload, scale))
        buckets = slowdown_by_size(
            result.records, percentile=tail_pct, n_buckets=n_buckets
        )
        fig.add_table(
            variant,
            ("size <= (KB)", f"p{tail_pct:g} slowdown", "flows"),
            [
                (round(b.size_max_bytes / 1000.0, 1), round(b.slowdown, 2), b.count)
                for b in buckets
            ],
        )
        long_tail = tail_slowdown_above(result.records, threshold, tail_pct)
        stats = summarize(result.records)
        fig.notes.append(
            f"{variant}: {result.n_completed}/{result.n_offered} flows completed, "
            f"long-flow (> {threshold / 1000:g} KB) p{tail_pct:g} slowdown = "
            f"{long_tail if long_tail is None else round(long_tail, 2)}, "
            f"overall p50 = {stats.get('p50_slowdown', float('nan')):.2f}"
        )
    if scale != "paper":
        fig.notes.append(
            f"Scaled run: 16-host fat-tree at 10/40 Gbps, sizes x0.1 "
            f"(long flow = > {threshold / 1000:g} KB), percentile capped at "
            f"p{tail_pct:g} for the available flow count."
        )
    return fig


def fig10(scale: str = "scaled") -> FigureResult:
    """99.9% FCT slowdown vs flow size, Hadoop trace."""
    return _dc_figure(
        "10", "Tail FCT slowdown (Hadoop)", "hadoop", 99.9, scale
    )


def fig11(scale: str = "scaled") -> FigureResult:
    """99.9% FCT slowdown vs flow size, WebSearch + Storage mix."""
    return _dc_figure(
        "11",
        "Tail FCT slowdown (WebSearch + Storage)",
        "websearch+storage",
        99.9,
        scale,
    )


def fig12(scale: str = "scaled") -> FigureResult:
    """Median FCT slowdown vs flow size, Hadoop trace."""
    return _dc_figure("12", "Median FCT slowdown (Hadoop)", "hadoop", 50.0, scale)


def fig13(scale: str = "scaled") -> FigureResult:
    """Median FCT slowdown vs flow size, WebSearch + Storage mix."""
    return _dc_figure(
        "13",
        "Median FCT slowdown (WebSearch + Storage)",
        "websearch+storage",
        50.0,
        scale,
    )


ALL_FIGURES = {
    "1": fig1,
    "2": fig2,
    "3": fig3,
    "4": fig4,
    "5": fig5,
    "6": fig6,
    "7": fig7,
    "8": fig8,
    "9": fig9,
    "10": fig10,
    "11": fig11,
    "12": fig12,
    "13": fig13,
}
