"""Flow-level (`backend="flow"`) and hybrid experiment runners.

The packet runners in :mod:`repro.experiments.runner` simulate every
packet of every flow; the runners here drive the same workloads through
:class:`repro.sim.fluid.FluidEngine` and return the *same result types*
(:class:`~repro.experiments.runner.IncastResult`,
:class:`~repro.experiments.runner.DatacenterResult`), so the metrics,
figure, analytics, and reporting layers work unchanged.

CC awareness
------------

The fluid engine reduces a congestion-control variant to two numbers:

* ``tau`` — the first-order lag with which a flow's rate converges to its
  max-min fair share, in units of the path base RTT.  The paper's whole
  point is that VAI+SF variants converge in a few RTTs where default
  HPCC/Swift take tens; :data:`TAU_RTTS` encodes exactly that ordering.
  The absolute values are calibrated against the packet engine on the
  fig8 workload (see ``check differential --backends``), not derived
  from protocol equations — flow mode is a *fast approximation*.
* a rate cap — ``fs_max_cwnd_pkts`` MTUs per base RTT, the bounded-window
  ceiling all variants share in this reproduction.

What flow mode does **not** model: per-packet queueing/PFC dynamics, RED
marking noise, go-back-N retransmission, packet-level fault injection
(a config carrying drop/corrupt faults is rejected loudly; link flaps
*are* supported via :meth:`FluidEngine.schedule_link_flap`).  The modeled
queue series is a diagnostic overhang integral, not a FIFO depth, so
queue-depth figures from flow mode are indicative only.

Hybrid mode
-----------

``backend="hybrid"`` packetizes the latency-sensitive short flows
(``size <= hybrid_packet_max_bytes``) exactly while the long-flow
background stays fluid: the fluid phase runs first, its time-averaged
per-link utilization derates the packet network's link rates, and the
short flows then run packet-level on that residual-capacity network.
On the single-bottleneck incast star every flow is a designated victim,
so incast hybrid degenerates to the packet path (documented, not hidden).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cc import make_cc, needs_red, uses_cnp
from ..metrics.fairness import convergence_time_ns, jain_series
from ..metrics.fct import FlowRecord, ideal_fct_ns
from ..metrics.queues import queue_stats
from ..sim.flow import Flow
from ..sim.fluid import MTU_PAYLOAD, FluidEngine, FluidFlowParams
from ..sim.network import Network
from ..topology.fattree import build_fattree
from ..topology.star import build_star
from ..workloads.distributions import ScaledDistribution, get_distribution
from ..workloads.incast import staggered_incast
from ..workloads.poisson import generate_poisson_traffic
from .config import DatacenterConfig, FaultConfig, IncastConfig, red_for_rate

__all__ = [
    "TAU_RTTS",
    "fluid_params_for",
    "run_incast_flow",
    "run_incast_hybrid",
    "run_datacenter_flow",
    "run_datacenter_hybrid",
]


# ---------------------------------------------------------------------------
# CC variant -> fluid parameters
# ---------------------------------------------------------------------------

#: Convergence lag per variant family, in base-RTT units, matched by
#: substring in priority order.  VAI+SF variants converge fast (the paper's
#: claim); per-RTT AI at 1 Gbps granularity and probabilistic decrease sit
#: in between; default HPCC/Swift converge slowly.
TAU_RTTS: Tuple[Tuple[str, float], ...] = (
    ("vai-sf", 6.0),
    ("1gbps", 10.0),
    ("prob", 25.0),
    ("dcqcn", 40.0),
)

#: Lag for variants matching no family above (default HPCC/Swift),
#: calibrated against the packet backend's fig-8 convergence time and
#: post-start Jain index (check/differential.py backend matrix).
DEFAULT_TAU_RTTS = 60.0


def _tau_rtts(variant: str) -> float:
    for substring, tau in TAU_RTTS:
        if substring in variant:
            return tau
    return DEFAULT_TAU_RTTS


def fluid_params_for(
    variant: str, *, base_rtt_ns: float, fs_max_cwnd_pkts: float
) -> FluidFlowParams:
    """The fluid-engine abstraction of one CC variant on one path."""
    cap = fs_max_cwnd_pkts * MTU_PAYLOAD / base_rtt_ns
    return FluidFlowParams(
        tau_ns=_tau_rtts(variant) * base_rtt_ns,
        cap_bytes_per_ns=cap,
    )


# ---------------------------------------------------------------------------
# Fault handling
# ---------------------------------------------------------------------------


def _install_fluid_faults(
    faults: Optional[FaultConfig], net: Network, engine: FluidEngine, backend: str
) -> None:
    """Translate a FaultConfig for the fluid engine, or reject it loudly."""
    if faults is None:
        return
    if faults.has_packet_faults:
        raise ValueError(
            f"backend={backend!r} cannot model packet-level faults "
            "(drop/corrupt rates); run this config with backend='packet'"
        )
    if faults.link_flap is not None:
        from .runner import _pick_flap_link

        a, b = _pick_flap_link(net)
        down_at_ns, down_for_ns = faults.link_flap
        engine.schedule_link_flap(
            a,
            b,
            down_at_ns=down_at_ns,
            down_for_ns=down_for_ns,
            period_ns=faults.flap_period_ns,
            count=faults.flap_count,
        )


# ---------------------------------------------------------------------------
# Incast
# ---------------------------------------------------------------------------


def run_incast_flow(cfg: IncastConfig) -> "IncastResult":  # noqa: F821
    """The fluid counterpart of the packet incast runner."""
    from .runner import (
        IncastResult,
        _begin_sanitized_run,
        _check_status,
        _phase,
        _record_run,
    )

    t_begin = time.perf_counter()
    _begin_sanitized_run(cfg)
    with _phase("build"):
        topo = build_star(
            cfg.n_senders,
            rate_bps=cfg.rate_bps,
            prop_delay_ns=cfg.prop_delay_ns,
            seed=cfg.seed,
        )
        net = topo.network
        receiver = topo.hosts[-1].node_id
        base_rtt = net.path_rtt_ns(topo.hosts[0].node_id, receiver, MTU_PAYLOAD)
        engine = FluidEngine(
            net,
            monitored_ports=topo.bottleneck_ports,
            rate_sample_interval_ns=cfg.goodput_interval_ns,
            queue_sample_interval_ns=cfg.sample_interval_ns,
            md_delay_ns=base_rtt,
        )
        specs = staggered_incast(
            cfg.n_senders,
            flow_size_bytes=cfg.flow_size_bytes,
            flows_per_batch=cfg.flows_per_batch,
            batch_interval_ns=cfg.batch_interval_ns,
        )
        flows: List[Flow] = []
        params_cache: Dict[int, FluidFlowParams] = {}
        for spec in specs:
            src = topo.hosts[spec.sender_index].node_id
            params = params_cache.get(src)
            if params is None:
                params = fluid_params_for(
                    cfg.variant,
                    base_rtt_ns=net.path_rtt_ns(src, receiver, MTU_PAYLOAD),
                    fs_max_cwnd_pkts=cfg.fs_max_cwnd_pkts,
                )
                params_cache[src] = params
            flow = Flow(
                net.next_flow_id(), src, receiver, spec.size_bytes, spec.start_time_ns
            )
            engine.add_flow(flow, params)
            flows.append(flow)
        _install_fluid_faults(cfg.faults, net, engine, cfg.backend)

    with _phase("simulate"):
        status = engine.run(cfg.timeout_ns)
    _check_status(cfg.describe(), status)

    with _phase("collect"):
        gt, rows = engine.rate_series()
        gt = np.asarray(gt, dtype=float)
        rates = np.asarray(rows, dtype=float).reshape(len(gt), len(flows))
        jt, jv = jain_series(gt, rates, flows)
        qt, qv = engine.queue_series()
        qt = np.asarray(qt, dtype=float)
        qv = np.asarray(qv, dtype=float)
        last_start = max(f.start_time for f in flows)
    _record_run(
        "incast",
        cfg.describe(),
        wall_s=time.perf_counter() - t_begin,
        events=engine.events_executed,
        completed=bool(status),
    )
    return IncastResult(
        config=cfg,
        flows=flows,
        jain_times_ns=jt,
        jain_values=jv,
        queue_times_ns=qt,
        queue_values_bytes=qv,
        queue=queue_stats(qt, qv),
        convergence_ns=convergence_time_ns(jt, jv, threshold=0.9, after_ns=last_start),
        last_start_ns=last_start,
        all_completed=bool(status),
        events_executed=engine.events_executed,
        status=status,
        incomplete_flow_ids=status.incomplete_flows,
    )


def run_incast_hybrid(cfg: IncastConfig) -> "IncastResult":  # noqa: F821
    """Hybrid incast: every incast flow is a designated (packetized) flow.

    The star topology has a single shared bottleneck and the incast flows
    *are* the phenomenon under study, so there is no background to keep
    fluid — hybrid honestly degenerates to the exact packet path (the
    result still caches under the hybrid key, since ``cfg`` rides on it).
    """
    from .runner import _run_incast_packet

    return _run_incast_packet(cfg)


# ---------------------------------------------------------------------------
# Datacenter
# ---------------------------------------------------------------------------


def _datacenter_workload(cfg: DatacenterConfig, topo) -> list:
    dist = get_distribution(cfg.workload)
    if cfg.size_scale != 1.0:
        dist = ScaledDistribution(dist, cfg.size_scale)
    return generate_poisson_traffic(
        n_hosts=len(topo.hosts),
        host_rate_bps=cfg.fattree.host_rate_bps,
        load=cfg.load,
        duration_ns=cfg.duration_ns,
        distribution=dist,
        seed=cfg.seed,
    )


def _add_fluid_flows(
    cfg: DatacenterConfig, topo, engine: FluidEngine, specs
) -> List[Flow]:
    """Register trace flows on the engine with per-path CC parameters."""
    net = topo.network
    params_cache: Dict[Tuple[int, int], FluidFlowParams] = {}
    flows: List[Flow] = []
    for spec in specs:
        src = topo.hosts[spec.src_index].node_id
        dst = topo.hosts[spec.dst_index].node_id
        key = (src, dst)
        params = params_cache.get(key)
        if params is None:
            params = fluid_params_for(
                cfg.variant,
                base_rtt_ns=net.path_rtt_ns(src, dst, MTU_PAYLOAD),
                fs_max_cwnd_pkts=cfg.fs_max_cwnd_pkts,
            )
            params_cache[key] = params
        flow = Flow(net.next_flow_id(), src, dst, spec.size_bytes, spec.start_time_ns)
        engine.add_flow(flow, params)
        flows.append(flow)
    return flows


def _records_against(net: Network, flows: List[Flow]) -> List[FlowRecord]:
    """Slowdown records with ideals computed on ``net`` (completed flows)."""
    return [
        FlowRecord(f.size, f.fct, ideal_fct_ns(net, f.src, f.dst, f.size))
        for f in flows
        if f.completed
    ]


def run_datacenter_flow(cfg: DatacenterConfig) -> "DatacenterResult":  # noqa: F821
    """The fluid counterpart of the packet datacenter runner."""
    from .runner import (
        DatacenterResult,
        _begin_sanitized_run,
        _phase,
        _record_run,
    )

    t_begin = time.perf_counter()
    _begin_sanitized_run(cfg)
    with _phase("build"):
        topo = build_fattree(cfg.fattree, seed=cfg.seed)
        net = topo.network
        engine = FluidEngine(net)
        specs = _datacenter_workload(cfg, topo)
        flows = _add_fluid_flows(cfg, topo, engine, specs)
        _install_fluid_faults(cfg.faults, net, engine, cfg.backend)

    with _phase("simulate"):
        status = engine.run(cfg.duration_ns + cfg.drain_timeout_ns)

    with _phase("collect"):
        records = _records_against(net, flows)
    _record_run(
        "datacenter",
        cfg.describe(),
        wall_s=time.perf_counter() - t_begin,
        events=engine.events_executed,
        completed=bool(status),
    )
    return DatacenterResult(
        config=cfg,
        records=records,
        n_offered=len(flows),
        n_completed=sum(1 for f in flows if f.completed),
        events_executed=engine.events_executed,
        drops=0,
        status=status,
        incomplete_flow_ids=status.incomplete_flows,
    )


def run_datacenter_hybrid(cfg: DatacenterConfig) -> "DatacenterResult":  # noqa: F821
    """Fluid background + packet foreground on a residual-capacity network.

    Flows larger than ``cfg.hybrid_packet_max_bytes`` run fluid first;
    their time-averaged per-link utilization then derates an identically
    built packet network's link rates (floored at 5% of line rate so no
    link degenerates), and the short flows run packet-level there.  Each
    short flow's slowdown is still measured against the *pristine*
    network's ideal FCT, so hybrid slowdowns are comparable to the other
    backends'.
    """
    from .runner import (
        DatacenterResult,
        _begin_sanitized_run,
        _phase,
        _record_run,
        get_default_budget,
        make_env,
    )

    if cfg.faults is not None:
        raise ValueError(
            "backend='hybrid' does not support fault injection (the fluid "
            "and packet phases would see different fault timelines); use "
            "backend='packet' or backend='flow'"
        )
    t_begin = time.perf_counter()
    _begin_sanitized_run(cfg)
    with _phase("build"):
        topo = build_fattree(cfg.fattree, seed=cfg.seed)
        net = topo.network
        engine = FluidEngine(net, track_link_utilization=True)
        specs = _datacenter_workload(cfg, topo)
        long_specs = [s for s in specs if s.size_bytes > cfg.hybrid_packet_max_bytes]
        short_specs = [s for s in specs if s.size_bytes <= cfg.hybrid_packet_max_bytes]
        long_flows = _add_fluid_flows(cfg, topo, engine, long_specs)

    with _phase("simulate"):
        fluid_status = engine.run(cfg.duration_ns + cfg.drain_timeout_ns)
        utilization = engine.link_utilization(max(engine.now, cfg.duration_ns))

        # Packet phase on an identically built network with derated links.
        red = red_for_rate(cfg.fattree.host_rate_bps) if needs_red(cfg.variant) else None
        ptopo = build_fattree(cfg.fattree, seed=cfg.seed, red=red)
        pnet = ptopo.network
        for (u, v), util in sorted(utilization.items()):
            port = pnet.nodes[u].port_to[v]
            residual = port.spec.rate_bps * max(1.0 - util, 0.05)
            port.spec = replace(port.spec, rate_bps=residual)
        short_flows: List[Flow] = []
        env_cache: Dict[Tuple[int, int], object] = {}
        for spec in short_specs:
            src = ptopo.hosts[spec.src_index].node_id
            dst = ptopo.hosts[spec.dst_index].node_id
            key = (src, dst)
            env = env_cache.get(key)
            if env is None:
                env = make_env(pnet, src, dst)
                env_cache[key] = env
            cc = make_cc(cfg.variant, env, fs_max_cwnd_pkts=cfg.fs_max_cwnd_pkts)
            flow = Flow(
                pnet.next_flow_id(), src, dst, spec.size_bytes, spec.start_time_ns
            )
            flow.use_cnp = uses_cnp(cfg.variant)
            pnet.add_flow(flow, cc)
            short_flows.append(flow)
        packet_status = pnet.run_until_flows_complete(
            timeout_ns=cfg.duration_ns + cfg.drain_timeout_ns,
            budget=get_default_budget(),
        )

    with _phase("collect"):
        # Ideals for both halves come from the pristine fluid-phase net, so
        # derated link rates don't silently deflate short-flow slowdowns.
        records = _records_against(net, long_flows) + _records_against(
            net, short_flows
        )
    events = engine.events_executed + pnet.sim.events_executed
    _record_run(
        "datacenter",
        cfg.describe(),
        wall_s=time.perf_counter() - t_begin,
        events=events,
        completed=bool(fluid_status) and bool(packet_status),
    )
    return DatacenterResult(
        config=cfg,
        records=records,
        n_offered=len(long_flows) + len(short_flows),
        n_completed=sum(1 for f in long_flows + short_flows if f.completed),
        events_executed=events,
        drops=pnet.total_drops(),
        status=packet_status,
        incomplete_flow_ids=fluid_status.incomplete_flows
        + packet_status.incomplete_flows,
        fault_drops=pnet.total_fault_drops(),
        retransmitted_bytes=pnet.total_retransmitted_bytes(),
    )
