"""Parallel experiment campaigns: fan configs across cores, cache by content.

A *campaign* is the set of simulation configs a figure selection needs.
:func:`run_campaign` deduplicates them by content key, serves what the
in-memory LRU or the persistent :mod:`store` already holds, and fans the
remainder out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
Results come back to the parent, which seeds the runner's caches — figure
rendering afterwards is pure cache hits, so the existing sequential figure
code needs no changes to benefit.

Determinism: a simulation is a pure function of its config (every RNG in
the simulator is seeded from config fields), so a config computed in a
worker process is byte-identical to one computed serially or replayed from
the store — ``tests/experiments/test_parallel_store.py`` locks this in.
Workers share nothing: each runs its configs in a fresh interpreter with
its own seeded RNGs, and per-run watchdog budgets are re-installed in every
worker by the pool initializer.

``jobs=1`` never spawns a pool — campaigns degrade gracefully to serial
execution on single-core machines (and under coverage tools that dislike
forked children).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..check import invariants as check_invariants
from ..obs import analytics as obs_analytics
from ..obs import flightrec as obs_flightrec
from ..obs import telemetry as obs_telemetry
from ..sim.network import RunBudget
from .config import (
    DATACENTER_VARIANTS,
    FIG1_HPCC_VARIANTS,
    FIG1_SWIFT_VARIANTS,
    FIG5_HPCC_VARIANTS,
    FIG6_SWIFT_VARIANTS,
    SCALED_LARGE_INCAST,
    DatacenterConfig,
    IncastConfig,
    apply_default_backend,
    apply_default_engine,
    get_default_backend,
    get_default_engine,
    paper_datacenter,
    paper_incast,
    scaled_datacenter,
    scaled_incast,
    set_default_backend,
    set_default_engine,
    with_backend,
    with_engine,
)
from .runner import (
    peek_cached,
    run_datacenter,
    run_incast,
    seed_result_caches,
    set_default_budget,
)

AnyConfig = Union[IncastConfig, DatacenterConfig]

if TYPE_CHECKING:  # pragma: no cover - type-only; runtime import is lazy
    from .supervisor import CampaignJournal, SupervisorConfig


def run_config(cfg: AnyConfig) -> Any:
    """Simulate one config (uncached dispatch; the pool's work function).

    A config type outside the two built-in families can make itself runnable
    by exposing a ``run_self()`` method — the chaos harness's poison configs
    and test doubles (slow runs, self-killing workers) use this hook.
    """
    cfg = apply_default_engine(apply_default_backend(cfg))
    if isinstance(cfg, IncastConfig):
        return run_incast(cfg)
    if isinstance(cfg, DatacenterConfig):
        return run_datacenter(cfg)
    run_self = getattr(cfg, "run_self", None)
    if callable(run_self):
        return run_self()
    raise TypeError(f"not a runnable config: {type(cfg).__name__}")


def _worker_init(
    budget: Optional[RunBudget],
    analytics_config: Optional["obs_analytics.AnalyticsConfig"] = None,
    sanitize: bool = False,
    default_backend: str = "packet",
    flightrec: bool = False,
    default_engine: str = "reference",
) -> None:
    """Pool initializer: re-install the parent's watchdog and analytics.

    Live analytics is a per-process switch; without this, pool runs would
    silently come back without streaming summaries while serial runs carry
    them.  The worker's aggregator itself is discarded — the per-run
    summary rides home on the result object and the parent re-records it.

    The sanitizer is likewise per-process: when the parent runs with
    ``--sanitize``, every worker gets its own checker so a violation in a
    pool run raises in the worker and surfaces through the future exactly
    like any other run failure.

    The flight recorder follows the analytics pattern: the worker's
    recorder dies with the worker, the finalized run section rides home on
    the result object, and the parent re-adopts it.
    """
    set_default_budget(budget)
    set_default_backend(default_backend)
    set_default_engine(default_engine)
    if analytics_config is not None:
        obs_analytics.enable(analytics_config)
    if sanitize:
        check_invariants.enable()
    if flightrec:
        obs_flightrec.enable()


def _describe(cfg: Any) -> str:
    """Progress label for a config (anything with cache_key() is runnable)."""
    describe = getattr(cfg, "describe", None)
    return describe() if callable(describe) else type(cfg).__name__


def _analytics_suffix(live: Optional[Dict[str, Any]]) -> str:
    """Compact live-analytics fields for a campaign heartbeat line."""
    if not live:
        return ""
    conv = live.get("convergence_ns")
    parts = [
        f"jain={live.get('jain', float('nan')):.3f}",
        f"conv={conv / 1e6:.3f}ms" if conv is not None else "conv=-",
    ]
    slowdown = live.get("slowdown") or {}
    p999 = slowdown.get("p999_slowdown")
    if p999 is not None:
        parts.append(f"p999-slowdown={p999:.2f}")
    return " [" + " ".join(parts) + "]"


@dataclass
class RunEnvelope:
    """A worker's result plus the per-run telemetry the parent reports.

    Workers never enable telemetry themselves (the collector is a parent-
    process object); instead every pool task comes back wrapped in one of
    these so the parent can attribute wall time, event count, and worker
    pid without a second communication channel.
    """

    result: Any
    pid: int
    wall_s: float
    events: int


def _run_config_timed(cfg: AnyConfig) -> RunEnvelope:
    """Pool work function: simulate and wrap with timing provenance."""
    t0 = time.perf_counter()
    result = run_config(cfg)
    return RunEnvelope(
        result=result,
        pid=os.getpid(),
        wall_s=time.perf_counter() - t0,
        events=getattr(result, "events_executed", 0),
    )


@dataclass
class CampaignStats:
    """What one campaign did: cache effectiveness and parallel speed.

    The supervision counters (``retried`` onward) stay zero on the plain
    pool path; the fault-tolerant supervisor fills them in.
    """

    requested: int = 0  # configs asked for, duplicates included
    unique: int = 0  # after content-key dedup
    cached: int = 0  # served by LRU or store, no simulation
    executed: int = 0  # actually simulated this campaign
    jobs: int = 1
    wall_s: float = 0.0
    retried: int = 0  # succeeded after >= 1 failed attempt
    salvaged: int = 0  # succeeded after >= 1 worker kill/loss
    quarantined: int = 0  # written off as poison (deterministic failure)
    lost: int = 0  # no result and not poison (worker loss / interrupt)
    workers_killed: int = 0  # stalled workers the supervisor SIGKILLed
    workers_lost: int = 0  # workers that died on their own mid-task

    def summary(self) -> str:
        text = (
            f"{self.requested} config(s), {self.unique} unique: "
            f"{self.cached} cached, {self.executed} simulated "
            f"(jobs={self.jobs}, {self.wall_s:.1f}s)"
        )
        supervision = [
            f"{value} {name}"
            for name, value in (
                ("retried", self.retried),
                ("salvaged", self.salvaged),
                ("quarantined", self.quarantined),
                ("lost", self.lost),
                ("worker(s) killed", self.workers_killed),
                ("worker(s) lost", self.workers_lost),
            )
            if value
        ]
        if supervision:
            text += " [" + ", ".join(supervision) + "]"
        return text


@dataclass
class CampaignOutcome:
    """Results keyed by config content key, plus stats and any failures.

    ``statuses`` maps every unique config key to its final per-config state
    (``ok``/``retried``/``salvaged``/``quarantined``/``lost``) when the
    campaign ran under the supervisor; the plain pool path leaves it empty.
    ``quarantines`` carries the replayable reports for poison configs.
    """

    results: Dict[str, Any]
    stats: CampaignStats
    failures: List[Tuple[str, str]]  # (config key, "ErrorType: message")
    statuses: Dict[str, str] = field(default_factory=dict)
    quarantines: List[Any] = field(default_factory=list)

    def result_for(self, cfg: AnyConfig) -> Any:
        return self.results[cfg.cache_key()]


def _announce(progress: Optional[Callable[[str], None]], message: str) -> None:
    """One live progress line: to the caller's sink and the telemetry log."""
    if progress is not None:
        progress(message)
    tel = obs_telemetry.TELEMETRY
    if tel is not None:
        tel.heartbeat(message)


def run_campaign(
    configs: Sequence[AnyConfig],
    *,
    jobs: int = 1,
    budget: Optional[RunBudget] = None,
    salvage: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    supervisor: Optional["SupervisorConfig"] = None,
    journal: Optional["CampaignJournal"] = None,
) -> CampaignOutcome:
    """Run every config, each exactly once, using caches then ``jobs`` cores.

    Cache tiers are consulted in the parent only (workers always simulate);
    every fresh result is written back through :func:`seed_result_caches`,
    so a second campaign over the same configs executes nothing.

    With ``salvage=True`` a config whose run raises is reported on the
    outcome's ``failures`` instead of aborting the campaign — sweeps use
    this so one pathological seed cannot waste the other workers' results.

    With ``supervisor`` set the campaign is delegated wholesale to
    :func:`repro.experiments.supervisor.run_supervised`, which adds worker
    liveness monitoring, retry/backoff, quarantine, and journaled resume
    (``salvage`` is subsumed by the supervisor's ``partial_ok``).  Without
    it, an optional ``journal`` still records an ``interrupted`` event if
    the campaign dies on Ctrl-C, so even unsupervised campaigns leave a
    resumable trace.

    ``progress`` receives one human-readable line per completed (or failed)
    run, plus a campaign header; the same lines land in the telemetry
    collector's heartbeat log when telemetry is enabled.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if supervisor is not None:
        from .supervisor import run_supervised

        return run_supervised(
            configs, jobs=jobs, budget=budget, progress=progress, sup=supervisor
        )
    start = time.perf_counter()
    stats = CampaignStats(requested=len(configs), jobs=jobs)
    unique: Dict[str, AnyConfig] = {}
    for cfg in configs:
        unique.setdefault(cfg.cache_key(), cfg)
    stats.unique = len(unique)

    results: Dict[str, Any] = {}
    failures: List[Tuple[str, str]] = []
    pending: List[AnyConfig] = []
    for key, cfg in unique.items():
        cached = peek_cached(cfg)
        if cached is not None:
            results[key] = cached
            stats.cached += 1
        else:
            pending.append(cfg)

    if pending:
        _announce(
            progress,
            f"campaign: {stats.unique} unique config(s), {stats.cached} cached, "
            f"{len(pending)} to simulate (jobs={jobs})",
        )
        if jobs == 1:
            futures = [(cfg, None) for cfg in pending]
            pool = None
        else:
            parent_agg = obs_analytics.ANALYTICS
            pool = ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)),
                initializer=_worker_init,
                initargs=(
                    budget,
                    parent_agg.config if parent_agg is not None else None,
                    check_invariants.CHECKER is not None,
                    get_default_backend(),
                    obs_flightrec.RECORDER is not None,
                    get_default_engine(),
                ),
            )
            futures = [(cfg, pool.submit(_run_config_timed, cfg)) for cfg in pending]
        done = 0
        try:
            for cfg, future in futures:
                try:
                    if future is None:
                        # Serial path runs in-parent; the runner itself
                        # records the run when telemetry is on, so only the
                        # pool path reports envelopes (no double-counting).
                        result = run_config(cfg)
                        envelope = None
                    else:
                        envelope = future.result()
                        result = envelope.result
                except Exception as exc:
                    done += 1
                    _announce(
                        progress,
                        f"[{done}/{len(pending)}] {_describe(cfg)} "
                        f"FAILED: {type(exc).__name__}: {exc}",
                    )
                    if not salvage:
                        raise
                    failures.append(
                        (cfg.cache_key(), f"{type(exc).__name__}: {exc}")
                    )
                    continue
                seed_result_caches(cfg, result)
                results[cfg.cache_key()] = result
                stats.executed += 1
                done += 1
                live = getattr(result, "analytics", None)
                if envelope is not None and live is not None:
                    # The worker's aggregator died with the worker; re-record
                    # the summary that rode home on the result object.
                    agg = obs_analytics.ANALYTICS
                    if agg is not None:
                        agg.record(
                            "incast" if isinstance(cfg, IncastConfig) else "datacenter",
                            _describe(cfg),
                            live,
                        )
                frun = getattr(result, "flightrec", None)
                if envelope is not None and frun is not None:
                    # Same shipping pattern as analytics: the worker's
                    # recorder is gone, so adopt the section it finalized.
                    rec = obs_flightrec.RECORDER
                    if rec is not None:
                        rec.adopt_run(frun)
                if envelope is None:
                    _announce(progress, f"[{done}/{len(pending)}] {_describe(cfg)} done")
                else:
                    tel = obs_telemetry.TELEMETRY
                    if tel is not None:
                        status = getattr(result, "status", None)
                        tel.record_run(
                            "incast" if isinstance(cfg, IncastConfig) else "datacenter",
                            _describe(cfg),
                            wall_s=envelope.wall_s,
                            events=envelope.events,
                            completed=bool(status) if status is not None else True,
                            pid=envelope.pid,
                        )
                    _announce(
                        progress,
                        f"[{done}/{len(pending)}] {_describe(cfg)} done in "
                        f"{envelope.wall_s:.2f}s ({envelope.events} events, "
                        f"pid {envelope.pid})" + _analytics_suffix(live),
                    )
        except KeyboardInterrupt:
            # Ctrl-C must not leave orphaned workers grinding on, and the
            # journal (when one is attached) must land on disk before the
            # interrupt propagates — that file is what --resume reads.
            not_done = []
            for pending_cfg, pending_future in futures:
                key = pending_cfg.cache_key()
                if key in results:
                    continue
                if pending_future is not None:
                    pending_future.cancel()
                not_done.append(key)
            if pool is not None:
                for proc in list(getattr(pool, "_processes", {}).values()):
                    proc.terminate()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
            if journal is not None:
                journal.append(
                    "interrupted", pending=not_done, completed=len(results)
                )
            raise
        finally:
            if pool is not None:
                pool.shutdown()

    stats.wall_s = time.perf_counter() - start
    tel = obs_telemetry.TELEMETRY
    if tel is not None:
        tel.record_campaign(
            requested=stats.requested,
            unique=stats.unique,
            cached=stats.cached,
            executed=stats.executed,
            jobs=stats.jobs,
            wall_s=stats.wall_s,
            failures=len(failures),
        )
    return CampaignOutcome(results=results, stats=stats, failures=failures)


# ---------------------------------------------------------------------------
# Figure -> config registry (what to prefetch for a figure selection)
# ---------------------------------------------------------------------------


def _incast_cfg(variant: str, n_senders: int, scale: str) -> IncastConfig:
    if scale == "paper":
        return paper_incast(variant, n_senders)
    return scaled_incast(variant, n_senders)


def _dc_cfg(variant: str, workload: str, scale: str) -> DatacenterConfig:
    if scale == "paper":
        return paper_datacenter(variant, workload)
    return scaled_datacenter(variant, workload)


def figure_configs(fig_id: str, scale: str = "scaled") -> List[AnyConfig]:
    """The simulation configs figure ``fig_id`` consumes (possibly empty).

    Must stay in lockstep with :mod:`repro.experiments.figures` — the
    campaign prefetches these, then the figure functions replay them from
    cache.  Listing a config here that a figure does not use wastes a
    simulation; omitting one merely makes the figure simulate it serially,
    so drift is a performance bug, never a correctness bug.  Figures 4
    (fluid model) and 7 (topology structure) run no simulations.
    """
    large = 96 if scale == "paper" else SCALED_LARGE_INCAST
    incasts = {
        "1": [(v, 16) for v in FIG1_HPCC_VARIANTS + FIG1_SWIFT_VARIANTS],
        "2": [(v, 16) for v in FIG1_HPCC_VARIANTS],
        "3": [(v, 16) for v in FIG1_SWIFT_VARIANTS],
        "5": [(v, n) for n in (16, large) for v in FIG5_HPCC_VARIANTS],
        "6": [(v, n) for n in (16, large) for v in FIG6_SWIFT_VARIANTS],
        "8": [(v, 16) for v in ("hpcc", "hpcc-vai-sf")],
        "9": [(v, 16) for v in ("swift", "swift-vai-sf")],
    }
    datacenters = {
        "10": "hadoop",
        "12": "hadoop",
        "11": "websearch+storage",
        "13": "websearch+storage",
    }
    fig_id = str(fig_id)
    configs: List[AnyConfig] = [
        _incast_cfg(v, n, scale) for v, n in incasts.get(fig_id, [])
    ]
    workload = datacenters.get(fig_id)
    if workload is not None:
        configs.extend(_dc_cfg(v, workload, scale) for v in DATACENTER_VARIANTS)
    return configs


def campaign_for_figures(
    fig_ids: Sequence[str],
    scale: str = "scaled",
    backend: str = "packet",
    engine: str = "reference",
) -> List[AnyConfig]:
    """Union of configs for a figure selection, duplicates included.

    ``run_campaign`` deduplicates by content key, so figure pairs sharing
    simulations (2/3 with 1, 12/13 with 10/11) cost nothing extra.  A
    non-default ``backend`` (or ``engine``) is stamped onto every config so
    campaign keys match what the figure functions will look up after
    :func:`repro.experiments.config.set_default_backend` /
    :func:`~repro.experiments.config.set_default_engine`.
    """
    out: List[AnyConfig] = []
    for fig_id in fig_ids:
        out.extend(figure_configs(fig_id, scale))
    if backend != "packet":
        out = [with_backend(cfg, backend) for cfg in out]
    if engine != "reference":
        out = [with_engine(cfg, engine) for cfg in out]
    return out
