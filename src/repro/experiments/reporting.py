"""Plain-text rendering of figure reproductions."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .figures import FigureResult


def format_table(columns: Sequence[str], rows: Iterable[tuple]) -> str:
    """Render rows as an aligned text table."""
    rows = [tuple("" if v is None else str(v) for v in row) for row in rows]
    headers = [str(c) for c in columns]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render(result: FigureResult, *, max_series_rows: int = 12) -> str:
    """Render a whole :class:`FigureResult` for the terminal."""
    out: List[str] = [f"=== Figure {result.figure}: {result.title} ==="]
    for name, rows in result.tables.items():
        columns = result.columns.get(name, ())
        shown = rows
        truncated = ""
        is_series = name.startswith(("jain:", "queue:")) or "/jain:" in name or "/queue:" in name
        if is_series and len(rows) > max_series_rows:
            step = max(1, len(rows) // max_series_rows)
            shown = rows[::step]
            truncated = f"  (showing every {step}th of {len(rows)} samples)"
        out.append(f"\n-- {name}{truncated}")
        out.append(format_table(columns, shown))
    if result.notes:
        out.append("\nNotes:")
        out.extend(f"  * {n}" for n in result.notes)
    return "\n".join(out)
