"""Experiment execution: build topology + workload + protocol, run, measure.

Two entry points:

* :func:`run_incast` — the Sec. III-D / VI-B-1 microbenchmark, returning
  Jain-index and queue-depth time series plus start/finish pairs;
* :func:`run_datacenter` — the Sec. VI-B-2 trace-driven fat-tree runs,
  returning per-flow slowdown records.

Both are deterministic for a given config (seeded RNGs everywhere) and cache
their results process-wide (bounded LRU) so that figure pairs sharing data
(10/12, 11/13) pay for each simulation once.

Hardening (sweeps call hundreds of runs; one bad run must not sink them):

* :func:`set_default_budget` installs a process-wide :class:`RunBudget`
  watchdog; a run that breaches it raises :exc:`WatchdogExpired`.
* A run whose flows do not all complete is recorded in an incomplete-run
  registry (:func:`drain_incomplete_runs`) so the CLI can exit non-zero
  with a clear message instead of silently rendering partial figures.
* :func:`run_with_retry` / :func:`salvage_runs` give sweeps retry-with-
  backoff and partial-result salvage (succeeded runs are returned together
  with structured :class:`RunFailure` reports for the rest).

Configs carrying a :class:`repro.experiments.config.FaultConfig` get the
matching :mod:`repro.sim.faults` injectors installed and go-back-N loss
recovery enabled before the run starts.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..cc import CCEnv, make_cc, needs_red, uses_cnp
from ..check import invariants as check_invariants
from ..obs import analytics as obs_analytics
from ..obs import flightrec as obs_flightrec
from ..obs import profiler as obs_profiler
from ..obs import telemetry as obs_telemetry
from ..metrics.fairness import convergence_time_ns, jain_series
from ..metrics.fct import FlowRecord, collect_records, ideal_fct_ns
from ..metrics.queues import QueueStats, queue_stats
from ..sim.faults import FaultPlan, LinkFlapInjector, PacketDropInjector
from ..sim.flow import Flow
from ..sim.monitor import GoodputMonitor, PeriodicSampler, QueueMonitor
from ..sim.network import CompletionStatus, Network, RunBudget
from ..sim.switch import Switch
from ..topology.base import Topology
from ..topology.fattree import build_fattree
from ..topology.star import build_star
from ..workloads.distributions import ScaledDistribution, get_distribution
from ..workloads.incast import staggered_incast
from ..workloads.poisson import generate_poisson_traffic
from .config import (
    DatacenterConfig,
    FaultConfig,
    IncastConfig,
    apply_default_backend,
    apply_default_engine,
    red_for_rate,
)
from .store import get_store


class WatchdogExpired(RuntimeError):
    """A run breached its :class:`RunBudget` (wall clock or event count)."""


#: Process-wide budget applied to every run (None = unbudgeted).
_DEFAULT_BUDGET: Optional[RunBudget] = None

#: Human-readable descriptions of runs whose flows did not all complete.
_INCOMPLETE_RUNS: List[str] = []


def set_default_budget(budget: Optional[RunBudget]) -> None:
    """Install (or clear, with None) the process-wide per-run watchdog."""
    global _DEFAULT_BUDGET
    _DEFAULT_BUDGET = budget


def get_default_budget() -> Optional[RunBudget]:
    return _DEFAULT_BUDGET


def drain_incomplete_runs() -> List[str]:
    """Return and clear the incomplete-run registry (CLI exit-code source)."""
    out = list(_INCOMPLETE_RUNS)
    _INCOMPLETE_RUNS.clear()
    return out


def _phase(name: str):
    """Telemetry phase context (no-op when telemetry is disabled).

    Also mirrors the phase onto the hot-path profiler (when active) so
    runner-level phases (``build``/``simulate``/``collect``) frame the
    engine's finer-grained attribution in the flamegraph output.
    """
    tel = obs_telemetry.TELEMETRY
    prof = obs_profiler.PHASE_HOOKS
    tel_ctx = tel.phase(name) if tel is not None else nullcontext()
    if prof is None:
        return tel_ctx

    @contextmanager
    def both():
        prof.push(f"runner.{name}")
        try:
            with tel_ctx:
                yield
        finally:
            prof.pop()

    return both()


def _begin_sanitized_run(cfg: Any) -> None:
    """Reset the sanitizer's shadow state and install the replay context.

    Called at the top of every run so an :class:`InvariantViolation` names
    the exact config (description, content digest, seed) that reproduces
    it, and shadow accounting from the previous run cannot leak into this
    one.  No-op when sanitizing is off.
    """
    chk = check_invariants.CHECKER
    if chk is not None:
        chk.begin_run(
            config=cfg.describe(),
            cache_key=cfg.cache_key()[:16],
            seed=cfg.seed,
        )


def _begin_flightrec_run(cfg: Any, kind: str) -> None:
    """Open a flight-recorder run labelled with this config.

    Mirrors :func:`_begin_sanitized_run` — the recorder's working state is
    per-run, so the label must be stamped before the first flow opens.
    No-op when the recorder is off.
    """
    rec = obs_flightrec.RECORDER
    if rec is not None:
        rec.begin_run(kind, cfg.describe())


def _finish_flightrec(
    net: Network,
    *,
    convergence_ns: Optional[float] = None,
) -> Optional[Dict[str, Any]]:
    """Finalize the flight-recorder run and return its manifest section.

    Supplies the ideal-FCT oracle (so decompositions carry slowdowns and
    sort by them) and the convergence instant for the timeline.  Returns
    ``None`` when the recorder is off.
    """
    rec = obs_flightrec.RECORDER
    if rec is None:
        return None
    return rec.finalize_run(
        ideal_ns_fn=lambda f: ideal_fct_ns(net, f.src, f.dst, f.size),
        convergence_ns=convergence_ns,
    )


def _record_run(kind: str, desc: str, *, wall_s: float, events: int, completed: bool) -> None:
    tel = obs_telemetry.TELEMETRY
    if tel is not None:
        tel.record_run(kind, desc, wall_s=wall_s, events=events, completed=completed)


def _attach_analyzer(
    net: Network, flows: List[Flow], *, default_interval_ns: float
) -> Tuple[Optional["obs_analytics.LiveAnalyzer"], Optional[PeriodicSampler]]:
    """Start a live analytics sampler when the analytics layer is enabled.

    Returns ``(analyzer, sampler)`` or ``(None, None)``.  The analyzer only
    *reads* simulation state, so flow times and series stay byte-identical;
    the sampler's own wakeups do add to ``events_executed`` (which is why
    analytics, unlike the passive obs layers, is opt-in per process).
    """
    agg = obs_analytics.ANALYTICS
    if agg is None:
        return None, None
    acfg = agg.config
    interval = (
        acfg.interval_ns if acfg.interval_ns is not None else default_interval_ns
    )
    tel = obs_telemetry.TELEMETRY

    def delivered(flow: Flow) -> int:
        receiver = net.nodes[flow.dst].receivers.get(flow.flow_id)
        return receiver.received if receiver is not None else 0

    analyzer = obs_analytics.LiveAnalyzer(
        flows,
        now_fn=net.sim.now,
        delivered_fn=delivered,
        ideal_ns_fn=lambda f: ideal_fct_ns(net, f.src, f.dst, f.size),
        threshold=acfg.threshold,
        sustain_samples=acfg.sustain_samples,
        interval_ns=interval,
        rate_tau_intervals=acfg.rate_tau_intervals,
        heartbeat=tel.heartbeat if tel is not None else None,
        heartbeat_every=acfg.heartbeat_every,
    )
    sampler = PeriodicSampler(net.sim, interval, analyzer.sample).start()
    return analyzer, sampler


def _finish_analyzer(
    analyzer: Optional["obs_analytics.LiveAnalyzer"],
    sampler: Optional[PeriodicSampler],
    kind: str,
    desc: str,
) -> Optional[Dict[str, Any]]:
    """Stop the sampler, record the summary, and emit the run heartbeat."""
    if analyzer is None:
        return None
    sampler.stop()
    summary = analyzer.finalize()
    agg = obs_analytics.ANALYTICS
    if agg is not None:
        agg.record(kind, desc, summary)
    tel = obs_telemetry.TELEMETRY
    if tel is not None:
        tel.heartbeat(f"{desc}: {analyzer.describe_live()}")
    return summary


def _check_status(desc: str, status: CompletionStatus) -> None:
    """Raise on watchdog expiry; register a timeout/stall for the CLI."""
    if status.watchdog_expired:
        raise WatchdogExpired(
            f"{desc}: watchdog stopped the run ({status.stop_reason}) after "
            f"{status.events_executed} events with "
            f"{len(status.incomplete_flows)} flows incomplete"
        )
    if not status.completed:
        _INCOMPLETE_RUNS.append(
            f"{desc}: {status.stop_reason} with flows "
            f"{status.incomplete_flows[:8]} incomplete"
        )


# ---------------------------------------------------------------------------
# Fault installation
# ---------------------------------------------------------------------------


def _pick_flap_link(net: Network) -> Tuple[int, int]:
    """The link a ``FaultConfig.link_flap`` targets.

    Prefer a fabric (switch-switch) link — the interesting reroute case —
    falling back to the first switch port's link on single-switch
    topologies, where flapping any host uplink is the only option.
    """
    for sw in net.switches:
        for port in sw.ports:
            if isinstance(port.peer_node, Switch):
                return sw.node_id, port.peer_node.node_id
    for sw in net.switches:
        if sw.ports:
            return sw.node_id, sw.ports[0].peer_node.node_id
    raise ValueError("topology has no links to flap")


def install_faults(spec: FaultConfig, topo: Topology) -> FaultPlan:
    """Translate a :class:`FaultConfig` into installed injectors.

    Also enables go-back-N loss recovery on every host — dropped data would
    otherwise deadlock its flow on the lossless fabric.
    """
    net = topo.network
    plan = FaultPlan()
    if spec.has_packet_faults:
        if spec.target == "bottleneck":
            ports = list(topo.bottleneck_ports)
        elif spec.target == "fabric":
            ports = [p for sw in net.switches for p in sw.ports]
        else:  # "all"
            ports = [p for n in net.nodes for p in n.ports]
        plan.add(
            PacketDropInjector(
                ports=ports,
                probability=spec.drop_rate,
                corrupt_probability=spec.corrupt_rate,
                every_nth=spec.drop_every_nth,
                seed=spec.seed,
            )
        )
    if spec.link_flap is not None:
        a, b = _pick_flap_link(net)
        down_at_ns, down_for_ns = spec.link_flap
        plan.add(
            LinkFlapInjector(
                a,
                b,
                down_at_ns=down_at_ns,
                down_for_ns=down_for_ns,
                period_ns=spec.flap_period_ns,
                count=spec.flap_count,
            )
        )
    plan.install(net)
    net.enable_loss_recovery(rto_ns=spec.rto_ns)
    return plan


def make_env(network: Network, src: int, dst: int, mtu: int = 1000) -> CCEnv:
    """Per-flow protocol environment from topology facts."""
    host = network.nodes[src]
    return CCEnv(
        line_rate_bps=host.ports[0].spec.rate_bps,
        base_rtt_ns=network.path_rtt_ns(src, dst, mtu),
        mtu_bytes=mtu,
        hops=network.hop_count(src, dst),
        min_bdp_bytes=network.min_bdp_bytes(src, dst),
        rng=network.rng,
    )


# ---------------------------------------------------------------------------
# Incast
# ---------------------------------------------------------------------------


@dataclass
class IncastResult:
    """Everything Figs. 1-3, 5, 6, 8, 9 need from one incast run."""

    config: IncastConfig
    flows: List[Flow]
    jain_times_ns: np.ndarray
    jain_values: np.ndarray
    queue_times_ns: np.ndarray
    queue_values_bytes: np.ndarray
    queue: QueueStats
    convergence_ns: Optional[float]
    last_start_ns: float
    all_completed: bool
    events_executed: int
    status: Optional[CompletionStatus] = None
    incomplete_flow_ids: Tuple[int, ...] = ()
    fault_drops: int = 0
    retransmitted_bytes: int = 0
    #: Streaming-analytics summary (None unless analytics was enabled).
    analytics: Optional[Dict[str, Any]] = None
    #: Flight-recorder run section (None unless the recorder was enabled).
    flightrec: Optional[Dict[str, Any]] = None

    def start_finish_pairs(self) -> List[Tuple[float, float]]:
        """(start, finish) per flow in start order — Figs. 2/3/8/9 data."""
        done = [f for f in self.flows if f.completed]
        return sorted((f.start_time, f.finish_time) for f in done)

    def finish_spread_ns(self) -> float:
        """Max minus min finish time (small = flows finish together)."""
        finishes = [f.finish_time for f in self.flows if f.completed]
        if not finishes:
            return float("nan")
        return max(finishes) - min(finishes)

    def start_finish_correlation(self) -> float:
        """Pearson correlation of start vs finish time.

        Default HPCC/Swift show a *negative* correlation (later flows finish
        first — the paper's unfairness signature); fair variants push it
        toward zero or positive.
        """
        pairs = self.start_finish_pairs()
        if len(pairs) < 3:
            return float("nan")
        starts, finishes = np.array(pairs).T
        if starts.std() == 0 or np.std(finishes) == 0:
            return 0.0
        return float(np.corrcoef(starts, finishes)[0, 1])


def run_incast(cfg: IncastConfig) -> IncastResult:
    """Run one staggered incast on the config's backend.

    ``backend="packet"`` is the exact discrete-event path below;
    ``"flow"`` dispatches to the fluid fast path and ``"hybrid"`` to the
    mixed runner (both in :mod:`repro.experiments.flowsim`, imported
    lazily so the packet path's import graph is unchanged).
    """
    if cfg.backend == "flow":
        from .flowsim import run_incast_flow

        return run_incast_flow(cfg)
    if cfg.backend == "hybrid":
        from .flowsim import run_incast_hybrid

        return run_incast_hybrid(cfg)
    return _run_incast_packet(cfg)


def _run_incast_packet(cfg: IncastConfig) -> IncastResult:
    """Run one staggered incast and collect fairness/queue series."""
    t_begin = time.perf_counter()
    _begin_sanitized_run(cfg)
    _begin_flightrec_run(cfg, "incast")
    with _phase("build"):
        red = red_for_rate(cfg.rate_bps) if needs_red(cfg.variant) else None
        topo = build_star(
            cfg.n_senders,
            rate_bps=cfg.rate_bps,
            prop_delay_ns=cfg.prop_delay_ns,
            seed=cfg.seed,
            red=red,
            engine=cfg.engine,
        )
        net = topo.network
        if cfg.faults is not None:
            install_faults(cfg.faults, topo)
        receiver = topo.hosts[-1].node_id
        specs = staggered_incast(
            cfg.n_senders,
            flow_size_bytes=cfg.flow_size_bytes,
            flows_per_batch=cfg.flows_per_batch,
            batch_interval_ns=cfg.batch_interval_ns,
        )
        flows: List[Flow] = []
        for spec in specs:
            src = topo.hosts[spec.sender_index].node_id
            env = make_env(net, src, receiver)
            cc = make_cc(cfg.variant, env, fs_max_cwnd_pkts=cfg.fs_max_cwnd_pkts)
            flow = Flow(
                net.next_flow_id(), src, receiver, spec.size_bytes, spec.start_time_ns
            )
            flow.use_cnp = uses_cnp(cfg.variant)
            net.add_flow(flow, cc)
            flows.append(flow)

        qmon = QueueMonitor(
            net.sim, topo.bottleneck_ports, cfg.sample_interval_ns, aggregate="sum"
        ).start()
        if net.core is not None:
            # Turbo engine: sample the SoA delivered column in one gather.
            from ..sim.turbo import TurboGoodputMonitor

            gmon = TurboGoodputMonitor(
                net.sim, flows, net.nodes, cfg.goodput_interval_ns, core=net.core
            ).start()
        else:
            gmon = GoodputMonitor(
                net.sim, flows, net.nodes, cfg.goodput_interval_ns
            ).start()
        analyzer, asampler = _attach_analyzer(
            net, flows, default_interval_ns=cfg.goodput_interval_ns
        )

    with _phase("simulate"):
        status = net.run_until_flows_complete(
            timeout_ns=cfg.timeout_ns, budget=_DEFAULT_BUDGET
        )
    qmon.stop()
    gmon.stop()
    live = _finish_analyzer(analyzer, asampler, "incast", cfg.describe())
    _check_status(cfg.describe(), status)

    with _phase("collect"):
        qt, qv = qmon.series()
        gt, rates = gmon.rates_bps()
        jt, jv = jain_series(gt, rates, flows)
        last_start = max(f.start_time for f in flows)
        conv_ns = convergence_time_ns(jt, jv, threshold=0.9, after_ns=last_start)
        frun = _finish_flightrec(net, convergence_ns=conv_ns)
    _record_run(
        "incast",
        cfg.describe(),
        wall_s=time.perf_counter() - t_begin,
        events=net.sim.events_executed,
        completed=bool(status),
    )
    return IncastResult(
        config=cfg,
        flows=flows,
        jain_times_ns=jt,
        jain_values=jv,
        queue_times_ns=qt,
        queue_values_bytes=qv,
        queue=queue_stats(qt, qv),
        convergence_ns=conv_ns,
        last_start_ns=last_start,
        all_completed=bool(status),
        events_executed=net.sim.events_executed,
        status=status,
        incomplete_flow_ids=status.incomplete_flows,
        fault_drops=net.total_fault_drops(),
        retransmitted_bytes=net.total_retransmitted_bytes(),
        analytics=live,
        flightrec=frun,
    )


# ---------------------------------------------------------------------------
# Datacenter
# ---------------------------------------------------------------------------


@dataclass
class DatacenterResult:
    """Per-flow slowdown records from one trace-driven run."""

    config: DatacenterConfig
    records: List[FlowRecord]
    n_offered: int
    n_completed: int
    events_executed: int
    drops: int
    status: Optional[CompletionStatus] = None
    incomplete_flow_ids: Tuple[int, ...] = ()
    fault_drops: int = 0
    retransmitted_bytes: int = 0
    #: Streaming-analytics summary (None unless analytics was enabled).
    analytics: Optional[Dict[str, Any]] = None
    #: Flight-recorder run section (None unless the recorder was enabled).
    flightrec: Optional[Dict[str, Any]] = None

    @property
    def completion_fraction(self) -> float:
        return self.n_completed / self.n_offered if self.n_offered else 0.0


def run_datacenter(cfg: DatacenterConfig) -> DatacenterResult:
    """Run one fat-tree trace on the config's backend (see run_incast)."""
    if cfg.backend == "flow":
        from .flowsim import run_datacenter_flow

        return run_datacenter_flow(cfg)
    if cfg.backend == "hybrid":
        from .flowsim import run_datacenter_hybrid

        return run_datacenter_hybrid(cfg)
    return _run_datacenter_packet(cfg)


def _run_datacenter_packet(cfg: DatacenterConfig) -> DatacenterResult:
    """Run one fat-tree trace: Poisson arrivals for ``duration``, then drain."""
    t_begin = time.perf_counter()
    _begin_sanitized_run(cfg)
    _begin_flightrec_run(cfg, "datacenter")
    with _phase("build"):
        red = red_for_rate(cfg.fattree.host_rate_bps) if needs_red(cfg.variant) else None
        topo = build_fattree(cfg.fattree, seed=cfg.seed, red=red, engine=cfg.engine)
        net = topo.network
        if cfg.faults is not None:
            install_faults(cfg.faults, topo)
        dist = get_distribution(cfg.workload)
        if cfg.size_scale != 1.0:
            dist = ScaledDistribution(dist, cfg.size_scale)
        specs = generate_poisson_traffic(
            n_hosts=len(topo.hosts),
            host_rate_bps=cfg.fattree.host_rate_bps,
            load=cfg.load,
            duration_ns=cfg.duration_ns,
            distribution=dist,
            seed=cfg.seed,
        )
        # Environments depend only on (src, dst); cache them.
        env_cache: Dict[Tuple[int, int], CCEnv] = {}
        flows: List[Flow] = []
        for spec in specs:
            src = topo.hosts[spec.src_index].node_id
            dst = topo.hosts[spec.dst_index].node_id
            key = (src, dst)
            env = env_cache.get(key)
            if env is None:
                env = make_env(net, src, dst)
                env_cache[key] = env
            cc = make_cc(cfg.variant, env, fs_max_cwnd_pkts=cfg.fs_max_cwnd_pkts)
            flow = Flow(
                net.next_flow_id(), src, dst, spec.size_bytes, spec.start_time_ns
            )
            flow.use_cnp = uses_cnp(cfg.variant)
            net.add_flow(flow, cc)
            flows.append(flow)
        agg = obs_analytics.ANALYTICS
        analyzer, asampler = _attach_analyzer(
            net,
            flows,
            default_interval_ns=(
                agg.config.fallback_interval_ns if agg is not None else 0.0
            ),
        )

    with _phase("simulate"):
        status = net.run_until_flows_complete(
            timeout_ns=cfg.duration_ns + cfg.drain_timeout_ns, budget=_DEFAULT_BUDGET
        )
    live = _finish_analyzer(analyzer, asampler, "datacenter", cfg.describe())
    # Unlike the incast, a drain timeout with a few stragglers is a valid
    # outcome here (completion_fraction reports it), so only the watchdog is
    # an error; the status still rides on the result for diagnosis.
    if status.watchdog_expired:
        raise WatchdogExpired(
            f"{cfg.describe()}: watchdog stopped the run ({status.stop_reason}) "
            f"after {status.events_executed} events with "
            f"{len(status.incomplete_flows)} flows incomplete"
        )
    with _phase("collect"):
        records = collect_records(net, flows)
        # No Jain series here — the analytics detector's instant (when it
        # ran) is the only convergence signal the timeline can carry.
        frun = _finish_flightrec(
            net,
            convergence_ns=live.get("convergence_ns") if live else None,
        )
    _record_run(
        "datacenter",
        cfg.describe(),
        wall_s=time.perf_counter() - t_begin,
        events=net.sim.events_executed,
        completed=bool(status),
    )
    return DatacenterResult(
        config=cfg,
        records=records,
        n_offered=len(flows),
        n_completed=sum(1 for f in flows if f.completed),
        events_executed=net.sim.events_executed,
        drops=net.total_drops(),
        status=status,
        incomplete_flow_ids=status.incomplete_flows,
        fault_drops=net.total_fault_drops(),
        retransmitted_bytes=net.total_retransmitted_bytes(),
        analytics=live,
        flightrec=frun,
    )


# ---------------------------------------------------------------------------
# Process-wide result cache (figures 10/12 and 11/13 share simulations)
# ---------------------------------------------------------------------------


class LRUCache:
    """A size-bounded mapping with least-recently-used eviction.

    Results hold full time series and flow lists, so an unbounded cache in a
    long sweep process grows without limit; the bound keeps the figure-pair
    sharing benefit (hits are always the most recent configs) while capping
    memory.  ``get`` refreshes recency; ``put`` evicts the oldest entries
    once ``maxsize`` is exceeded.
    """

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.evictions = 0
        self._data: "OrderedDict[Any, Any]" = OrderedDict()

    def get(self, key: Any, default: Any = None) -> Any:
        try:
            self._data.move_to_end(key)
        except KeyError:
            return default
        return self._data[key]

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data


#: Incast results are small (KBs of series); datacenter results hold per-flow
#: records for thousands of flows, so their cache is tighter.
_INCAST_CACHE = LRUCache(maxsize=64)
_DC_CACHE = LRUCache(maxsize=32)


def _run_cached(cache: LRUCache, run: Callable[[Any], Any], cfg: Any) -> Any:
    """Memory LRU -> persistent store -> simulate, writing through both.

    Both tiers key on ``cfg.cache_key()`` (the canonical content hash), so a
    result computed under one spelling of a config hits under any equal
    spelling, in this process or a later one.  The config is normalized to
    the process-default backend first, so a figure's internally built
    packet-default config keys (and runs) under ``--backend flow`` without
    the figure code knowing backends exist.
    """
    cfg = apply_default_engine(apply_default_backend(cfg))
    key = cfg.cache_key()
    result = cache.get(key)
    if result is not None:
        return result
    store = get_store()
    if store is not None:
        result = store.get(cfg)
    if result is None:
        result = run(cfg)
        if store is not None:
            store.put(cfg, result)
    cache.put(key, result)
    return result


def peek_cached(cfg: Any) -> Optional[Any]:
    """The cached result for ``cfg`` if any tier holds it; never simulates.

    A store hit is promoted into the memory LRU so later ``run_*_cached``
    calls skip the disk read.
    """
    cfg = apply_default_engine(apply_default_backend(cfg))
    cache = _INCAST_CACHE if isinstance(cfg, IncastConfig) else _DC_CACHE
    key = cfg.cache_key()
    result = cache.get(key)
    if result is not None:
        return result
    store = get_store()
    if store is not None:
        result = store.get(cfg)
        if result is not None:
            cache.put(key, result)
    return result


def seed_result_caches(cfg: Any, result: Any) -> None:
    """Inject an externally computed result (e.g. from a worker process).

    The campaign runner fans simulations out to a process pool; the parent
    seeds its own LRU and the store with the returned results so figure
    rendering afterwards is pure cache hits.
    """
    cfg = apply_default_engine(apply_default_backend(cfg))
    cache = _INCAST_CACHE if isinstance(cfg, IncastConfig) else _DC_CACHE
    cache.put(cfg.cache_key(), result)
    store = get_store()
    if store is not None and cfg not in store:
        store.put(cfg, result)


def run_incast_cached(cfg: IncastConfig) -> IncastResult:
    return _run_cached(_INCAST_CACHE, run_incast, cfg)


def run_datacenter_cached(cfg: DatacenterConfig) -> DatacenterResult:
    return _run_cached(_DC_CACHE, run_datacenter, cfg)


def clear_caches() -> None:
    """Drop cached results (benchmarks measuring cold runs call this)."""
    _INCAST_CACHE.clear()
    _DC_CACHE.clear()


# ---------------------------------------------------------------------------
# Retry and partial-result salvage (sweep hardening)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunFailure:
    """One run that kept failing after every retry, as a structured report."""

    key: Any
    error: str
    attempts: int


def run_with_retry(
    fn: Callable[..., Any],
    *args: Any,
    retries: int = 1,
    backoff_s: float = 0.0,
    sleep: Callable[[float], None] = time.sleep,
    **kwargs: Any,
) -> Any:
    """Call ``fn`` with up to ``retries`` retries and exponential backoff.

    The sleep after attempt *k* (1-based) is ``backoff_s * 2**(k-1)``;
    ``sleep`` is injectable so tests never actually wait.  The final failure
    propagates unchanged.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn(*args, **kwargs)
        except Exception:
            if attempt > retries:
                raise
            if backoff_s > 0.0:
                sleep(backoff_s * 2.0 ** (attempt - 1))


def salvage_runs(
    keys: Iterable[Any],
    fn: Callable[[Any], Any],
    *,
    retries: int = 1,
    backoff_s: float = 0.0,
    sleep: Callable[[float], None] = time.sleep,
) -> Tuple[List[Tuple[Any, Any]], List[RunFailure]]:
    """Run ``fn(key)`` for each key, salvaging what succeeds.

    Returns ``(successes, failures)``: successes as ``(key, result)`` pairs
    in input order, failures as :class:`RunFailure` reports.  A run that
    raises is retried ``retries`` times before being written off — so one
    pathological seed cannot sink a whole sweep.
    """
    successes: List[Tuple[Any, Any]] = []
    failures: List[RunFailure] = []
    for key in keys:
        try:
            successes.append(
                (key, run_with_retry(fn, key, retries=retries,
                                     backoff_s=backoff_s, sleep=sleep))
            )
        except Exception as exc:
            failures.append(
                RunFailure(
                    key=key,
                    error=f"{type(exc).__name__}: {exc}",
                    attempts=retries + 1,
                )
            )
    return successes, failures
