"""Experiment execution: build topology + workload + protocol, run, measure.

Two entry points:

* :func:`run_incast` — the Sec. III-D / VI-B-1 microbenchmark, returning
  Jain-index and queue-depth time series plus start/finish pairs;
* :func:`run_datacenter` — the Sec. VI-B-2 trace-driven fat-tree runs,
  returning per-flow slowdown records.

Both are deterministic for a given config (seeded RNGs everywhere) and cache
their results process-wide so that figure pairs sharing data (10/12, 11/13)
pay for each simulation once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cc import CCEnv, make_cc, needs_red, uses_cnp
from ..metrics.fairness import convergence_time_ns, jain_series
from ..metrics.fct import FlowRecord, collect_records
from ..metrics.queues import QueueStats, queue_stats
from ..sim.flow import Flow
from ..sim.monitor import GoodputMonitor, QueueMonitor
from ..sim.network import Network
from ..topology.fattree import build_fattree
from ..topology.star import build_star
from ..workloads.distributions import ScaledDistribution, get_distribution
from ..workloads.incast import staggered_incast
from ..workloads.poisson import generate_poisson_traffic
from .config import DatacenterConfig, IncastConfig, red_for_rate


def make_env(network: Network, src: int, dst: int, mtu: int = 1000) -> CCEnv:
    """Per-flow protocol environment from topology facts."""
    host = network.nodes[src]
    return CCEnv(
        line_rate_bps=host.ports[0].spec.rate_bps,
        base_rtt_ns=network.path_rtt_ns(src, dst, mtu),
        mtu_bytes=mtu,
        hops=network.hop_count(src, dst),
        min_bdp_bytes=network.min_bdp_bytes(src, dst),
        rng=network.rng,
    )


# ---------------------------------------------------------------------------
# Incast
# ---------------------------------------------------------------------------


@dataclass
class IncastResult:
    """Everything Figs. 1-3, 5, 6, 8, 9 need from one incast run."""

    config: IncastConfig
    flows: List[Flow]
    jain_times_ns: np.ndarray
    jain_values: np.ndarray
    queue_times_ns: np.ndarray
    queue_values_bytes: np.ndarray
    queue: QueueStats
    convergence_ns: Optional[float]
    last_start_ns: float
    all_completed: bool
    events_executed: int

    def start_finish_pairs(self) -> List[Tuple[float, float]]:
        """(start, finish) per flow in start order — Figs. 2/3/8/9 data."""
        done = [f for f in self.flows if f.completed]
        return sorted((f.start_time, f.finish_time) for f in done)

    def finish_spread_ns(self) -> float:
        """Max minus min finish time (small = flows finish together)."""
        finishes = [f.finish_time for f in self.flows if f.completed]
        if not finishes:
            return float("nan")
        return max(finishes) - min(finishes)

    def start_finish_correlation(self) -> float:
        """Pearson correlation of start vs finish time.

        Default HPCC/Swift show a *negative* correlation (later flows finish
        first — the paper's unfairness signature); fair variants push it
        toward zero or positive.
        """
        pairs = self.start_finish_pairs()
        if len(pairs) < 3:
            return float("nan")
        starts, finishes = np.array(pairs).T
        if starts.std() == 0 or np.std(finishes) == 0:
            return 0.0
        return float(np.corrcoef(starts, finishes)[0, 1])


def run_incast(cfg: IncastConfig) -> IncastResult:
    """Run one staggered incast and collect fairness/queue series."""
    red = red_for_rate(cfg.rate_bps) if needs_red(cfg.variant) else None
    topo = build_star(
        cfg.n_senders,
        rate_bps=cfg.rate_bps,
        prop_delay_ns=cfg.prop_delay_ns,
        seed=cfg.seed,
        red=red,
    )
    net = topo.network
    receiver = topo.hosts[-1].node_id
    specs = staggered_incast(
        cfg.n_senders,
        flow_size_bytes=cfg.flow_size_bytes,
        flows_per_batch=cfg.flows_per_batch,
        batch_interval_ns=cfg.batch_interval_ns,
    )
    flows: List[Flow] = []
    for spec in specs:
        src = topo.hosts[spec.sender_index].node_id
        env = make_env(net, src, receiver)
        cc = make_cc(cfg.variant, env, fs_max_cwnd_pkts=cfg.fs_max_cwnd_pkts)
        flow = Flow(
            net.next_flow_id(), src, receiver, spec.size_bytes, spec.start_time_ns
        )
        flow.use_cnp = uses_cnp(cfg.variant)
        net.add_flow(flow, cc)
        flows.append(flow)

    qmon = QueueMonitor(
        net.sim, topo.bottleneck_ports, cfg.sample_interval_ns, aggregate="sum"
    ).start()
    gmon = GoodputMonitor(net.sim, flows, net.nodes, cfg.goodput_interval_ns).start()

    completed = net.run_until_flows_complete(timeout_ns=cfg.timeout_ns)
    qmon.stop()
    gmon.stop()

    qt, qv = qmon.series()
    gt, rates = gmon.rates_bps()
    jt, jv = jain_series(gt, rates, flows)
    last_start = max(f.start_time for f in flows)
    return IncastResult(
        config=cfg,
        flows=flows,
        jain_times_ns=jt,
        jain_values=jv,
        queue_times_ns=qt,
        queue_values_bytes=qv,
        queue=queue_stats(qt, qv),
        convergence_ns=convergence_time_ns(jt, jv, threshold=0.9, after_ns=last_start),
        last_start_ns=last_start,
        all_completed=completed,
        events_executed=net.sim.events_executed,
    )


# ---------------------------------------------------------------------------
# Datacenter
# ---------------------------------------------------------------------------


@dataclass
class DatacenterResult:
    """Per-flow slowdown records from one trace-driven run."""

    config: DatacenterConfig
    records: List[FlowRecord]
    n_offered: int
    n_completed: int
    events_executed: int
    drops: int

    @property
    def completion_fraction(self) -> float:
        return self.n_completed / self.n_offered if self.n_offered else 0.0


def run_datacenter(cfg: DatacenterConfig) -> DatacenterResult:
    """Run one fat-tree trace: Poisson arrivals for ``duration``, then drain."""
    red = red_for_rate(cfg.fattree.host_rate_bps) if needs_red(cfg.variant) else None
    topo = build_fattree(cfg.fattree, seed=cfg.seed, red=red)
    net = topo.network
    dist = get_distribution(cfg.workload)
    if cfg.size_scale != 1.0:
        dist = ScaledDistribution(dist, cfg.size_scale)
    specs = generate_poisson_traffic(
        n_hosts=len(topo.hosts),
        host_rate_bps=cfg.fattree.host_rate_bps,
        load=cfg.load,
        duration_ns=cfg.duration_ns,
        distribution=dist,
        seed=cfg.seed,
    )
    # Environments depend only on (src, dst); cache them.
    env_cache: Dict[Tuple[int, int], CCEnv] = {}
    flows: List[Flow] = []
    for spec in specs:
        src = topo.hosts[spec.src_index].node_id
        dst = topo.hosts[spec.dst_index].node_id
        key = (src, dst)
        env = env_cache.get(key)
        if env is None:
            env = make_env(net, src, dst)
            env_cache[key] = env
        cc = make_cc(cfg.variant, env, fs_max_cwnd_pkts=cfg.fs_max_cwnd_pkts)
        flow = Flow(
            net.next_flow_id(), src, dst, spec.size_bytes, spec.start_time_ns
        )
        flow.use_cnp = uses_cnp(cfg.variant)
        net.add_flow(flow, cc)
        flows.append(flow)

    net.run_until_flows_complete(timeout_ns=cfg.duration_ns + cfg.drain_timeout_ns)
    records = collect_records(net, flows)
    return DatacenterResult(
        config=cfg,
        records=records,
        n_offered=len(flows),
        n_completed=sum(1 for f in flows if f.completed),
        events_executed=net.sim.events_executed,
        drops=net.total_drops(),
    )


# ---------------------------------------------------------------------------
# Process-wide result cache (figures 10/12 and 11/13 share simulations)
# ---------------------------------------------------------------------------

_INCAST_CACHE: Dict[IncastConfig, IncastResult] = {}
_DC_CACHE: Dict[DatacenterConfig, DatacenterResult] = {}


def run_incast_cached(cfg: IncastConfig) -> IncastResult:
    result = _INCAST_CACHE.get(cfg)
    if result is None:
        result = run_incast(cfg)
        _INCAST_CACHE[cfg] = result
    return result


def run_datacenter_cached(cfg: DatacenterConfig) -> DatacenterResult:
    result = _DC_CACHE.get(cfg)
    if result is None:
        result = run_datacenter(cfg)
        _DC_CACHE[cfg] = result
    return result


def clear_caches() -> None:
    """Drop cached results (benchmarks measuring cold runs call this)."""
    _INCAST_CACHE.clear()
    _DC_CACHE.clear()
