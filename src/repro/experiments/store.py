"""Persistent on-disk result store keyed by config content + code version.

Campaign runs (``repro-experiments --all``, sweeps, CI) re-simulate the same
configs over and over; a simulation result is a pure function of its config
dataclass and the simulator code.  This module keys results by exactly those
two inputs:

* :func:`config_key` — a content hash over a *canonical* rendering of the
  config dataclass: fields are sorted by name and fields still at their
  declared default are omitted, so the key survives field reordering and the
  addition of new defaulted fields.  Nested dataclasses (``FaultConfig``,
  ``FatTreeParams``) are walked the same way.
* :func:`code_fingerprint` — a hash over the source text of every ``.py``
  file in the ``repro`` package.  Any simulator change moves results into a
  fresh namespace, so a store can never serve results from old physics.

Layout on disk::

    <root>/<fingerprint>/<ConfigClass>-<config_key>.pkl

Stale fingerprints accumulate as code evolves; :meth:`ResultStore.gc`
removes every namespace but the current one.  All writes are atomic
(tempfile + rename) so a killed campaign never leaves a torn pickle, and
every entry carries a header line with the SHA-256 and length of its pickle
payload.  ``get`` verifies both before unpickling: a corrupt, truncated, or
bit-flipped entry is *self-healing* — it warns, deletes the file, and
reports a miss, so the caller transparently re-simulates instead of blowing
up mid-campaign (or worse, silently deserializing garbage).  Entries from
before the header was introduced (no magic prefix) still load as raw
pickles.

The process-wide *active store* (:func:`set_store` / :func:`get_store`) is
what the runner's ``run_*_cached`` entry points consult between their
in-memory LRU and an actual simulation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import shutil
import tempfile
import warnings
from dataclasses import dataclass, is_dataclass
from pathlib import Path
from typing import Any, List, Optional, Tuple

__all__ = [
    "CorruptEntry",
    "ResultStore",
    "StoreStats",
    "canonical_config_repr",
    "config_key",
    "code_fingerprint",
    "decode_entry",
    "encode_entry",
    "set_store",
    "get_store",
]


# ---------------------------------------------------------------------------
# Canonical config rendering and keys
# ---------------------------------------------------------------------------

_MISSING = dataclasses.MISSING


def _field_default(f: "dataclasses.Field") -> Any:
    if f.default is not _MISSING:
        return f.default
    if f.default_factory is not _MISSING:  # type: ignore[misc]
        return f.default_factory()  # type: ignore[misc]
    return _MISSING


def canonical_config_repr(obj: Any) -> str:
    """A stable text rendering of a config value.

    Dataclasses render as ``ClassName(field=value, ...)`` with fields sorted
    by name and default-valued fields omitted; containers render
    element-wise; floats use ``repr`` (shortest round-trip form, so distinct
    values never collide).  Unsupported types raise rather than fall back to
    ``repr`` — an object whose repr embeds a memory address would silently
    produce a fresh key per process.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        parts: List[str] = []
        for f in sorted(dataclasses.fields(obj), key=lambda f: f.name):
            if not f.compare:
                continue
            value = getattr(obj, f.name)
            default = _field_default(f)
            if default is not _MISSING and value == default:
                continue
            parts.append(f"{f.name}={canonical_config_repr(value)}")
        return f"{type(obj).__name__}({', '.join(parts)})"
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return repr(obj)
    if isinstance(obj, (tuple, list)):
        inner = ", ".join(canonical_config_repr(v) for v in obj)
        return f"({inner})"
    if isinstance(obj, dict):
        inner = ", ".join(
            f"{canonical_config_repr(k)}: {canonical_config_repr(v)}"
            for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        )
        return f"{{{inner}}}"
    raise TypeError(
        f"cannot canonically render {type(obj).__name__!r} for a cache key"
    )


def config_key(cfg: Any) -> str:
    """Content hash of a config (20 hex chars of SHA-256)."""
    text = canonical_config_repr(cfg)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]


# ---------------------------------------------------------------------------
# Code-version fingerprint
# ---------------------------------------------------------------------------

_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of the ``repro`` package's source text (12 hex chars, cached).

    Walks every ``.py`` file under the installed package directory in sorted
    relative-path order and hashes ``(path, contents)`` pairs.  Any edit to
    the simulator — including files a given config never imports — retires
    all stored results, which errs on the side of never serving stale
    physics.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            rel = path.relative_to(package_root).as_posix()
            h.update(rel.encode("utf-8"))
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _CODE_FINGERPRINT = h.hexdigest()[:12]
    return _CODE_FINGERPRINT


# ---------------------------------------------------------------------------
# Entry framing: checksum header + pickle payload
# ---------------------------------------------------------------------------

#: Entry header magic.  The full header line is
#: ``repro-store/2 <sha256-hex> <payload-bytes>\n`` followed by the pickle.
ENTRY_MAGIC = b"repro-store/2 "


def encode_entry(blob: bytes) -> bytes:
    """Frame a pickle payload with its SHA-256 and length."""
    digest = hashlib.sha256(blob).hexdigest().encode("ascii")
    return ENTRY_MAGIC + digest + b" %d\n" % len(blob) + blob


def decode_entry(data: bytes) -> bytes:
    """Return the verified payload of a framed entry.

    Raises :class:`CorruptEntry` on any mismatch; data without the magic
    prefix is passed through untouched (pre-checksum legacy entry — its only
    integrity check is unpickling itself).
    """
    if not data.startswith(ENTRY_MAGIC):
        return data
    newline = data.find(b"\n", len(ENTRY_MAGIC))
    if newline < 0:
        raise CorruptEntry("truncated header")
    try:
        digest_hex, size_text = data[len(ENTRY_MAGIC):newline].split(b" ")
        expected_size = int(size_text)
    except ValueError:
        raise CorruptEntry("malformed header") from None
    payload = data[newline + 1:]
    if len(payload) != expected_size:
        raise CorruptEntry(
            f"payload is {len(payload)} bytes, header says {expected_size}"
        )
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest_hex:
        raise CorruptEntry("checksum mismatch")
    return payload


class CorruptEntry(RuntimeError):
    """A store entry failed its checksum/length verification."""


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


@dataclass
class StoreStats:
    """Counters for one store's lifetime in this process."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    evicted_corrupt: int = 0

    def summary(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} puts={self.puts} "
            f"read={self.bytes_read}B written={self.bytes_written}B"
        )


class ResultStore:
    """Content-addressed pickle store for simulation results.

    ``get``/``put`` key purely on the config object; the caller never names
    files.  Entries live under a per-code-version namespace directory so a
    simulator change can never alias old results (see module docstring).
    """

    def __init__(self, root: os.PathLike, fingerprint: Optional[str] = None):
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = StoreStats()

    # -- paths ------------------------------------------------------------

    @property
    def namespace(self) -> Path:
        return self.root / self.fingerprint

    def path_for(self, cfg: Any) -> Path:
        # The backend rides in the filename as well as the content key:
        # config_key already separates packet from flow/hybrid (the field
        # only renders when non-default), but naming it makes a mixed-
        # backend store auditable by eye and keeps the two from colliding
        # even if the key algorithm ever changes.
        backend = getattr(cfg, "backend", None)
        tag = f"{backend}-" if isinstance(backend, str) else ""
        # Same treatment for the engine core, but only when non-default:
        # reference-engine filenames stay byte-for-byte what they were
        # before the engine field existed.
        engine = getattr(cfg, "engine", None)
        if isinstance(engine, str) and engine != "reference":
            tag += f"{engine}-"
        return self.namespace / f"{type(cfg).__name__}-{tag}{config_key(cfg)}.pkl"

    # -- access -----------------------------------------------------------

    def _evict_corrupt(self, path: Path, reason: str) -> None:
        """Warn, delete, and count a corrupt entry (caller reports a miss)."""
        self.stats.evicted_corrupt += 1
        self.stats.misses += 1
        path.unlink(missing_ok=True)
        warnings.warn(
            f"result store evicted corrupt entry {path.name}: {reason}; "
            "it will be re-simulated",
            RuntimeWarning,
            stacklevel=3,
        )

    def get(self, cfg: Any) -> Optional[Any]:
        """The stored result for ``cfg``, or None (counts a hit or miss).

        An entry that fails its checksum or cannot be unpickled is deleted
        and treated as a miss (with a warning) — a torn write from a killed
        process or on-disk corruption must not poison the campaign forever,
        and must never surface as a mid-campaign crash.
        """
        path = self.path_for(cfg)
        try:
            data = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            blob = decode_entry(data)
        except CorruptEntry as exc:
            self._evict_corrupt(path, str(exc))
            return None
        try:
            result = pickle.loads(blob)
        except Exception as exc:
            self._evict_corrupt(path, f"unpicklable ({type(exc).__name__})")
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(data)
        return result

    def put(self, cfg: Any, result: Any) -> Path:
        """Atomically persist ``result`` (checksummed) under ``cfg``'s key."""
        path = self.path_for(cfg)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = encode_entry(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        )
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        self.stats.bytes_written += len(data)
        return path

    def verify(self) -> Tuple[int, List[Path]]:
        """Checksum-scan the current namespace without evicting anything.

        Returns ``(entries_checked, corrupt_paths)``.  Legacy (headerless)
        entries count as checked; they are verified by unpickling instead.
        ``check chaos`` uses this to prove injected corruption is visible
        before the self-healing re-run, and operators can use it to audit a
        store that survived a crash or a flaky disk.
        """
        corrupt: List[Path] = []
        entries = self.entries()
        for path in entries:
            try:
                data = path.read_bytes()
                if data.startswith(ENTRY_MAGIC):
                    decode_entry(data)
                else:
                    pickle.loads(data)
            except Exception:
                corrupt.append(path)
        return len(entries), corrupt

    def __contains__(self, cfg: Any) -> bool:
        return self.path_for(cfg).exists()

    # -- maintenance ------------------------------------------------------

    def entries(self) -> List[Path]:
        """Entry files in the current namespace, sorted by name."""
        if not self.namespace.is_dir():
            return []
        return sorted(self.namespace.glob("*.pkl"))

    def disk_usage(self) -> Tuple[int, int]:
        """(files, bytes) across *all* namespaces under the root."""
        files = 0
        total = 0
        if self.root.is_dir():
            for path in self.root.rglob("*.pkl"):
                files += 1
                total += path.stat().st_size
        return files, total

    def gc(self) -> Tuple[int, int]:
        """Delete every namespace except the current one.

        Returns ``(files_removed, bytes_freed)``.  Entries for the current
        code version are always kept — GC reclaims space without ever
        forcing a re-simulation of still-valid results.
        """
        removed = 0
        freed = 0
        if not self.root.is_dir():
            return 0, 0
        for child in self.root.iterdir():
            if not child.is_dir() or child.name == self.fingerprint:
                continue
            for path in child.rglob("*"):
                if path.is_file():
                    removed += 1
                    freed += path.stat().st_size
            shutil.rmtree(child)
        return removed, freed

    def clear(self) -> None:
        """Delete the entire store (tests and ``--store-gc --no-store``)."""
        if self.root.is_dir():
            shutil.rmtree(self.root)


# ---------------------------------------------------------------------------
# Process-wide active store
# ---------------------------------------------------------------------------

_ACTIVE_STORE: Optional[ResultStore] = None


def set_store(store: Optional[ResultStore]) -> None:
    """Install (or clear, with None) the store the cached runners consult."""
    global _ACTIVE_STORE
    _ACTIVE_STORE = store


def get_store() -> Optional[ResultStore]:
    return _ACTIVE_STORE
