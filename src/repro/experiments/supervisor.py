"""Fault-tolerant campaign supervision: liveness, retries, journaling.

:func:`run_supervised` runs the same content-keyed campaigns as
:func:`repro.experiments.parallel.run_campaign`, but owns its worker
processes instead of delegating to a ``ProcessPoolExecutor``, which lets
it survive every failure mode a pool cannot:

* **Worker loss** — a worker SIGKILLed (OOM killer, operator, chaos
  harness) mid-task is detected via its process sentinel; the task is
  rescheduled on a fresh worker and counted toward the config's attempt
  budget.  A config that eventually succeeds this way is ``salvaged``.
* **Hangs** — workers heartbeat over their pipe while simulating; a busy
  worker silent past the stall deadline (derived from the
  :class:`~repro.sim.network.RunBudget` when one is set) is SIGKILLed and
  its task rescheduled.  This backstops the in-worker watchdog, which
  cannot fire if the worker is wedged below Python (or never started).
* **Transient errors** — a :class:`RetryPolicy` classifies failures by
  exception type; transient ones are retried with exponential backoff and
  deterministic jitter (derived from the config key, so two supervisors
  racing on the same campaign do not thundering-herd the same instant).
  A config that succeeds after a failed attempt is ``retried``.
* **Poison configs** — deterministic errors (and transient ones past the
  attempt budget) are *quarantined*, not dropped: the outcome carries a
  :class:`QuarantineReport` with the canonical config text, so the run is
  replayable in isolation.  The rest of the sweep proceeds.
* **Crashes of the supervisor itself** — every state transition is
  appended to a :class:`CampaignJournal` (one fsync'd JSON line each), so
  ``--resume`` on the journal of an interrupted campaign re-runs only
  what never finished, deduping completed work against the result store.

Determinism: supervision never touches simulation inputs.  A config's
result is a pure function of the config, so a campaign that limps home
through kills, hangs and retries produces byte-identical results to a
fault-free run — ``repro.check.chaos`` asserts exactly that.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import Pipe, Process, connection
from pathlib import Path
from typing import Any, Callable, Dict, IO, List, Optional, Sequence, Tuple

from ..check import invariants as check_invariants
from ..obs import analytics as obs_analytics
from ..obs import flightrec as obs_flightrec
from ..obs import registry as obs_registry
from ..obs import telemetry as obs_telemetry
from ..obs import tracer as obs_tracer
from ..sim.network import RunBudget
from .config import IncastConfig
from .parallel import (
    AnyConfig,
    CampaignOutcome,
    CampaignStats,
    _announce,
    _analytics_suffix,
    _describe,
    _run_config_timed,
    _worker_init,
)
from .runner import peek_cached, seed_result_caches
from .store import canonical_config_repr

__all__ = [
    "CampaignJournal",
    "JournalState",
    "QuarantineReport",
    "RetryPolicy",
    "SupervisorConfig",
    "load_journal",
    "run_supervised",
]

# Final per-config statuses (CampaignOutcome.statuses values).
STATUS_OK = "ok"
STATUS_RETRIED = "retried"  # succeeded after >= 1 failed attempt
STATUS_SALVAGED = "salvaged"  # succeeded after >= 1 worker kill/loss
STATUS_QUARANTINED = "quarantined"  # written off as poison; replayable report
STATUS_LOST = "lost"  # no result, not poison (worker loss budget / interrupt)

TERMINAL_STATUSES = (STATUS_OK, STATUS_RETRIED, STATUS_SALVAGED, STATUS_QUARANTINED)


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """When and how fast a failed config is re-attempted.

    Classification is by exception type *name* (workers report failures
    across a pipe as text, and the chaos harness's injected error types
    are not importable everywhere).  Anything not listed as transient is
    deterministic: re-running a pure function on the same input yields
    the same exception, so retrying would only burn the attempt budget.
    Worker loss and stall kills are always treated as transient — they
    say nothing about the config.
    """

    max_attempts: int = 3
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    jitter_frac: float = 0.25
    transient_errors: Tuple[str, ...] = (
        "WatchdogExpired",
        "ChaosTransientError",
        "ConnectionError",
        "ConnectionResetError",
        "BrokenPipeError",
        "EOFError",
        "OSError",
        "TimeoutError",
        "MemoryError",
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0 or self.backoff_factor < 1 or not 0 <= self.jitter_frac <= 1:
            raise ValueError("invalid backoff parameters")

    def classify(self, error_type: str) -> str:
        """``"transient"`` (retry) or ``"deterministic"`` (quarantine)."""
        return "transient" if error_type in self.transient_errors else "deterministic"

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before re-attempting ``key`` (``attempt`` is 1-based).

        Jitter is deterministic — hashed from ``key:attempt`` — so retry
        schedules are reproducible run to run, yet distinct configs failing
        together fan out instead of retrying in lockstep.
        """
        if self.backoff_s <= 0:
            return 0.0
        base = self.backoff_s * self.backoff_factor ** max(0, attempt - 1)
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return base * (1.0 + self.jitter_frac * unit)


@dataclass(frozen=True)
class QuarantineReport:
    """Everything needed to replay a poisoned config in isolation."""

    key: str
    desc: str
    error: str  # "ErrorType: message"
    classification: str  # "transient" (budget exhausted) or "deterministic"
    attempts: int
    config_repr: str  # canonical rendering; diffable and replayable

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "desc": self.desc,
            "error": self.error,
            "classification": self.classification,
            "attempts": self.attempts,
            "config_repr": self.config_repr,
        }


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


JOURNAL_VERSION = 1


class CampaignJournal:
    """Append-only, crash-safe record of a campaign's state transitions.

    One JSON object per line; every append is flushed and fsync'd before
    returning, so the journal on disk is never behind the campaign's
    actual state by more than the line being written.  A torn final line
    (the writer died mid-append) is expected and tolerated by
    :func:`load_journal`.
    """

    def __init__(self, path: Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._fh: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")

    def append(self, event: str, _sync: Optional[bool] = None, **fields: Any) -> None:
        """Append one record.  ``_sync=False`` flushes without fsync — used
        for high-rate advisory records (worker heartbeats) that a live
        tailer wants promptly but whose loss in a crash costs nothing.

        Every record carries ``ts`` (wall-clock epoch seconds) for display
        by ``obs top``/``obs stitch``; supervision logic itself never reads
        it back — liveness math stays on ``time.monotonic()``.
        """
        if self._fh is None:
            return
        record = {"event": event, "ts": round(time.time(), 3), **fields}
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        if self._fsync if _sync is None else _sync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


@dataclass
class JournalState:
    """What a journal says happened, replayed in order."""

    path: Path
    version: int = JOURNAL_VERSION
    fingerprint: Optional[str] = None
    statuses: Dict[str, str] = field(default_factory=dict)  # terminal only
    attempts: Dict[str, int] = field(default_factory=dict)
    quarantines: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    interrupted: bool = False
    completed: bool = False
    torn_lines: int = 0

    def terminal(self, key: str) -> Optional[str]:
        """The carried-over status for ``key``, if it need not re-run.

        ``lost`` is deliberately *not* terminal on resume: the loss was
        most likely the crash being resumed from, so the config gets a
        fresh attempt budget.  Quarantine carries over — poison stays
        poison until the code fingerprint changes.
        """
        status = self.statuses.get(key)
        return status if status in TERMINAL_STATUSES else None


def load_journal(path: Path) -> JournalState:
    """Replay a campaign journal into resumable state.

    Unknown events are skipped (forward compatibility); a torn final line
    is counted, not fatal.  Raises ``FileNotFoundError`` for a missing
    journal — resuming from nothing is an operator error worth surfacing.
    """
    path = Path(path)
    state = JournalState(path=path)
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                state.torn_lines += 1
                continue
            raise ValueError(f"{path}: corrupt journal line {i + 1}") from None
        event = record.get("event")
        key = record.get("key")
        if event == "campaign":
            state.version = record.get("version", JOURNAL_VERSION)
            state.fingerprint = record.get("fingerprint")
            state.interrupted = False
            state.completed = False
        elif event == "attempt":
            state.attempts[key] = record.get("attempt", state.attempts.get(key, 0) + 1)
        elif event == "done":
            state.statuses[key] = record.get("status", STATUS_OK)
        elif event == "quarantine":
            state.statuses[key] = STATUS_QUARANTINED
            state.quarantines[key] = {
                k: record.get(k)
                for k in ("desc", "error", "classification", "attempts", "config_repr")
            }
        elif event == "lost":
            state.statuses[key] = STATUS_LOST
        elif event == "interrupted":
            state.interrupted = True
            # Work that was in flight or queued at interrupt time is lost
            # (not terminal: a resume schedules it again).
            for k in list(record.get("in_flight") or ()) + list(
                record.get("pending") or ()
            ):
                state.statuses.setdefault(k, STATUS_LOST)
        elif event == "end":
            state.completed = True
    return state


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


HEARTBEAT_INTERVAL_S = 0.25


def _worker_main(
    conn: connection.Connection,
    budget: Optional[RunBudget],
    analytics_config: Any,
    sanitize: bool,
    chaos: Any,
    heartbeat_interval_s: float,
    trace_capacity: Optional[int] = None,
    flightrec: bool = False,
) -> None:
    """Supervised worker loop: receive configs, heartbeat while running.

    The heartbeat thread starts *after* chaos injection so an injected
    hang looks to the parent exactly like a wedged worker (silence), not
    a healthy slow one.  All pipe sends share a lock — ``Connection`` is
    not thread-safe and the heartbeat thread writes concurrently with
    the result send.
    """
    import threading
    import traceback

    _worker_init(budget, analytics_config, sanitize, flightrec=flightrec)
    if trace_capacity:
        # Per-worker trace shard: the ring drains into each "ok" reply so
        # the parent can persist one Chrome-trace shard per run for
        # `obs stitch`.  Tracing is passive — results stay byte-identical.
        obs_tracer.enable(capacity=trace_capacity)
    send_lock = threading.Lock()

    def send(message: Tuple[Any, ...]) -> bool:
        with send_lock:
            try:
                conn.send(message)
                return True
            except (OSError, ValueError):
                return False  # parent went away; nothing left to report to

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, key, cfg, attempt = message
        if chaos is not None:
            try:
                chaos.inject(key, attempt)
            except BaseException as exc:
                send(("err", key, attempt, type(exc).__name__, str(exc), ""))
                continue
        stop_beating = threading.Event()

        def beat() -> None:
            while not stop_beating.wait(heartbeat_interval_s):
                if not send(("hb", key, os.getpid())):
                    return

        beater = threading.Thread(target=beat, daemon=True)
        beater.start()
        try:
            envelope = _run_config_timed(cfg)
            tr = obs_tracer.TRACER
            shard = tr.drain_chrome() if trace_capacity and tr is not None else None
            reply = ("ok", key, attempt, envelope, shard)
        except BaseException as exc:
            reply = (
                "err",
                key,
                attempt,
                type(exc).__name__,
                str(exc),
                traceback.format_exc(limit=20),
            )
        finally:
            stop_beating.set()
            beater.join()
        if not send(reply):
            break
    try:
        conn.close()
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------


@dataclass
class SupervisorConfig:
    """Knobs for :func:`run_supervised` beyond the plain campaign ones.

    ``stall_timeout_s=None`` derives the deadline: generous multiples of
    the heartbeat interval, widened to clear the per-run wall-clock
    budget (the in-worker watchdog must get first shot at a slow run;
    the supervisor's SIGKILL is the backstop for wedged processes).
    """

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    journal_path: Optional[Path] = None
    resume: Optional[JournalState] = None
    partial_ok: bool = False
    heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S
    stall_timeout_s: Optional[float] = None
    stall_grace_s: float = 2.0
    chaos: Any = None  # ChaosSpec-like: .inject(key, attempt) in the worker
    sleep: Callable[[float], None] = time.sleep  # injectable for tests
    # Per-worker Chrome-trace shards (obs stitch): directory to write one
    # shard file per successful run, and the worker-side ring capacity.
    trace_shard_dir: Optional[Path] = None
    trace_capacity: int = obs_tracer.DEFAULT_CAPACITY

    def effective_stall_timeout(self, budget: Optional[RunBudget]) -> float:
        """Max silence (no heartbeat/message) before a busy worker is killed."""
        if self.stall_timeout_s is not None:
            return self.stall_timeout_s
        deadline = 20.0 * self.heartbeat_interval_s
        if budget is not None and budget.wall_clock_s:
            deadline = max(deadline, 2.0 * budget.wall_clock_s + self.stall_grace_s)
        return deadline

    def runtime_deadline(self, budget: Optional[RunBudget]) -> Optional[float]:
        """Max wall time a single attempt may run, heartbeats or not.

        A heartbeat proves the worker *process* is alive, not that the run
        is progressing — a simulation wedged in a tight loop beats happily
        forever.  The in-worker watchdog (``RunBudget.wall_clock_s``) is
        supposed to abort such runs from inside; this deadline, at twice
        the budget plus grace, is the supervisor's backstop for when the
        watchdog itself cannot fire (worker stuck below Python).  Without
        a wall-clock budget there is no basis for a deadline: ``None``.
        """
        if budget is not None and budget.wall_clock_s:
            return 2.0 * budget.wall_clock_s + self.stall_grace_s
        return None


class CampaignIncomplete(RuntimeError):
    """A supervised campaign finished with quarantined/lost configs and
    ``partial_ok`` was not set.  The outcome (with every partial result)
    rides on the exception."""

    def __init__(self, message: str, outcome: CampaignOutcome) -> None:
        super().__init__(message)
        self.outcome = outcome


@dataclass
class _Task:
    """One unique config's scheduling state."""

    key: str
    cfg: AnyConfig
    attempts: int = 0  # dispatches so far (this campaign + resumed)
    error_retries: int = 0  # failed attempts that came back as exceptions
    worker_losses: int = 0  # attempts that died with the worker
    not_before: float = 0.0  # monotonic eligibility time (backoff)
    last_error: str = ""


class _Worker:
    """Parent-side handle on one worker process."""

    def __init__(self, proc: Process, conn: connection.Connection) -> None:
        self.proc = proc
        self.conn = conn
        self.task: Optional[_Task] = None
        self.last_seen = time.monotonic()
        self.dispatched_at = time.monotonic()

    @property
    def busy(self) -> bool:
        return self.task is not None

    def kill(self) -> None:
        if self.proc.is_alive():
            try:
                os.kill(self.proc.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass
        self.proc.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


def _spawn_worker(budget: Optional[RunBudget], sup: SupervisorConfig) -> _Worker:
    parent_agg = obs_analytics.ANALYTICS
    parent_conn, child_conn = Pipe(duplex=True)
    proc = Process(
        target=_worker_main,
        args=(
            child_conn,
            budget,
            parent_agg.config if parent_agg is not None else None,
            check_invariants.CHECKER is not None,
            sup.chaos,
            sup.heartbeat_interval_s,
            sup.trace_capacity if sup.trace_shard_dir is not None else None,
            obs_flightrec.RECORDER is not None,
        ),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    return _Worker(proc, parent_conn)


def run_supervised(
    configs: Sequence[AnyConfig],
    *,
    jobs: int = 1,
    budget: Optional[RunBudget] = None,
    progress: Optional[Callable[[str], None]] = None,
    sup: Optional[SupervisorConfig] = None,
) -> CampaignOutcome:
    """Run a campaign under full supervision; see the module docstring.

    Returns a :class:`~repro.experiments.parallel.CampaignOutcome` whose
    ``statuses`` has an entry for every unique config.  Raises
    :class:`CampaignIncomplete` (carrying the outcome) if any config
    ended quarantined or lost and ``sup.partial_ok`` is false — after
    the journal and telemetry are fully written, so nothing is lost.
    ``KeyboardInterrupt`` kills the workers, journals the interruption,
    and re-raises.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    sup = sup or SupervisorConfig()
    start = time.perf_counter()
    stats = CampaignStats(requested=len(configs), jobs=jobs)
    unique: Dict[str, AnyConfig] = {}
    for cfg in configs:
        unique.setdefault(cfg.cache_key(), cfg)
    stats.unique = len(unique)

    results: Dict[str, Any] = {}
    statuses: Dict[str, str] = {}
    quarantines: List[QuarantineReport] = []
    failures: List[Tuple[str, str]] = []

    journal: Optional[CampaignJournal] = None
    if sup.journal_path is not None:
        journal = CampaignJournal(sup.journal_path)

    def record(event: str, **fields: Any) -> None:
        if journal is not None:
            journal.append(event, **fields)

    from .store import code_fingerprint

    record(
        "campaign",
        version=JOURNAL_VERSION,
        fingerprint=code_fingerprint(),
        jobs=jobs,
        requested=stats.requested,
        unique=stats.unique,
        resumed_from=str(sup.resume.path) if sup.resume is not None else None,
    )

    resume = sup.resume
    if resume is not None and resume.fingerprint not in (None, code_fingerprint()):
        # The code changed under the journal: cached results are already
        # namespaced away by the store, and quarantines may no longer be
        # poison.  Re-run everything.
        _announce(
            progress,
            f"resume: journal fingerprint {resume.fingerprint} != current "
            f"{code_fingerprint()}; ignoring carried statuses",
        )
        resume = None

    pending: deque[_Task] = deque()
    for key, cfg in unique.items():
        carried = resume.terminal(key) if resume is not None else None
        if carried == STATUS_QUARANTINED:
            info = resume.quarantines.get(key, {})
            report = QuarantineReport(
                key=key,
                desc=info.get("desc") or _describe(cfg),
                error=info.get("error") or "carried over from resumed journal",
                classification=info.get("classification") or "deterministic",
                attempts=info.get("attempts") or resume.attempts.get(key, 0),
                config_repr=info.get("config_repr") or canonical_config_repr(cfg),
            )
            statuses[key] = STATUS_QUARANTINED
            stats.quarantined += 1
            quarantines.append(report)
            failures.append((key, report.error))
            record("quarantine", **report.as_dict())
            continue
        cached = peek_cached(cfg)
        if cached is not None:
            results[key] = cached
            # A resumed config that finished as retried/salvaged keeps that
            # status — the journal is the memory the cache does not have.
            statuses[key] = carried or STATUS_OK
            stats.cached += 1
            record("done", key=key, status=statuses[key], cached=True)
            continue
        task = _Task(key=key, cfg=cfg)
        if resume is not None:
            task.attempts = resume.attempts.get(key, 0)
        pending.append(task)

    stall_timeout = sup.effective_stall_timeout(budget)
    runtime_deadline = sup.runtime_deadline(budget)
    outstanding = len(pending)
    workers: List[_Worker] = []
    done_count = 0
    total_to_run = outstanding

    def finish_lost(task: _Task, reason: str) -> None:
        nonlocal outstanding
        statuses[task.key] = STATUS_LOST
        stats.lost += 1
        failures.append((task.key, reason))
        record("lost", key=task.key, error=reason, attempts=task.attempts)
        outstanding -= 1

    def quarantine(task: _Task, error: str, classification: str) -> None:
        nonlocal outstanding
        report = QuarantineReport(
            key=task.key,
            desc=_describe(task.cfg),
            error=error,
            classification=classification,
            attempts=task.attempts,
            config_repr=canonical_config_repr(task.cfg),
        )
        statuses[task.key] = STATUS_QUARANTINED
        stats.quarantined += 1
        quarantines.append(report)
        failures.append((task.key, error))
        record("quarantine", **report.as_dict())
        outstanding -= 1
        _announce(
            progress,
            f"QUARANTINED {report.desc} after {task.attempts} attempt(s): {error}",
        )

    def reschedule_after_loss(task: _Task, why: str) -> None:
        """Worker died or was killed while running ``task``."""
        task.worker_losses += 1
        task.last_error = why
        if task.attempts >= sup.policy.max_attempts:
            finish_lost(
                task, f"{why} (attempt budget {sup.policy.max_attempts} exhausted)"
            )
            return
        delay = sup.policy.delay_s(task.key, task.attempts)
        task.not_before = time.monotonic() + delay
        pending.append(task)
        record("reschedule", key=task.key, reason=why, attempt=task.attempts)
        _announce(
            progress,
            f"rescheduling {_describe(task.cfg)} after {why} "
            f"(attempt {task.attempts}/{sup.policy.max_attempts})",
        )

    def write_shard(task: _Task, envelope: Any, shard: Any) -> None:
        if shard is None or sup.trace_shard_dir is None:
            return
        shard_dir = Path(sup.trace_shard_dir)
        shard_dir.mkdir(parents=True, exist_ok=True)
        path = shard_dir / f"shard-p{envelope.pid}-{task.key[:12]}-a{task.attempts}.json"
        path.write_text(json.dumps(shard, sort_keys=True))
        record(
            "trace_shard",
            key=task.key,
            pid=envelope.pid,
            path=str(path),
            attempt=task.attempts,
        )

    def handle_success(task: _Task, envelope: Any, shard: Any = None) -> None:
        nonlocal outstanding, done_count
        result = envelope.result
        seed_result_caches(task.cfg, result)
        results[task.key] = result
        stats.executed += 1
        if task.worker_losses:
            status = STATUS_SALVAGED
            stats.salvaged += 1
        elif task.error_retries:
            status = STATUS_RETRIED
            stats.retried += 1
        else:
            status = STATUS_OK
        statuses[task.key] = status
        live = getattr(result, "analytics", None)
        done_extra: Dict[str, Any] = {}
        if isinstance(live, dict):
            slowdown = live.get("slowdown") or {}
            done_extra["analytics"] = {
                "jain": live.get("jain"),
                "convergence_ns": live.get("convergence_ns"),
                "p50_slowdown": slowdown.get("p50_slowdown"),
                "p99_slowdown": slowdown.get("p99_slowdown"),
            }
        record(
            "done",
            key=task.key,
            status=status,
            attempts=task.attempts,
            desc=_describe(task.cfg),
            pid=envelope.pid,
            wall_s=round(envelope.wall_s, 4),
            events=envelope.events,
            **done_extra,
        )
        write_shard(task, envelope, shard)
        outstanding -= 1
        done_count += 1
        agg = obs_analytics.ANALYTICS
        if agg is not None and live is not None:
            agg.record(
                "incast" if isinstance(task.cfg, IncastConfig) else "datacenter",
                _describe(task.cfg),
                live,
            )
        frun = getattr(result, "flightrec", None)
        if frun is not None:
            # Worker's recorder died with the worker; adopt the finalized
            # run section that rode home on the result (analytics pattern).
            rec = obs_flightrec.RECORDER
            if rec is not None:
                rec.adopt_run(frun)
        tel = obs_telemetry.TELEMETRY
        if tel is not None:
            run_status = getattr(result, "status", None)
            tel.record_run(
                "incast" if isinstance(task.cfg, IncastConfig) else "datacenter",
                _describe(task.cfg),
                wall_s=envelope.wall_s,
                events=envelope.events,
                completed=bool(run_status) if run_status is not None else True,
                pid=envelope.pid,
            )
        suffix = "" if status == STATUS_OK else f" [{status}]"
        _announce(
            progress,
            f"[{done_count}/{total_to_run}] {_describe(task.cfg)} done in "
            f"{envelope.wall_s:.2f}s ({envelope.events} events, "
            f"pid {envelope.pid}){suffix}" + _analytics_suffix(live),
        )

    def handle_error(task: _Task, error_type: str, message: str) -> None:
        error = f"{error_type}: {message}"
        task.error_retries += 1
        task.last_error = error
        classification = sup.policy.classify(error_type)
        record(
            "fail",
            key=task.key,
            error=error,
            classification=classification,
            attempt=task.attempts,
        )
        _announce(
            progress,
            f"{_describe(task.cfg)} attempt {task.attempts} FAILED: {error}",
        )
        if classification == "deterministic" or task.attempts >= sup.policy.max_attempts:
            quarantine(task, error, classification)
            return
        delay = sup.policy.delay_s(task.key, task.attempts)
        task.not_before = time.monotonic() + delay
        pending.append(task)

    def handle_worker_down(worker: _Worker, *, killed: bool) -> None:
        """Reap a dead (or just-killed) worker, draining its final sends."""
        task = worker.task
        # The worker may have sent its result and then died: drain first.
        try:
            while worker.conn.poll():
                message = worker.conn.recv()
                if message[0] == "ok" and task is not None and message[1] == task.key:
                    worker.task = None
                    handle_success(
                        task, message[3], message[4] if len(message) > 4 else None
                    )
                    task = None
                elif message[0] == "err" and task is not None and message[1] == task.key:
                    worker.task = None
                    handle_error(task, message[3], message[4])
                    task = None
        except (EOFError, OSError):
            pass
        worker.kill()
        workers.remove(worker)
        if task is not None:
            worker.task = None
            if killed:
                stats.workers_killed += 1
                reschedule_after_loss(
                    task, f"stalled worker pid {worker.proc.pid} killed"
                )
            else:
                stats.workers_lost += 1
                reschedule_after_loss(task, f"worker pid {worker.proc.pid} died")

    def update_campaign_gauges() -> None:
        """Campaign-level gauges for the OpenMetrics exporter (None = off)."""
        reg = obs_registry.STATS
        if reg is None:
            return
        elapsed = time.perf_counter() - start
        rate = done_count / elapsed if elapsed > 0 else 0.0
        reg.gauge("campaign.runs_ok").set(stats.executed)
        reg.gauge("campaign.runs_retried").set(stats.retried)
        reg.gauge("campaign.runs_salvaged").set(stats.salvaged)
        reg.gauge("campaign.runs_quarantined").set(stats.quarantined)
        reg.gauge("campaign.runs_lost").set(stats.lost)
        reg.gauge("campaign.runs_cached").set(stats.cached)
        reg.gauge("campaign.outstanding").set(outstanding)
        reg.gauge("campaign.workers_alive").set(
            sum(1 for w in workers if w.proc.is_alive())
        )
        reg.gauge("campaign.runs_per_s").set(round(rate, 3))
        reg.gauge("campaign.eta_s").set(
            round(outstanding / rate, 3) if rate > 0 else 0.0
        )

    if outstanding:
        _announce(
            progress,
            f"supervised campaign: {stats.unique} unique config(s), "
            f"{stats.cached} cached, {outstanding} to simulate "
            f"(jobs={jobs}, max_attempts={sup.policy.max_attempts})",
        )
    try:
        while outstanding > 0:
            update_campaign_gauges()
            now = time.monotonic()
            # Dispatch every eligible task to an idle (spawning if needed)
            # worker.  Tasks in backoff stay queued.
            eligible = [t for t in pending if t.not_before <= now]
            for task in eligible:
                worker = next((w for w in workers if not w.busy), None)
                if worker is None and len(workers) < jobs:
                    worker = _spawn_worker(budget, sup)
                    workers.append(worker)
                if worker is None:
                    break
                pending.remove(task)
                task.attempts += 1
                worker.task = task
                worker.last_seen = now
                worker.dispatched_at = now
                record(
                    "attempt",
                    key=task.key,
                    attempt=task.attempts,
                    pid=worker.proc.pid,
                    desc=_describe(task.cfg),
                )
                try:
                    worker.conn.send(("run", task.key, task.cfg, task.attempts))
                except (OSError, ValueError):
                    # Worker died before it could take the task.
                    handle_worker_down(worker, killed=False)

            busy = [w for w in workers if w.busy]
            if not busy:
                if pending:
                    # Everything is in backoff; sleep to the earliest deadline.
                    wake = min(t.not_before for t in pending)
                    sup.sleep(max(0.0, wake - time.monotonic()))
                    continue
                break  # outstanding > 0 but nothing queued or running: bug guard

            waitables: List[Any] = [w.conn for w in busy] + [w.proc.sentinel for w in busy]
            timeout = min(
                max(0.05, sup.heartbeat_interval_s),
                max(0.0, min((w.last_seen + stall_timeout for w in busy)) - now),
            )
            ready = connection.wait(waitables, timeout=timeout)

            for worker in list(busy):
                if worker.conn in ready:
                    try:
                        while worker.conn.poll():
                            message = worker.conn.recv()
                            worker.last_seen = time.monotonic()
                            kind = message[0]
                            if kind == "hb":
                                tel = obs_telemetry.TELEMETRY
                                if tel is not None and worker.task is not None:
                                    tel.heartbeat(
                                        f"worker pid {message[2]} alive on "
                                        f"{_describe(worker.task.cfg)}"
                                    )
                                reg = obs_registry.STATS
                                if reg is not None:
                                    reg.counter("campaign.heartbeats").inc()
                                if worker.task is not None:
                                    # Flushed but not fsync'd: advisory
                                    # liveness for `obs top`, cheap to lose.
                                    record(
                                        "hb",
                                        _sync=False,
                                        key=worker.task.key,
                                        pid=message[2],
                                        desc=_describe(worker.task.cfg),
                                    )
                            elif kind == "ok":
                                task, worker.task = worker.task, None
                                if task is not None:
                                    handle_success(
                                        task,
                                        message[3],
                                        message[4] if len(message) > 4 else None,
                                    )
                            elif kind == "err":
                                task, worker.task = worker.task, None
                                if task is not None:
                                    handle_error(task, message[3], message[4])
                    except (EOFError, OSError):
                        handle_worker_down(worker, killed=False)
                        continue
                if worker not in workers:
                    continue  # reaped above
                if worker.proc.sentinel in ready and not worker.proc.is_alive():
                    handle_worker_down(worker, killed=False)
                    continue
                if not worker.busy:
                    continue
                check = time.monotonic()
                silent = check - worker.last_seen > stall_timeout
                overrun = (
                    runtime_deadline is not None
                    and check - worker.dispatched_at > runtime_deadline
                )
                if silent or overrun:
                    assert worker.task is not None
                    why = (
                        f"silent for >{stall_timeout:.1f}s"
                        if silent
                        else f"running past the {runtime_deadline:.1f}s budget deadline"
                    )
                    _announce(
                        progress,
                        f"worker pid {worker.proc.pid} {why} on "
                        f"{_describe(worker.task.cfg)}; killing",
                    )
                    handle_worker_down(worker, killed=True)
    except KeyboardInterrupt:
        in_flight = [w.task.key for w in workers if w.task is not None]
        still_pending = [t.key for t in pending]
        for key in in_flight + still_pending:
            statuses.setdefault(key, STATUS_LOST)
        record(
            "interrupted",
            in_flight=in_flight,
            pending=still_pending,
            completed=len(results),
        )
        for worker in workers:
            worker.kill()
        workers.clear()
        if journal is not None:
            journal.close()
        raise
    finally:
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.kill()
            else:
                try:
                    worker.conn.close()
                except OSError:
                    pass

    stats.wall_s = time.perf_counter() - start
    update_campaign_gauges()
    record("end", statuses=statuses, wall_s=round(stats.wall_s, 3))
    if journal is not None:
        journal.close()

    tel = obs_telemetry.TELEMETRY
    if tel is not None:
        tel.record_campaign(
            requested=stats.requested,
            unique=stats.unique,
            cached=stats.cached,
            executed=stats.executed,
            jobs=stats.jobs,
            wall_s=stats.wall_s,
            failures=len(failures),
        )
        tel.record_supervisor(
            statuses=statuses,
            quarantines=[q.as_dict() for q in quarantines],
            workers_killed=stats.workers_killed,
            workers_lost=stats.workers_lost,
            retried=stats.retried,
            salvaged=stats.salvaged,
            journal=str(journal.path) if journal is not None else None,
        )

    outcome = CampaignOutcome(
        results=results,
        stats=stats,
        failures=failures,
        statuses=statuses,
        quarantines=quarantines,
    )
    incomplete = stats.quarantined + stats.lost
    if incomplete and not sup.partial_ok:
        raise CampaignIncomplete(
            f"{incomplete} of {stats.unique} config(s) did not produce a result "
            f"({stats.quarantined} quarantined, {stats.lost} lost); "
            "pass partial_ok to accept a partial campaign",
            outcome,
        )
    return outcome
