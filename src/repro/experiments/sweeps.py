"""Parameter sweeps: multi-seed confidence, load sweeps, protocol sweeps.

The paper reports single-run figures; a reproduction should quantify run-to-
run variance and sensitivity.  These helpers run a config across seeds or a
parameter across values and aggregate the headline metrics with means and
standard deviations (NumPy on the analysis side, per the HPC guides).

Sweeps are hardened against individual run failures: each run is retried
(``retries`` times, exponential backoff) and, if it still fails, written off
as a structured :class:`repro.experiments.runner.RunFailure` while the other
runs' aggregates are returned.  The returned :class:`SweepOutcome` is a plain
dict of aggregates (existing callers index it unchanged) with the failure
reports on ``.failures``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..metrics.fct import summarize, tail_slowdown_above
from .config import DatacenterConfig, IncastConfig
from .runner import (
    RunFailure,
    run_datacenter_cached,
    run_incast_cached,
    salvage_runs,
)


@dataclass(frozen=True)
class Aggregate:
    """Mean and standard deviation of one scalar metric across runs."""

    mean: float
    std: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Aggregate":
        arr = np.asarray([v for v in values if v == v], dtype=float)  # drop NaN
        if arr.size == 0:
            return cls(float("nan"), float("nan"), 0)
        return cls(float(arr.mean()), float(arr.std()), int(arr.size))

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.mean:.3g} ± {self.std:.2g} (n={self.n})"


class SweepOutcome(Dict[str, Aggregate]):
    """Sweep aggregates plus the failures that were salvaged around.

    A dict subclass so every existing ``sweep["metric"]`` call keeps
    working; ``failures`` lists runs that kept raising after retries and
    ``n_failed``/``n_succeeded`` summarize coverage.
    """

    def __init__(
        self,
        aggregates: Dict[str, Aggregate],
        failures: Sequence[RunFailure] = (),
        n_succeeded: int = 0,
    ):
        super().__init__(aggregates)
        self.failures: List[RunFailure] = list(failures)
        self.n_succeeded = n_succeeded

    @property
    def n_failed(self) -> int:
        return len(self.failures)


# ---------------------------------------------------------------------------
# Incast seed sweeps
# ---------------------------------------------------------------------------


def _prefetch_parallel(configs: Sequence[object], jobs: int) -> None:
    """Warm the result caches for ``configs`` using ``jobs`` processes.

    Best-effort (``salvage=True``): a config that fails here is simply
    re-attempted serially by ``salvage_runs``, which owns retry/reporting.
    """
    if jobs <= 1:
        return
    from .parallel import run_campaign  # local: avoid import cycle at module load

    run_campaign(list(configs), jobs=jobs, salvage=True)


def incast_seed_sweep(
    base: IncastConfig,
    seeds: Sequence[int],
    *,
    retries: int = 0,
    jobs: int = 1,
    run: Callable[[IncastConfig], "object"] = run_incast_cached,
) -> SweepOutcome:
    """Run an incast config across seeds; aggregate the figure metrics.

    Returns aggregates for: convergence time past last start (ns), mean and
    max queue (bytes), finish spread (ns), start-finish correlation.  A seed
    whose run raises is retried ``retries`` times then reported on the
    outcome's ``failures``; the aggregates cover the seeds that succeeded.
    ``jobs > 1`` fans the seed runs across worker processes first (results
    land in the caches; the serial pass below then only aggregates).
    """
    configs = [replace(base, seed=s) for s in seeds]
    if run is run_incast_cached:
        _prefetch_parallel(configs, jobs)
    successes, failures = salvage_runs(configs, run, retries=retries)
    results = [r for _, r in successes]
    conv = [
        (r.convergence_ns - r.last_start_ns)
        if r.convergence_ns is not None
        else float("nan")
        for r in results
    ]
    return SweepOutcome(
        {
            "convergence_ns": Aggregate.of(conv),
            "mean_queue_bytes": Aggregate.of([r.queue.mean_bytes for r in results]),
            "max_queue_bytes": Aggregate.of([r.queue.max_bytes for r in results]),
            "finish_spread_ns": Aggregate.of(
                [r.finish_spread_ns() for r in results]
            ),
            "start_finish_corr": Aggregate.of(
                [r.start_finish_correlation() for r in results]
            ),
        },
        failures=[
            RunFailure(key=f.key.seed, error=f.error, attempts=f.attempts)
            for f in failures
        ],
        n_succeeded=len(results),
    )


def compare_variants_across_seeds(
    make_config: Callable[[str], IncastConfig],
    variants: Sequence[str],
    seeds: Sequence[int],
    *,
    retries: int = 0,
    jobs: int = 1,
) -> Dict[str, SweepOutcome]:
    """Seed-sweep several variants with paired seeds for fair comparison."""
    if jobs > 1:
        _prefetch_parallel(
            [replace(make_config(v), seed=s) for v in variants for s in seeds],
            jobs,
        )
    return {
        v: incast_seed_sweep(make_config(v), seeds, retries=retries)
        for v in variants
    }


# ---------------------------------------------------------------------------
# Datacenter sweeps
# ---------------------------------------------------------------------------


def datacenter_seed_sweep(
    base: DatacenterConfig,
    seeds: Sequence[int],
    *,
    long_flow_bytes: float = 100_000.0,
    tail_percentile: float = 90.0,
    retries: int = 0,
    jobs: int = 1,
    run: Callable[[DatacenterConfig], "object"] = run_datacenter_cached,
) -> SweepOutcome:
    """Run a datacenter config across seeds; aggregate slowdown metrics.

    ``jobs > 1`` fans the seed runs across worker processes first; see
    :func:`incast_seed_sweep`.
    """
    configs = [replace(base, seed=s) for s in seeds]
    if run is run_datacenter_cached:
        _prefetch_parallel(configs, jobs)
    successes, failures = salvage_runs(configs, run, retries=retries)
    results = [r for _, r in successes]
    p50, p99, tail = [], [], []
    for r in results:
        s = summarize(r.records)
        p50.append(s.get("p50_slowdown", float("nan")))
        p99.append(s.get("p99_slowdown", float("nan")))
        t = tail_slowdown_above(r.records, long_flow_bytes, tail_percentile)
        tail.append(t if t is not None else float("nan"))
    return SweepOutcome(
        {
            "p50_slowdown": Aggregate.of(p50),
            "p99_slowdown": Aggregate.of(p99),
            f"long_flow_p{tail_percentile:g}": Aggregate.of(tail),
            "completion_fraction": Aggregate.of(
                [r.completion_fraction for r in results]
            ),
        },
        failures=[
            RunFailure(key=f.key.seed, error=f.error, attempts=f.attempts)
            for f in failures
        ],
        n_succeeded=len(results),
    )


def load_sweep(
    base: DatacenterConfig,
    loads: Sequence[float],
    *,
    long_flow_bytes: float = 100_000.0,
    tail_percentile: float = 90.0,
) -> List[Tuple[float, Dict[str, Aggregate]]]:
    """Sweep offered load; return per-load aggregates (single seed each).

    The paper runs only 50% load; this maps how the fairness win scales with
    pressure — at low load there is little contention to be unfair about,
    at high load convergence speed matters more.
    """
    out = []
    for load in loads:
        cfg = replace(base, load=load)
        agg = datacenter_seed_sweep(
            cfg, [cfg.seed], long_flow_bytes=long_flow_bytes,
            tail_percentile=tail_percentile,
        )
        out.append((load, agg))
    return out
