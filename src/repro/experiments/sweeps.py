"""Parameter sweeps: multi-seed confidence, load sweeps, protocol sweeps.

The paper reports single-run figures; a reproduction should quantify run-to-
run variance and sensitivity.  These helpers run a config across seeds or a
parameter across values and aggregate the headline metrics with means and
standard deviations (NumPy on the analysis side, per the HPC guides).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.fct import summarize, tail_slowdown_above
from .config import DatacenterConfig, IncastConfig
from .runner import (
    DatacenterResult,
    IncastResult,
    run_datacenter_cached,
    run_incast_cached,
)


@dataclass(frozen=True)
class Aggregate:
    """Mean and standard deviation of one scalar metric across runs."""

    mean: float
    std: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Aggregate":
        arr = np.asarray([v for v in values if v == v], dtype=float)  # drop NaN
        if arr.size == 0:
            return cls(float("nan"), float("nan"), 0)
        return cls(float(arr.mean()), float(arr.std()), int(arr.size))

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.mean:.3g} ± {self.std:.2g} (n={self.n})"


# ---------------------------------------------------------------------------
# Incast seed sweeps
# ---------------------------------------------------------------------------


def incast_seed_sweep(
    base: IncastConfig, seeds: Sequence[int]
) -> Dict[str, Aggregate]:
    """Run an incast config across seeds; aggregate the figure metrics.

    Returns aggregates for: convergence time past last start (ns), mean and
    max queue (bytes), finish spread (ns), start-finish correlation.
    """
    results = [run_incast_cached(replace(base, seed=s)) for s in seeds]
    conv = [
        (r.convergence_ns - r.last_start_ns)
        if r.convergence_ns is not None
        else float("nan")
        for r in results
    ]
    return {
        "convergence_ns": Aggregate.of(conv),
        "mean_queue_bytes": Aggregate.of([r.queue.mean_bytes for r in results]),
        "max_queue_bytes": Aggregate.of([r.queue.max_bytes for r in results]),
        "finish_spread_ns": Aggregate.of([r.finish_spread_ns() for r in results]),
        "start_finish_corr": Aggregate.of(
            [r.start_finish_correlation() for r in results]
        ),
    }


def compare_variants_across_seeds(
    make_config: Callable[[str], IncastConfig],
    variants: Sequence[str],
    seeds: Sequence[int],
) -> Dict[str, Dict[str, Aggregate]]:
    """Seed-sweep several variants with paired seeds for fair comparison."""
    return {
        v: incast_seed_sweep(make_config(v), seeds) for v in variants
    }


# ---------------------------------------------------------------------------
# Datacenter sweeps
# ---------------------------------------------------------------------------


def datacenter_seed_sweep(
    base: DatacenterConfig,
    seeds: Sequence[int],
    *,
    long_flow_bytes: float = 100_000.0,
    tail_percentile: float = 90.0,
) -> Dict[str, Aggregate]:
    """Run a datacenter config across seeds; aggregate slowdown metrics."""
    results = [run_datacenter_cached(replace(base, seed=s)) for s in seeds]
    p50, p99, tail = [], [], []
    for r in results:
        s = summarize(r.records)
        p50.append(s.get("p50_slowdown", float("nan")))
        p99.append(s.get("p99_slowdown", float("nan")))
        t = tail_slowdown_above(r.records, long_flow_bytes, tail_percentile)
        tail.append(t if t is not None else float("nan"))
    return {
        "p50_slowdown": Aggregate.of(p50),
        "p99_slowdown": Aggregate.of(p99),
        f"long_flow_p{tail_percentile:g}": Aggregate.of(tail),
        "completion_fraction": Aggregate.of(
            [r.completion_fraction for r in results]
        ),
    }


def load_sweep(
    base: DatacenterConfig,
    loads: Sequence[float],
    *,
    long_flow_bytes: float = 100_000.0,
    tail_percentile: float = 90.0,
) -> List[Tuple[float, Dict[str, Aggregate]]]:
    """Sweep offered load; return per-load aggregates (single seed each).

    The paper runs only 50% load; this maps how the fairness win scales with
    pressure — at low load there is little contention to be unfair about,
    at high load convergence speed matters more.
    """
    out = []
    for load in loads:
        cfg = replace(base, load=load)
        agg = datacenter_seed_sweep(
            cfg, [cfg.seed], long_flow_bytes=long_flow_bytes,
            tail_percentile=tail_percentile,
        )
        out.append((load, agg))
    return out
