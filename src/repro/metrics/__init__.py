"""Analysis metrics: fairness, FCT slowdown, queue depth, throughput."""

from .fairness import (
    active_mask,
    convergence_time_ns,
    jain_index,
    jain_series,
    mean_index_after,
)
from .fct import (
    FlowRecord,
    SlowdownBucket,
    collect_records,
    ideal_fct_ns,
    slowdown_by_size,
    summarize,
    tail_slowdown_above,
)
from .queues import QueueStats, queue_stats, stats_after
from .throughput import (
    aggregate_goodput_bps,
    per_flow_average_rate_bps,
    port_utilization,
)
from .timeseries import (
    ecdf,
    first_crossing,
    moving_average,
    normalize_to_reference,
    resample,
    time_above,
)

__all__ = [
    "FlowRecord",
    "QueueStats",
    "SlowdownBucket",
    "active_mask",
    "aggregate_goodput_bps",
    "collect_records",
    "convergence_time_ns",
    "ecdf",
    "first_crossing",
    "ideal_fct_ns",
    "moving_average",
    "normalize_to_reference",
    "resample",
    "time_above",
    "jain_index",
    "jain_series",
    "mean_index_after",
    "per_flow_average_rate_bps",
    "port_utilization",
    "queue_stats",
    "slowdown_by_size",
    "stats_after",
    "summarize",
    "tail_slowdown_above",
]
