"""Jain fairness index (Figs. 1, 5, 6) and convergence-time summaries.

The Jain index of an allocation ``x`` is ``(sum x)^2 / (n * sum x^2)``: 1 for
a perfectly even allocation, ``1/n`` when one flow holds everything.  The
paper plots the index of the *active* flows' throughputs over time during
incast; a protocol that converges to fairness quickly drives the index to ~1
soon after the last flow joins.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..sim.flow import Flow


def jain_index(rates: np.ndarray) -> float:
    """Jain fairness index of one allocation vector (1.0 for empty/degenerate)."""
    rates = np.asarray(rates, dtype=float)
    rates = rates[rates > 0]
    n = rates.size
    if n == 0:
        return 1.0
    s = rates.sum()
    sq = float(np.dot(rates, rates))
    if sq == 0.0:
        return 1.0
    return float(s * s / (n * sq))


def active_mask(
    flows: Sequence[Flow], times_ns: np.ndarray, slack_ns: float = 0.0
) -> np.ndarray:
    """Boolean matrix ``(len(times), len(flows))``: flow active at time t.

    A flow is active from its start until its finish (or forever if still
    running).  ``slack_ns`` extends activity slightly so that sampling-bin
    edges don't flap membership.
    """
    t = np.asarray(times_ns, dtype=float)[:, None]
    starts = np.array([f.start_time for f in flows], dtype=float)[None, :]
    ends = np.array(
        [f.finish_time if f.finish_time is not None else np.inf for f in flows],
        dtype=float,
    )[None, :]
    return (t >= starts - slack_ns) & (t <= ends + slack_ns)


def jain_series(
    times_ns: np.ndarray,
    rates: np.ndarray,
    flows: Optional[Sequence[Flow]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Jain index over time from a goodput matrix.

    Parameters
    ----------
    times_ns, rates:
        Output of :meth:`repro.sim.monitor.GoodputMonitor.rates_bps` —
        times per interval midpoint and per-flow rates (rows = intervals).
    flows:
        If given, the index at each time considers only flows active then
        (the paper's convention); otherwise all positive rates count.

    Returns ``(times, index)``; intervals with no active flow yield 1.0.
    """
    times_ns = np.asarray(times_ns, dtype=float)
    rates = np.asarray(rates, dtype=float)
    if rates.ndim != 2 or rates.shape[0] != times_ns.shape[0]:
        raise ValueError(
            f"rates must be (len(times), n_flows); got {rates.shape} for "
            f"{times_ns.shape[0]} times"
        )
    if flows is not None:
        mask = active_mask(flows, times_ns)
    else:
        mask = rates > 0
    out = np.empty(times_ns.shape[0])
    for i in range(times_ns.shape[0]):
        out[i] = jain_index(rates[i][mask[i]])
    return times_ns, out


def convergence_time_ns(
    times_ns: np.ndarray,
    index: np.ndarray,
    *,
    threshold: float = 0.95,
    after_ns: float = 0.0,
    sustain_samples: int = 3,
) -> Optional[float]:
    """First time (>= ``after_ns``) the index stays above ``threshold``.

    "Stays" means ``sustain_samples`` consecutive samples at/above the
    threshold; returns None when the series never converges.  ``after_ns``
    is typically the last flow's start time, so the metric measures
    convergence after the final perturbation.
    """
    times_ns = np.asarray(times_ns, dtype=float)
    index = np.asarray(index, dtype=float)
    eligible = times_ns >= after_ns
    good = (index >= threshold) & eligible
    run = 0
    for i, ok in enumerate(good):
        run = run + 1 if ok else 0
        if run >= sustain_samples:
            return float(times_ns[i - sustain_samples + 1])
    return None


def mean_index_after(
    times_ns: np.ndarray, index: np.ndarray, after_ns: float
) -> float:
    """Average Jain index from ``after_ns`` onward (summary statistic)."""
    times_ns = np.asarray(times_ns, dtype=float)
    index = np.asarray(index, dtype=float)
    sel = times_ns >= after_ns
    if not np.any(sel):
        return float("nan")
    return float(np.mean(index[sel]))
