"""Flow-completion-time metrics (Figs. 10-13).

The paper reports **FCT slowdown**: achieved FCT divided by the theoretical
minimum on an unloaded network ("propagation delay + serialization delay").
Our ideal model is the exact store-and-forward pipeline time:

* the first packet pays serialization + propagation at every forward hop;
* the remaining bytes stream behind it, paced by the slowest (bottleneck)
  hop;
* the final ACK pays serialization + propagation on the reverse path
  (completion is measured at the sender, matching the simulator).

Figures 10-13 bucket flows by size — "each data point represents 1% of
flows" — and take a percentile (99.9th for the tail figures, 50th for the
median figures) of the slowdown within each bucket.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..obs.analytics import SLOWDOWN_PERCENTILES, percentile_key
from ..sim.flow import Flow
from ..sim.network import Network
from ..sim.packet import ACK_BYTES, HEADER_BYTES


def ideal_fct_ns(
    network: Network, src: int, dst: int, size_bytes: int, mtu_payload: int = 1000
) -> float:
    """Theoretical minimum FCT for ``size_bytes`` between two hosts."""
    if size_bytes <= 0:
        raise ValueError("size must be positive")
    path = network._shortest_path(src, dst)
    n_pkts = math.ceil(size_bytes / mtu_payload)
    first_payload = min(mtu_payload, size_bytes)
    wire_bytes = size_bytes + n_pkts * HEADER_BYTES
    first_pkt = first_payload + HEADER_BYTES

    total = 0.0
    bottleneck_ser_per_byte = 0.0
    for u, v in zip(path, path[1:]):
        spec = network.nodes[u].port_to[v].spec
        total += spec.serialization_ns(first_pkt) + spec.prop_delay_ns
        per_byte = 8.0 / spec.rate_bps * 1e9
        if per_byte > bottleneck_ser_per_byte:
            bottleneck_ser_per_byte = per_byte
    total += (wire_bytes - first_pkt) * bottleneck_ser_per_byte
    for u, v in zip(path, path[1:]):
        spec = network.nodes[v].port_to[u].spec
        total += spec.serialization_ns(ACK_BYTES) + spec.prop_delay_ns
    return total


@dataclass(frozen=True)
class FlowRecord:
    """One completed flow's size and slowdown (analysis-side record)."""

    size_bytes: int
    fct_ns: float
    ideal_ns: float

    @property
    def slowdown(self) -> float:
        return self.fct_ns / self.ideal_ns


def collect_records(
    network: Network, flows: Sequence[Flow], mtu_payload: int = 1000
) -> List[FlowRecord]:
    """Build slowdown records for every *completed* flow."""
    records = []
    for f in flows:
        if not f.completed:
            continue
        ideal = ideal_fct_ns(network, f.src, f.dst, f.size, mtu_payload)
        records.append(FlowRecord(f.size, f.fct, ideal))
    return records


@dataclass(frozen=True)
class SlowdownBucket:
    """One point of a Fig. 10-13 curve."""

    size_max_bytes: float  # bucket upper edge (x coordinate)
    slowdown: float  # the requested percentile of slowdown in the bucket
    count: int


def slowdown_by_size(
    records: Sequence[FlowRecord],
    *,
    percentile: float = 99.9,
    n_buckets: int = 20,
) -> List[SlowdownBucket]:
    """Percentile-of-slowdown per size bucket (equal flow count per bucket).

    The paper uses 100 buckets of 1% each; scaled runs have fewer flows, so
    ``n_buckets`` is configurable.  Flows are sorted by size and split into
    ``n_buckets`` nearly equal groups; each bucket reports its largest flow
    size and the requested percentile of slowdowns within it.
    """
    if not 0 < percentile <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    if n_buckets < 1:
        raise ValueError("n_buckets must be >= 1")
    recs = sorted(records, key=lambda r: r.size_bytes)
    if not recs:
        return []
    n_buckets = min(n_buckets, len(recs))
    sizes = np.array([r.size_bytes for r in recs], dtype=float)
    slows = np.array([r.slowdown for r in recs], dtype=float)
    edges = np.linspace(0, len(recs), n_buckets + 1).astype(int)
    buckets = []
    for lo, hi in zip(edges, edges[1:]):
        if hi <= lo:
            continue
        buckets.append(
            SlowdownBucket(
                size_max_bytes=float(sizes[hi - 1]),
                slowdown=float(np.percentile(slows[lo:hi], percentile)),
                count=int(hi - lo),
            )
        )
    return buckets


def tail_slowdown_above(
    records: Sequence[FlowRecord],
    size_threshold_bytes: float,
    percentile: float = 99.9,
) -> Optional[float]:
    """Percentile slowdown of flows strictly larger than a threshold.

    The paper's headline: 99.9% slowdown of > 1 MB flows halves with VAI+SF.
    Returns None when no flow qualifies.
    """
    slows = [r.slowdown for r in records if r.size_bytes > size_threshold_bytes]
    if not slows:
        return None
    return float(np.percentile(np.asarray(slows), percentile))


def summarize(records: Sequence[FlowRecord]) -> dict:
    """Overall summary statistics used by reports and tests.

    Percentile keys come from the shared definitions in
    :mod:`repro.obs.analytics` (``SLOWDOWN_PERCENTILES``), so this exact
    NumPy path and the streaming P² path report under identical names —
    the cross-validation tests and the regression gate compare them 1:1.
    """
    if not records:
        return {"count": 0}
    slows = np.array([r.slowdown for r in records])
    out = {
        "count": len(records),
        "mean_slowdown": float(slows.mean()),
    }
    for p in SLOWDOWN_PERCENTILES:
        out[f"{percentile_key(p)}_slowdown"] = float(np.percentile(slows, p))
    out["max_slowdown"] = float(slows.max())
    return out
