"""Queue-depth statistics (Figs. 1b/1d, 5b/5d, 6b/6d).

The paper's queue plots show two properties worth quantifying:

* the **level** a protocol sustains (max / mean / p99 depth), and
* the **oscillation** amplitude — higher additive increase causes "larger
  queue oscillations" (Sec. III-E), which we measure as the standard
  deviation of the depth around its local mean plus the mean absolute
  sample-to-sample change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QueueStats:
    """Summary of one queue-depth time series (bytes)."""

    max_bytes: float
    mean_bytes: float
    p99_bytes: float
    oscillation_bytes: float  # std of the series (amplitude of swings)
    mean_abs_delta_bytes: float  # sample-to-sample movement


def queue_stats(times_ns: np.ndarray, depths: np.ndarray) -> QueueStats:
    """Compute :class:`QueueStats` from a sampled depth series."""
    depths = np.asarray(depths, dtype=float)
    if depths.size == 0:
        return QueueStats(0.0, 0.0, 0.0, 0.0, 0.0)
    deltas = np.abs(np.diff(depths)) if depths.size > 1 else np.zeros(1)
    return QueueStats(
        max_bytes=float(depths.max()),
        mean_bytes=float(depths.mean()),
        p99_bytes=float(np.percentile(depths, 99)),
        oscillation_bytes=float(depths.std()),
        mean_abs_delta_bytes=float(deltas.mean()),
    )


def stats_after(
    times_ns: np.ndarray, depths: np.ndarray, after_ns: float
) -> QueueStats:
    """Queue statistics restricted to ``t >= after_ns`` (steady state)."""
    times_ns = np.asarray(times_ns, dtype=float)
    depths = np.asarray(depths, dtype=float)
    sel = times_ns >= after_ns
    return queue_stats(times_ns[sel], depths[sel])
