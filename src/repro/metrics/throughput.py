"""Throughput and utilization accounting."""

from __future__ import annotations

from typing import Sequence


from ..sim.flow import Flow
from ..sim.port import Port
from ..units import SEC


def port_utilization(port: Port, duration_ns: float) -> float:
    """Fraction of a port's capacity used over a window ending now.

    Uses the cumulative tx counter, so callers should
    :meth:`Port.reset_counters` / snapshot ``tx_bytes`` at window start
    (the experiment runner snapshots).
    """
    if duration_ns <= 0:
        raise ValueError("duration must be positive")
    capacity_bytes = port.spec.rate_bps / 8.0 * duration_ns / SEC
    return port.tx_bytes / capacity_bytes if capacity_bytes > 0 else 0.0


def aggregate_goodput_bps(flows: Sequence[Flow], duration_ns: float) -> float:
    """Total delivered payload of completed flows over a duration, as bps."""
    if duration_ns <= 0:
        raise ValueError("duration must be positive")
    total_bytes = sum(f.size for f in flows if f.completed)
    return total_bytes * 8.0 / duration_ns * SEC


def per_flow_average_rate_bps(flow: Flow) -> float:
    """A completed flow's average goodput (size over FCT)."""
    if not flow.completed or flow.fct is None or flow.fct <= 0:
        raise ValueError(f"flow {flow.flow_id} has not completed")
    return flow.size * 8.0 / flow.fct * SEC
