"""Time-series utilities shared by the analysis paths.

Small, NumPy-vectorized helpers for working with the (time, value) series
the monitors produce: smoothing, resampling onto uniform grids, empirical
CDFs, and threshold-crossing searches.  They exist so that experiment code
and user notebooks do not re-implement them with subtle off-by-one
differences.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered-as-possible moving average with edge shrinkage.

    The first/last ``window//2`` points average over the available samples
    only, so the output has the same length as the input and no phantom
    zeros at the edges.
    """
    values = np.asarray(values, dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or values.size == 0:
        return values.copy()
    kernel = np.ones(min(window, values.size))
    sums = np.convolve(values, kernel, mode="same")
    counts = np.convolve(np.ones_like(values), kernel, mode="same")
    return sums / counts


def resample(
    times: np.ndarray,
    values: np.ndarray,
    grid: np.ndarray,
) -> np.ndarray:
    """Sample a step series onto a new time grid (previous-value hold).

    Grid points before the first sample take the first value.  This matches
    how queue/goodput monitors represent state: the value holds until the
    next sample.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    grid = np.asarray(grid, dtype=float)
    if times.size == 0:
        raise ValueError("cannot resample an empty series")
    if times.shape != values.shape:
        raise ValueError("times and values must have the same shape")
    idx = np.searchsorted(times, grid, side="right") - 1
    idx = np.clip(idx, 0, times.size - 1)
    return values[idx]


def ecdf(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns ``(sorted values, P(X <= x))``."""
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0:
        return values, values
    probs = np.arange(1, values.size + 1) / values.size
    return values, probs


def time_above(
    times: np.ndarray, values: np.ndarray, threshold: float
) -> float:
    """Total time (same units as ``times``) the step series spends above a
    threshold.  The last sample's value is assumed to hold for one median
    sampling interval."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0:
        return 0.0
    if times.size == 1:
        return 0.0
    intervals = np.diff(times)
    above = values[:-1] > threshold
    total = float(intervals[above].sum())
    if values[-1] > threshold:
        total += float(np.median(intervals))
    return total


def first_crossing(
    times: np.ndarray,
    values: np.ndarray,
    threshold: float,
    *,
    direction: str = "up",
) -> Optional[float]:
    """Time of the first crossing of ``threshold`` (None if never).

    ``direction='up'`` finds the first sample at/above the threshold whose
    predecessor was below it (or the first sample if it already qualifies);
    ``'down'`` is the mirror image.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if direction not in ("up", "down"):
        raise ValueError(f"direction must be 'up' or 'down', got {direction!r}")
    if times.size == 0:
        return None
    if direction == "up":
        qualifies = values >= threshold
    else:
        qualifies = values <= threshold
    hits = np.flatnonzero(qualifies)
    return float(times[hits[0]]) if hits.size else None


def normalize_to_reference(
    series: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Element-wise ratio series/reference with safe zero handling.

    Used for 'relative to default' plots; positions where the reference is
    zero yield NaN rather than raising.
    """
    series = np.asarray(series, dtype=float)
    reference = np.asarray(reference, dtype=float)
    out = np.full_like(series, np.nan)
    np.divide(series, reference, out=out, where=reference != 0)
    return out
