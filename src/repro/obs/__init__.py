"""repro.obs — the unified observability layer.

Three cooperating facilities, each consulted through one module-level
``None``-able global so that disabled instrumentation costs a single
attribute read on hot paths (the ``Port.fault_hook`` idiom):

* :mod:`repro.obs.registry` — named counters/gauges/histograms registered
  by the engine, port, host, PFC, fault, and congestion-control layers;
* :mod:`repro.obs.tracer` — typed spans/instants in a bounded ring buffer,
  exportable as Chrome ``trace_event`` JSON (Perfetto) or CSV;
* :mod:`repro.obs.telemetry` — run/campaign manifests (wall time, event
  counts, phase timings, store hit rates, heartbeats) validated against a
  checked-in JSON schema, rendered by :mod:`repro.obs.report`.

Everything here is **passive**: enabling any of it never schedules events,
draws random numbers, or perturbs simulation state, so instrumented runs
are byte-identical to bare ones (``tests/sim/test_obs_disabled.py``).
"""

from . import registry, telemetry, tracer
from .registry import Counter, Gauge, Histogram, Registry
from .telemetry import TelemetryCollector, build_manifest, validate_manifest
from .tracer import EventTracer

__all__ = [
    "registry",
    "tracer",
    "telemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "EventTracer",
    "TelemetryCollector",
    "build_manifest",
    "validate_manifest",
]


def enable_all(*, trace_capacity: int = tracer.DEFAULT_CAPACITY) -> None:
    """Turn on registry, tracer, and telemetry together (CLI convenience)."""
    registry.enable()
    tracer.enable(capacity=trace_capacity)
    telemetry.enable()


def disable_all() -> None:
    registry.disable()
    tracer.disable()
    telemetry.disable()
