"""repro.obs — the unified observability layer.

Five cooperating facilities, each consulted through one module-level
``None``-able global so that disabled instrumentation costs a single
attribute read on hot paths (the ``Port.fault_hook`` idiom):

* :mod:`repro.obs.registry` — named counters/gauges/histograms registered
  by the engine, port, host, PFC, fault, and congestion-control layers
  (histograms carry P² streaming percentiles);
* :mod:`repro.obs.tracer` — typed spans/instants in a bounded ring buffer,
  exportable as Chrome ``trace_event`` JSON (Perfetto) or CSV;
* :mod:`repro.obs.telemetry` — run/campaign manifests (wall time, event
  counts, phase timings, store hit rates, heartbeats) validated against a
  checked-in JSON schema, rendered by :mod:`repro.obs.report`;
* :mod:`repro.obs.analytics` — **live** convergence/tail-latency
  estimates: O(1)-memory streaming quantiles, per-flow rate EWMAs, an
  online Jain-index convergence detector, and FCT-slowdown percentiles
  updated as flows complete;
* :mod:`repro.obs.regress` — the ``obs diff`` regression gate comparing
  manifests/bench results against checked-in baselines;
* :mod:`repro.obs.profiler` — opt-in hot-path phase profiler attributing
  simulator wall time to named phases (event loop, port serialize, CC
  decision, PFC, fluid relax) with collapsed-stack flamegraph export;
* :mod:`repro.obs.exporter` — OpenMetrics/Prometheus text exposition of
  the registry plus campaign gauges (file snapshot or stdlib HTTP
  endpoint);
* :mod:`repro.obs.live` — the ``obs top`` live campaign dashboard,
  tailing a supervised campaign's journal read-only from any process;
* :mod:`repro.obs.stitch` — ``obs stitch``, merging per-worker trace
  shards and the campaign journal into one Perfetto timeline;
* :mod:`repro.obs.flightrec` — the flow flight recorder: exact per-flow
  FCT decomposition (queueing / serialization / propagation / PFC pause /
  retransmission recovery / CC throttle), per-link utilization and
  queue-depth series for the packet backend, and the convergence timeline
  behind ``obs why`` / ``obs flows``.

The registry, tracer, and telemetry layers are **passive**: enabling them
never schedules events, draws random numbers, or perturbs simulation
state, so instrumented runs are byte-identical to bare ones
(``tests/sim/test_obs_disabled.py``).  Analytics is the one *active*
member — its periodic sampler schedules its own wakeup events (recording
itself stays read-only, so flow times and series are still byte-identical;
only ``events_executed`` grows) — which is why :func:`enable_all` leaves
it off and it must be enabled explicitly.
"""

from . import (
    analytics,
    exporter,
    flightrec,
    live,
    profiler,
    registry,
    regress,
    stitch,
    telemetry,
    tracer,
)
from .profiler import PhaseProfiler
from .registry import Counter, Gauge, Histogram, Registry
from .telemetry import TelemetryCollector, build_manifest, validate_manifest
from .tracer import EventTracer

__all__ = [
    "analytics",
    "exporter",
    "flightrec",
    "live",
    "profiler",
    "registry",
    "regress",
    "stitch",
    "tracer",
    "telemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseProfiler",
    "Registry",
    "EventTracer",
    "TelemetryCollector",
    "build_manifest",
    "validate_manifest",
]


def enable_all(*, trace_capacity: int = tracer.DEFAULT_CAPACITY) -> None:
    """Turn on registry, tracer, and telemetry together (CLI convenience).

    Deliberately does *not* enable :mod:`repro.obs.analytics` — the live
    sampler schedules events, so it stays a separate, explicit switch
    (``repro-experiments --analytics`` / ``analytics.enable()``).  The
    flight recorder is passive (byte-identical output, events included)
    but retains per-flow decomposition payloads with a per-run lifecycle,
    so it too stays an explicit switch (``--flightrec`` /
    ``flightrec.enable()``).
    """
    registry.enable()
    tracer.enable(capacity=trace_capacity)
    telemetry.enable()


def disable_all() -> None:
    registry.disable()
    tracer.disable()
    telemetry.disable()
