"""Live convergence / tail-latency analytics: O(1)-memory streaming estimators.

The paper's headline numbers — *time to fairness convergence* (Figs. 1, 5, 6)
and *p99/p99.9 FCT slowdown* (Figs. 10-13) — are computed post-hoc by
:mod:`repro.metrics` over full recorded traces.  During a long run or a
campaign, the operator is blind.  This module produces the same quantities
*while the simulation runs*, with constant memory per flow and no stored
series, in the spirit of Zhao et al.'s scalable tail-latency estimation
(PAPERS.md): cheap streaming estimates now, exact numbers later.

Building blocks (pure Python, importable from anywhere — this module
deliberately has **no** repro imports, so the registry can use
:class:`P2Quantile` and the simulator layers never risk an import cycle):

* :class:`P2Quantile` — the Jain & Chlamtac P² algorithm: one quantile,
  five markers, O(1) update.  Exact (matching ``numpy.percentile``'s
  linear interpolation) until the 5th observation, approximate after.
* :class:`FlowRateEstimator` — time-windowed EWMA over a sampled
  delivered-bytes counter; the streaming stand-in for
  :meth:`~repro.sim.monitor.GoodputMonitor.rates_bps` interval rates.
* :func:`jain_of` — Jain fairness index of an iterable of rates
  (the streaming twin of :func:`repro.metrics.fairness.jain_index`).
* :class:`ConvergenceDetector` — online dwell detector mirroring
  :func:`repro.metrics.fairness.convergence_time_ns` semantics: stamps the
  first sample of the first run of ``sustain_samples`` consecutive
  at/above-threshold samples after ``after_ns``.
* :class:`StreamingSlowdown` — P² percentiles over FCT slowdowns, updated
  as flows complete.
* :class:`LiveAnalyzer` — composes all of the above over one run's flow
  set; the runner drives it with a :class:`repro.sim.monitor.PeriodicSampler`
  at the monitor cadence.

Error bounds (validated by ``tests/obs/test_analytics.py`` and documented
in DESIGN.md §10): P² mid-quantiles are within ~2% of exact on smooth
distributions after a few hundred samples; extreme tails (p99.9) need
~10x more samples than ``1/(1-q)`` to stabilise, and until then lean on
the max marker (conservative, biased toward the exact value from below on
heavy tails).  The convergence stamp is quantised to the sampling interval
and smoothed by the rate EWMA, so it can differ from the post-hoc value by
a few sampling intervals.

Unlike everything else in :mod:`repro.obs`, the analyzer's *driver* is
active — sampling schedules simulator events.  Recording remains passive
(no RNG, no simulation-state writes), so flow times, series, and
convergence points are byte-identical with analytics on or off; only
``events_executed`` grows by the sampler's own wakeups
(``tests/sim/test_obs_disabled.py`` locks both halves in).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

#: Percentiles the analytics layer reports for FCT slowdown — the paper's
#: median and tail figures (50/99/99.9).  Keys via :func:`percentile_key`.
SLOWDOWN_PERCENTILES = (50.0, 99.0, 99.9)


def percentile_key(p: float) -> str:
    """Canonical JSON key for a percentile: 50 -> 'p50', 99.9 -> 'p999'."""
    text = f"{p:g}".replace(".", "")
    return f"p{text}"


class P2Quantile:
    """One streaming quantile via the P² algorithm (Jain & Chlamtac, 1985).

    Maintains five markers whose heights approximate the quantile without
    storing observations.  Until five observations exist the estimate is
    *exact*: the buffered values are interpolated the same way
    ``numpy.percentile(..., method='linear')`` interpolates.
    """

    __slots__ = ("p", "count", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._q: List[float] = []  # marker heights (or the first <5 samples)
        self._n: Optional[List[float]] = None  # marker positions, 1-based
        self._np: Optional[List[float]] = None  # desired positions
        self._dn: Optional[List[float]] = None  # desired-position increments

    def observe(self, x: float) -> None:
        self.count += 1
        q = self._q
        if self._n is None:
            q.append(x)
            if len(q) == 5:
                q.sort()
                p = self.p
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._np = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
                self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
            return
        n = self._n
        # Locate the cell k with q[k] <= x < q[k+1], clamping the extremes.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        np_ = self._np
        dn = self._dn
        for i in range(5):
            np_[i] += dn[i]
        # Nudge the three middle markers toward their desired positions.
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if d >= 0.0 else -1.0
                qp = self._parabolic(i, d)
                if not q[i - 1] < qp < q[i + 1]:
                    qp = self._linear(i, d)
                q[i] = qp
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate (NaN with no observations).

        Rather than returning the raw middle marker (whose desired position
        only reaches rank ``p*(n-1)`` asymptotically), the query
        interpolates the five (position, height) markers at the exact
        desired rank.  For large counts this converges to the classic
        ``q[2]``; for extreme quantiles at small counts (p99.9 of tens of
        samples) the rank lands between the two top markers and the
        estimate tracks ``numpy.percentile``'s near-max answer instead of
        the badly premature median marker.
        """
        if self.count == 0:
            return float("nan")
        if self._n is None:
            # Exact small-sample path: numpy's 'linear' interpolation.
            vals = sorted(self._q)
            rank = self.p * (len(vals) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(vals) - 1)
            frac = rank - lo
            return vals[lo] * (1.0 - frac) + vals[hi] * frac
        q, n = self._q, self._n
        r = 1.0 + self.p * (self.count - 1)  # desired rank, 1-based
        if r <= n[0]:
            return q[0]
        for i in range(4):
            if r <= n[i + 1]:
                span = n[i + 1] - n[i]
                if span <= 0.0:
                    return q[i + 1]
                frac = (r - n[i]) / span
                return q[i] + frac * (q[i + 1] - q[i])
        return q[4]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<P2Quantile p={self.p} n={self.count} est={self.value():.4g}>"


class FlowRateEstimator:
    """Windowed EWMA of one flow's goodput from a sampled byte counter.

    ``update(t_ns, delivered_bytes)`` folds the instantaneous rate over the
    last sampling interval into an exponential average with time constant
    ``tau_ns`` — so irregular sampling intervals weight correctly and a
    stalled flow's rate decays instead of freezing.
    """

    __slots__ = ("tau_ns", "rate_bps", "_last_t", "_last_bytes")

    def __init__(self, tau_ns: float):
        if tau_ns <= 0:
            raise ValueError("tau_ns must be positive")
        self.tau_ns = tau_ns
        self.rate_bps = 0.0
        self._last_t: Optional[float] = None
        self._last_bytes = 0

    def update(self, t_ns: float, delivered_bytes: int) -> float:
        last_t = self._last_t
        if last_t is None:
            self._last_t = t_ns
            self._last_bytes = delivered_bytes
            return self.rate_bps
        dt = t_ns - last_t
        if dt <= 0.0:
            return self.rate_bps
        delta = delivered_bytes - self._last_bytes
        inst_bps = (delta * 8.0 / dt) * 1e9 if delta > 0 else 0.0
        alpha = 1.0 - math.exp(-dt / self.tau_ns)
        self.rate_bps += alpha * (inst_bps - self.rate_bps)
        self._last_t = t_ns
        self._last_bytes = delivered_bytes
        return self.rate_bps


def jain_of(rates: Iterable[float]) -> float:
    """Jain index of an iterable of rates (1.0 for empty/degenerate input).

    Streaming twin of :func:`repro.metrics.fairness.jain_index`: only
    positive rates count, ``(sum r)^2 / (n * sum r^2)``.
    """
    s = 0.0
    sq = 0.0
    n = 0
    for r in rates:
        if r > 0.0:
            s += r
            sq += r * r
            n += 1
    if n == 0 or sq == 0.0:
        return 1.0
    return s * s / (n * sq)


class ConvergenceDetector:
    """Online dwell detector for the fairness index.

    Mirrors :func:`repro.metrics.fairness.convergence_time_ns`: the stamp is
    the time of the *first* sample of the first run of ``sustain_samples``
    consecutive samples at/above ``threshold`` with ``t >= after_ns``.
    """

    __slots__ = ("threshold", "after_ns", "sustain_samples", "convergence_ns",
                 "_run", "_run_start")

    def __init__(
        self,
        *,
        threshold: float = 0.9,
        after_ns: float = 0.0,
        sustain_samples: int = 3,
    ):
        if sustain_samples < 1:
            raise ValueError("sustain_samples must be >= 1")
        self.threshold = threshold
        self.after_ns = after_ns
        self.sustain_samples = sustain_samples
        self.convergence_ns: Optional[float] = None
        self._run = 0
        self._run_start = 0.0

    def observe(self, t_ns: float, index: float) -> Optional[float]:
        """Feed one (time, index) sample; returns the stamp once known."""
        if self.convergence_ns is not None:
            return self.convergence_ns
        if index >= self.threshold and t_ns >= self.after_ns:
            if self._run == 0:
                self._run_start = t_ns
            self._run += 1
            if self._run >= self.sustain_samples:
                self.convergence_ns = self._run_start
        else:
            self._run = 0
        return self.convergence_ns


class StreamingSlowdown:
    """P² percentiles over FCT slowdowns, updated as flows complete."""

    __slots__ = ("count", "max", "_estimators")

    def __init__(self, percentiles: Sequence[float] = SLOWDOWN_PERCENTILES):
        self.count = 0
        self.max = 0.0
        self._estimators = {p: P2Quantile(p / 100.0) for p in percentiles}

    def observe(self, slowdown: float) -> None:
        self.count += 1
        if slowdown > self.max:
            self.max = slowdown
        for est in self._estimators.values():
            est.observe(slowdown)

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"count": self.count}
        for p, est in self._estimators.items():
            out[f"{percentile_key(p)}_slowdown"] = (
                est.value() if self.count else None
            )
        out["max_slowdown"] = self.max if self.count else None
        return out


class LiveAnalyzer:
    """Streaming fairness + tail-latency view of one run's flow set.

    Drive :meth:`sample` at a fixed cadence (the runner uses a
    :class:`repro.sim.monitor.PeriodicSampler` at the goodput-monitor
    interval) and call :meth:`finalize` once the run stops.  All inputs are
    callables so this module needs no simulator imports:

    ``now_fn``
        current virtual time in ns (``sim.now``);
    ``delivered_fn``
        flow -> delivered bytes at the destination (the goodput monitor's
        receiver lookup);
    ``ideal_ns_fn``
        flow -> theoretical minimum FCT, for slowdown on completion
        (``None`` disables slowdown tracking).
    """

    def __init__(
        self,
        flows: Sequence[Any],
        *,
        now_fn: Callable[[], float],
        delivered_fn: Callable[[Any], int],
        ideal_ns_fn: Optional[Callable[[Any], float]] = None,
        threshold: float = 0.9,
        sustain_samples: int = 3,
        interval_ns: float,
        rate_tau_intervals: float = 2.0,
        heartbeat: Optional[Callable[[str], None]] = None,
        heartbeat_every: int = 0,
    ):
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self.flows = list(flows)
        self.now_fn = now_fn
        self.delivered_fn = delivered_fn
        self.ideal_ns_fn = ideal_ns_fn
        self.interval_ns = interval_ns
        self.samples = 0
        self.jain = 1.0
        self.active_flows = 0
        self.last_start_ns = max(
            (f.start_time for f in self.flows), default=0.0
        )
        self.detector = ConvergenceDetector(
            threshold=threshold,
            after_ns=self.last_start_ns,
            sustain_samples=sustain_samples,
        )
        self.slowdown = StreamingSlowdown() if ideal_ns_fn is not None else None
        self._rates: Dict[int, FlowRateEstimator] = {}
        self._tau_ns = rate_tau_intervals * interval_ns
        self._completed: set = set()
        self._heartbeat = heartbeat
        self._heartbeat_every = heartbeat_every

    # -- sampling ----------------------------------------------------------

    def sample(self) -> None:
        """One analytics tick: update rates, fairness, and completions."""
        t = self.now_fn()
        rates: List[float] = []
        active = 0
        for f in self.flows:
            fid = f.flow_id
            done = f.finish_time is not None
            if done and fid in self._completed:
                continue
            if done:
                self._completed.add(fid)
                self._observe_completion(f)
            if f.start_time > t:
                continue
            est = self._rates.get(fid)
            if est is None:
                est = self._rates[fid] = FlowRateEstimator(self._tau_ns)
            rate = est.update(t, self.delivered_fn(f))
            # Same activity convention as metrics.fairness.active_mask:
            # a flow counts from its start through its finish time.
            if not done or f.finish_time >= t:
                active += 1
                rates.append(rate)
        self.samples += 1
        self.active_flows = active
        self.jain = jain_of(rates)
        self.detector.observe(t, self.jain)
        if (
            self._heartbeat is not None
            and self._heartbeat_every > 0
            and self.samples % self._heartbeat_every == 0
        ):
            self._heartbeat(self.describe_live())

    def _observe_completion(self, flow: Any) -> None:
        if self.slowdown is not None:
            ideal = self.ideal_ns_fn(flow)
            if ideal > 0:
                self.slowdown.observe(flow.fct / ideal)

    def finalize(self) -> Dict[str, Any]:
        """Sweep completions the sampler has not seen yet; return the summary.

        The run loop stops the moment the last flow completes, which is
        usually *between* sampler ticks — without this sweep the streaming
        slowdown percentiles would silently miss the final flows.
        """
        for f in self.flows:
            if f.finish_time is not None and f.flow_id not in self._completed:
                self._completed.add(f.flow_id)
                self._observe_completion(f)
        return self.summary()

    # -- reporting ---------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "samples": self.samples,
            "flows": len(self.flows),
            "flows_completed": len(self._completed),
            "jain": self.jain,
            "active_flows": self.active_flows,
            "convergence_ns": self.detector.convergence_ns,
        }
        if self.slowdown is not None:
            out["slowdown"] = self.slowdown.summary()
        return out

    def describe_live(self) -> str:
        """One heartbeat line: where the run is on the paper's two axes."""
        t_ms = self.now_fn() / 1e6
        conv = self.detector.convergence_ns
        conv_txt = f"{conv / 1e6:.3f}ms" if conv is not None else "-"
        parts = [
            f"analytics t={t_ms:.3f}ms",
            f"jain={self.jain:.3f}",
            f"active={self.active_flows}",
            f"conv={conv_txt}",
        ]
        sd = self.slowdown
        if sd is not None and sd.count:
            s = sd.summary()
            parts.append(
                f"slowdown p50={s['p50_slowdown']:.2f} "
                f"p999={s['p999_slowdown']:.2f} (n={sd.count})"
            )
        return " ".join(parts)


# ---------------------------------------------------------------------------
# Process-wide switch + per-run summary aggregation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnalyticsConfig:
    """Knobs for the live analyzer the runner attaches to each run.

    ``interval_ns=None`` reuses the run's own monitor cadence (the incast
    goodput interval; datacenter runs fall back to ``fallback_interval_ns``).
    ``heartbeat_every`` emits a live heartbeat line every N samples through
    the telemetry collector (0 = only the end-of-run line).
    """

    interval_ns: Optional[float] = None
    fallback_interval_ns: float = 10_000.0  # 10 us
    threshold: float = 0.9
    sustain_samples: int = 3
    rate_tau_intervals: float = 2.0
    heartbeat_every: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "interval_ns": self.interval_ns,
            "fallback_interval_ns": self.fallback_interval_ns,
            "threshold": self.threshold,
            "sustain_samples": self.sustain_samples,
            "rate_tau_intervals": self.rate_tau_intervals,
            "heartbeat_every": self.heartbeat_every,
        }


#: Current version of the manifest's ``analytics`` section (independent of
#: the enclosing telemetry schema version so the two can evolve apart).
ANALYTICS_SECTION_VERSION = 1


class AnalyticsAggregator:
    """Collects per-run analyzer summaries for the telemetry manifest.

    The runner records one entry per simulated run; campaign workers run in
    other processes, so the parent re-records from the summaries riding on
    the returned result objects (see :mod:`repro.experiments.parallel`).
    """

    def __init__(self, config: Optional[AnalyticsConfig] = None):
        self.config = config if config is not None else AnalyticsConfig()
        self.runs: List[Dict[str, Any]] = []

    def record(self, kind: str, desc: str, summary: Dict[str, Any]) -> None:
        self.runs.append({"kind": kind, "desc": desc, **summary})

    def section(self) -> Dict[str, Any]:
        """The manifest's ``analytics`` section."""
        return {
            "section_version": ANALYTICS_SECTION_VERSION,
            "config": self.config.to_dict(),
            "runs": list(self.runs),
        }


#: The process-wide aggregator; ``None`` (the default) disables live
#: analytics entirely — the runner attaches no sampler and simulations are
#: byte-identical to bare runs, including event counts.
ANALYTICS: Optional[AnalyticsAggregator] = None


def enable(config: Optional[AnalyticsConfig] = None) -> AnalyticsAggregator:
    """Install (and return) the process-wide analytics aggregator."""
    global ANALYTICS
    ANALYTICS = AnalyticsAggregator(config)
    return ANALYTICS


def disable() -> None:
    global ANALYTICS
    ANALYTICS = None


def get() -> Optional[AnalyticsAggregator]:
    return ANALYTICS


def enabled() -> bool:
    return ANALYTICS is not None


@contextmanager
def capture(config: Optional[AnalyticsConfig] = None) -> Iterator[AnalyticsAggregator]:
    """Enable a fresh aggregator for a ``with`` block (tests)."""
    global ANALYTICS
    prev = ANALYTICS
    agg = AnalyticsAggregator(config)
    ANALYTICS = agg
    try:
        yield agg
    finally:
        ANALYTICS = prev
