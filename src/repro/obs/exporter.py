"""OpenMetrics/Prometheus text exposition for the obs registry.

Three consumption modes, all dependency-free (hand-rolled renderer and
parser; ``prometheus_client`` is deliberately not required):

* **snapshot to file** — ``write_snapshot(path)`` (CLI ``--metrics-out``)
  renders the current registry, campaign gauges included, as an
  OpenMetrics text file CI can archive and scrapers can file-discover;
* **live HTTP endpoint** — :class:`MetricsServer` serves ``GET /metrics``
  from a background :mod:`http.server` thread (CLI ``--metrics-port``),
  rendering a fresh snapshot per scrape;
* **manifest re-export** — ``manifest_families(manifest)`` converts any
  v1–v4 telemetry manifest's counters/gauges/histograms (+ run totals)
  back into metric families, so ``obs export telemetry.json`` can feed a
  past run into the same pipeline.

Exposition follows the OpenMetrics text format: one ``# TYPE`` line per
family, counter samples carry the ``_total`` suffix, histograms export as
``summary`` (P² quantiles + ``_count``/``_sum``), and the body terminates
with ``# EOF``.  :func:`parse_openmetrics` is a strict validating parser
used by tests and the CI obs-plane job to prove exports stay well-formed.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import registry as obs_registry

#: Content type OpenMetrics scrapers negotiate.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: Every exported metric is namespaced under this prefix.
PREFIX = "repro_"

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<ts>\S+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: Sample-name suffixes each family type may legally emit.
_TYPE_SUFFIXES = {
    "counter": ("_total", "_created"),
    "gauge": ("",),
    "summary": ("", "_count", "_sum", "_created"),
    "histogram": ("_bucket", "_count", "_sum", "_created"),
    "info": ("_info",),
    "unknown": ("",),
}


class MetricFamily:
    """One exposition family: ``# TYPE`` line plus its samples."""

    __slots__ = ("name", "type", "help", "samples")

    def __init__(self, name: str, type_: str, help_: str = ""):
        self.name = name
        self.type = type_
        self.help = help_
        #: list of (suffix, labels dict, value)
        self.samples: List[Tuple[str, Dict[str, str], float]] = []

    def add(self, suffix: str, value: float, labels: Optional[Dict[str, str]] = None):
        self.samples.append((suffix, labels or {}, value))
        return self


def metric_name(raw: str) -> str:
    """Map a registry metric name to a legal prefixed OpenMetrics name."""
    return PREFIX + _NAME_SANITIZE.sub("_", raw)


def _fmt_value(v: Any) -> str:
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, int):
        return str(v)
    f = float(v)
    if f != f:
        return "NaN"
    if f in (float("inf"), float("-inf")):
        return "+Inf" if f > 0 else "-Inf"
    return repr(f)


def render(families: List[MetricFamily]) -> str:
    """Render families as OpenMetrics text (``# EOF``-terminated)."""
    lines: List[str] = []
    for fam in families:
        if fam.help:
            lines.append(f"# HELP {fam.name} {fam.help}")
        lines.append(f"# TYPE {fam.name} {fam.type}")
        for suffix, labels, value in fam.samples:
            label_str = ""
            if labels:
                inner = ",".join(
                    f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
                    for k, v in sorted(labels.items())
                )
                label_str = "{" + inner + "}"
            lines.append(f"{fam.name}{suffix}{label_str} {_fmt_value(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- family construction -----------------------------------------------------


def snapshot_families(snapshot: Dict[str, Any]) -> List[MetricFamily]:
    """Families from a :meth:`Registry.snapshot` dict."""
    families: List[MetricFamily] = []
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        fam = MetricFamily(metric_name(name), "counter", f"registry counter {name}")
        fam.add("_total", value)
        families.append(fam)
    for name, value in sorted((snapshot.get("gauges") or {}).items()):
        fam = MetricFamily(metric_name(name), "gauge", f"registry gauge {name}")
        fam.add("", value)
        families.append(fam)
    for name, summary in sorted((snapshot.get("histograms") or {}).items()):
        fam = MetricFamily(metric_name(name), "summary", f"registry histogram {name}")
        for q in ("0.5", "0.95", "0.99"):
            key = "p" + q[2:].ljust(2, "0") if q != "0.5" else "p50"
            val = summary.get(key)
            if isinstance(val, (int, float)):
                fam.add("", val, {"quantile": q})
        fam.add("_count", int(summary.get("count", 0)))
        fam.add("_sum", summary.get("total", 0.0))
        families.append(fam)
    return families


def registry_families() -> List[MetricFamily]:
    """Families for the live registry (empty list when obs is off)."""
    reg = obs_registry.STATS
    if reg is None:
        return []
    return snapshot_families(reg.snapshot())


def manifest_families(manifest: Dict[str, Any]) -> List[MetricFamily]:
    """Families from a telemetry manifest (any known schema version)."""
    families: List[MetricFamily] = []
    for key in ("wall_s", "events_executed", "events_per_s", "schema_version"):
        val = manifest.get(key)
        if isinstance(val, (int, float)):
            fam = MetricFamily(
                PREFIX + "manifest_" + _NAME_SANITIZE.sub("_", key),
                "gauge",
                f"manifest {key}",
            )
            fam.add("", val)
            families.append(fam)
    families.extend(snapshot_families(manifest.get("counters") or {}))
    campaign = manifest.get("campaign") or {}
    for key in ("requested", "unique", "cached", "executed", "failures"):
        if isinstance(campaign.get(key), (int, float)):
            fam = MetricFamily(
                PREFIX + "campaign_" + key, "gauge", f"campaign {key}"
            )
            fam.add("", campaign[key])
            families.append(fam)
    sup = manifest.get("supervisor") or {}
    counts = sup.get("status_counts") or {}
    if counts:
        fam = MetricFamily(
            PREFIX + "campaign_status_runs", "gauge", "supervised run statuses"
        )
        for status in sorted(counts):
            fam.add("", counts[status], {"status": status})
        families.append(fam)
    return families


# -- snapshot / endpoint ------------------------------------------------------


def render_registry() -> str:
    """The live registry as OpenMetrics text."""
    return render(registry_families())


def write_snapshot(path: Any, families: Optional[List[MetricFamily]] = None) -> Path:
    """Write an OpenMetrics snapshot file (defaults to the live registry)."""
    out = Path(path)
    out.write_text(render(registry_families() if families is None else families))
    return out


class MetricsServer:
    """Background OpenMetrics endpoint on stdlib ``http.server``.

    ``producer`` returns the exposition body per request (defaults to the
    live registry); ``port=0`` binds an ephemeral port, readable from
    ``server.port`` after :meth:`start`.  Read-only and daemonized: never
    blocks interpreter exit, never touches simulation state.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        producer: Optional[Callable[[], str]] = None,
    ):
        self._host = host
        self._requested_port = port
        self._producer = producer or render_registry
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.port: Optional[int] = None

    def start(self) -> int:
        producer = self._producer

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                if self.path not in ("/", "/metrics"):
                    self.send_error(404)
                    return
                body = producer().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr spam
                pass

        self._httpd = ThreadingHTTPServer((self._host, self._requested_port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# -- validating parser --------------------------------------------------------


def parse_openmetrics(text: str) -> Dict[str, Dict[str, Any]]:
    """Strictly parse OpenMetrics text; raises ``ValueError`` on violations.

    Returns ``{family: {"type": str, "samples": [(name, labels, value)]}}``.
    Checks the invariants our exports rely on: a terminal ``# EOF``, a
    ``# TYPE`` declared before any of a family's samples, sample names
    using only that type's legal suffixes, and float-parseable values.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must terminate with '# EOF'")
    families: Dict[str, Dict[str, Any]] = {}
    for lineno, line in enumerate(lines[:-1], 1):
        if not line:
            raise ValueError(f"line {lineno}: blank lines are not allowed")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#":
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            keyword = parts[1]
            if keyword == "TYPE":
                name, type_ = parts[2], (parts[3] if len(parts) > 3 else "")
                if type_ not in _TYPE_SUFFIXES:
                    raise ValueError(f"line {lineno}: unknown type {type_!r}")
                if name in families:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
                families[name] = {"type": type_, "samples": []}
            elif keyword not in ("HELP", "UNIT", "EOF"):
                raise ValueError(f"line {lineno}: unknown keyword {keyword!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        sample_name = m.group("name")
        fam_name, fam = _resolve_family(sample_name, families)
        if fam is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no preceding # TYPE"
            )
        suffix = sample_name[len(fam_name):]
        if suffix not in _TYPE_SUFFIXES[fam["type"]]:
            raise ValueError(
                f"line {lineno}: suffix {suffix!r} illegal for {fam['type']} "
                f"family {fam_name}"
            )
        raw = m.group("value")
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(f"line {lineno}: bad value {raw!r}") from None
        labels = dict(_LABEL_RE.findall(m.group("labels") or ""))
        fam["samples"].append((sample_name, labels, value))
    empty = sorted(n for n, f in families.items() if not f["samples"])
    if empty:
        raise ValueError(f"families with no samples: {', '.join(empty)}")
    return families


def _resolve_family(
    sample_name: str, families: Dict[str, Dict[str, Any]]
) -> Tuple[str, Optional[Dict[str, Any]]]:
    """Longest-prefix match of a sample name to a declared family."""
    best: Tuple[str, Optional[Dict[str, Any]]] = ("", None)
    for name, fam in families.items():
        if sample_name.startswith(name) and len(name) > len(best[0]):
            if sample_name[len(name):] in _TYPE_SUFFIXES[fam["type"]]:
                best = (name, fam)
    return best


def load_snapshot(path: Any) -> Dict[str, Dict[str, Any]]:
    """Parse an on-disk snapshot (convenience for tests/CI)."""
    return parse_openmetrics(Path(path).read_text())


def export_section(families: List[MetricFamily]) -> Dict[str, Any]:
    """Manifest ``export`` section: where/what the exporter published."""
    return {
        "families": len(families),
        "samples": sum(len(f.samples) for f in families),
    }


def _self_check() -> None:  # pragma: no cover - debugging aid
    print(json.dumps(sorted(f.name for f in registry_families()), indent=2))
