"""Flow flight recorder: exact per-flow FCT decomposition and link series.

The paper's claim is causal — fast convergence to fairness shrinks long-flow
tail FCT — so the reproduction needs to answer *why* a given flow was slow,
not just report slowdown percentiles.  This module decomposes every completed
flow's FCT into six mutually exclusive causes:

====================  ====================================================
component             time attributed to it
====================  ====================================================
``queueing``          packets waiting behind other traffic in port FIFOs
``serialization``     store-and-forward transmission time on each hop
``propagation``       link propagation plus receiver turnaround
``pfc_pause``         head-of-line time under a PFC pause on the egress
``retx_recovery``     sender stalls ended by a go-back-N timeout
``cc_throttle``       sender idle because congestion control paced it
====================  ====================================================

**Conservation invariant**: for every completed flow the six components sum
to its FCT within :data:`CONSERVATION_TOLERANCE_NS` (1 ns).  This is exact
by construction, not approximate: the recorder keeps a per-flow *cursor*
that starts at ``flow.start_time`` and is advanced to "now" by every
sender-side event (data emission, ACK arrival, go-back-N timeout, and
finally completion).  Each event closes the interval ``[cursor, now]`` and
charges its full length to components, so the intervals telescope to
exactly ``finish - start``:

* **data emission** charges the interval to ``cc_throttle`` — the only way
  a sender sits idle between events and then *sends* is a pacing gate;
* **go-back-N timeout** charges it to ``retx_recovery`` — the stall ended
  by the RTO is recovery time regardless of what first caused the loss;
* **ACK arrival** splits the interval proportionally using the round-trip
  breakdown stamped on the packet as it crossed each port (queueing /
  serialization / propagation / pause accumulate hop by hop on the data
  packet and keep accumulating on the echoed ACK).  The propagation share
  is computed as the *residue* of the interval after the scaled queueing,
  serialization, and pause shares, so each split sums to the interval
  length exactly rather than within float error.

The recorder follows the obs-plane contract: a module global consulted
through a hoisted ``is not None`` test at every hook site, zero extra
instructions in ``Simulator._run_fast`` (enforced by the flightrec overhead
benchmark's ``co_names`` assertion), and byte-identical simulation output
when enabled — it never schedules events, draws randomness, or mutates
simulation state.  Completion additionally cross-validates against the
sanitizer's shadow tallies when both layers are on (see
``InvariantChecker.on_flow_decomposition``).

On top of the decomposition the recorder keeps, per run:

* per-link utilization and an event-driven queue-depth time-series for the
  packet backend (parity with ``fluid.py``'s ``track_link_utilization``);
* per-flow rate trajectories (bytes acked over time) merged with the
  analytics convergence instant into a **convergence timeline**;
* optional Perfetto hop spans and series counters through the existing
  tracer, stamped in virtual time so ``obs stitch`` rescales them together
  with every other shard event.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..check import invariants as check_invariants
from . import tracer as obs_tracer

#: Decomposition component names, in rendering order.
COMPONENTS: Tuple[str, ...] = (
    "queueing",
    "serialization",
    "propagation",
    "pfc_pause",
    "retx_recovery",
    "cc_throttle",
)

#: |fct - sum(components)| above this is a conservation failure.
CONSERVATION_TOLERANCE_NS = 1.0

#: Per-flow decompositions retained in a manifest run section (largest FCT
#: first); the rest are summarized by ``flows_truncated`` — never silently.
DECOMPOSITION_CAP = 64

#: Flows retained in the convergence timeline (largest FCT first).
TIMELINE_FLOWS_CAP = 16

#: Retained samples per series; when a series fills to twice this, every
#: other sample is dropped and the sampling stride doubles, so memory stays
#: bounded while coverage stays uniform over the whole run.
SERIES_CAP = 256

#: Retained (time, bytes_acked) points per flow trajectory.
TIMELINE_CAP = 128


class _Stamp:
    """Round-trip breakdown accumulated on a packet as it crosses ports.

    Allocated at data emission, carried in ``Packet.fr``, echoed onto the
    ACK so the return path keeps accumulating, and read back by the sender
    when the ACK arrives.  ``enq_ts`` / ``pause_base`` are scratch for the
    port currently holding the packet.
    """

    __slots__ = ("q", "ser", "prop", "pause", "enq_ts", "pause_base")

    def __init__(self) -> None:
        self.q = 0.0
        self.ser = 0.0
        self.prop = 0.0
        self.pause = 0.0
        self.enq_ts = -1.0
        self.pause_base = 0.0


class _PauseMeter:
    """Lazy integrator of one egress's cumulative PFC-paused nanoseconds.

    Mirrors ``PfcEgressState`` semantics (``pause`` extends ``paused_until``
    monotonically, ``resume`` cancels it) but integrates instead of testing:
    ``at(now)`` returns total paused time in ``[0, now]``.  All queries come
    from event callbacks, so ``now`` is nondecreasing and the integral is
    exact.
    """

    __slots__ = ("cum", "mark", "until", "pauses")

    def __init__(self) -> None:
        self.cum = 0.0
        self.mark = 0.0
        self.until = 0.0
        self.pauses = 0

    def at(self, now: float) -> float:
        until = self.until
        mark = self.mark
        if until > mark:
            edge = now if now < until else until
            if edge > mark:
                self.cum += edge - mark
        if now > mark:
            self.mark = now
        return self.cum

    def on_pause(self, now: float, duration_ns: float) -> None:
        self.at(now)
        self.pauses += 1
        end = now + duration_ns
        if end > self.until:
            self.until = end

    def on_resume(self, now: float) -> None:
        self.at(now)
        self.until = now


class _Series:
    """Bounded (time, value) series with stride-doubling decimation."""

    __slots__ = ("times", "values", "_stride", "_seen")

    def __init__(self) -> None:
        self.times: List[float] = []
        self.values: List[float] = []
        self._stride = 1
        self._seen = 0

    def sample(self, now: float, value: float) -> None:
        if self._seen % self._stride == 0:
            self.times.append(now)
            self.values.append(value)
            if len(self.times) >= 2 * SERIES_CAP:
                del self.times[::2]
                del self.values[::2]
                self._stride *= 2
        self._seen += 1


class _PortRec:
    """Per-egress-port state: identity, queue series, pause integral.

    ``meter`` is the *shared* integrator keyed by the port's
    ``PfcEgressState`` in the recorder's ``_meters`` map — PAUSE frames
    report through that state object (which may fire before the port is
    ever seen here), so both sides must resolve to the same meter for
    per-packet pause attribution to work.
    """

    __slots__ = ("port", "queue", "meter", "queue_max_bytes")

    def __init__(self, port: Any, meter: "_PauseMeter") -> None:
        self.port = port
        self.queue = _Series()
        self.meter = meter
        self.queue_max_bytes = 0.0

    def label(self) -> str:
        port = self.port
        peer = port.peer_node
        if peer is not None:
            return f"{port.owner.name}->{peer.name}"
        return f"{port.owner.name}.p{port.index}"


class _FlowTrack:
    """Per-flow cursor, component sums, and rate trajectory."""

    __slots__ = (
        "flow",
        "cursor",
        "queueing",
        "serialization",
        "propagation",
        "pfc_pause",
        "retx_recovery",
        "cc_throttle",
        "acks",
        "retransmits",
        "residual_ns",
        "done",
        "points",
        "_stride",
        "_seen",
    )

    def __init__(self, flow: Any) -> None:
        self.flow = flow
        self.cursor = flow.start_time
        self.queueing = 0.0
        self.serialization = 0.0
        self.propagation = 0.0
        self.pfc_pause = 0.0
        self.retx_recovery = 0.0
        self.cc_throttle = 0.0
        self.acks = 0
        self.retransmits = 0
        self.residual_ns = 0.0
        self.done = False
        self.points: List[Tuple[float, float]] = [(flow.start_time, 0.0)]
        self._stride = 1
        self._seen = 0

    def components(self) -> Dict[str, float]:
        return {
            "queueing": self.queueing,
            "serialization": self.serialization,
            "propagation": self.propagation,
            "pfc_pause": self.pfc_pause,
            "retx_recovery": self.retx_recovery,
            "cc_throttle": self.cc_throttle,
        }

    def total(self) -> float:
        return (
            self.queueing
            + self.serialization
            + self.propagation
            + self.pfc_pause
            + self.retx_recovery
            + self.cc_throttle
        )

    def point(self, now: float, acked: float) -> None:
        if self._seen % self._stride == 0:
            pts = self.points
            pts.append((now, acked))
            if len(pts) >= 2 * TIMELINE_CAP:
                del pts[::2]
                self._stride *= 2
        self._seen += 1


def dominant_component(components: Dict[str, float]) -> str:
    """The component holding the largest share (ties break in table order)."""
    best = COMPONENTS[0]
    best_value = components.get(best, 0.0)
    for name in COMPONENTS[1:]:
        value = components.get(name, 0.0)
        if value > best_value:
            best, best_value = name, value
    return best


class FlightRecorder:
    """Per-run flight data: flow decompositions, link series, timeline.

    Hooks are called by the sim layer only after a ``RECORDER is not None``
    test, so every method here may assume it is live.  One recorder instance
    accumulates finalized run sections across a campaign (mirroring
    ``AnalyticsAggregator``); per-run working state resets in ``begin_run``.
    """

    def __init__(self) -> None:
        self.runs: List[Dict[str, Any]] = []
        self._kind = "run"
        self._desc = ""
        self._tracks: List[_FlowTrack] = []
        self._ports: Dict[Any, _PortRec] = {}
        self._meters: Dict[Any, _PauseMeter] = {}
        self.extent_ns = 0.0
        self.conservation_failures = 0
        self.max_residual_ns = 0.0

    # -- run lifecycle -----------------------------------------------------

    def begin_run(self, kind: str = "run", desc: str = "") -> None:
        """Reset per-run working state; finalized sections are kept."""
        self._kind = kind
        self._desc = desc
        self._tracks = []
        self._ports = {}
        self._meters = {}
        self.extent_ns = 0.0
        self.conservation_failures = 0
        self.max_residual_ns = 0.0

    # -- sim hooks (hot path; called only when the recorder is enabled) ----

    def open_flow(self, state: Any) -> _FlowTrack:
        track = _FlowTrack(state.flow)
        self._tracks.append(track)
        return track

    def on_send(self, track: _FlowTrack, pkt: Any, now: float) -> None:
        gap = now - track.cursor
        if gap > 0.0:
            track.cc_throttle += gap
            track.cursor = now
        pkt.fr = _Stamp()

    def on_ack(self, track: _FlowTrack, stamp: Any, acked: float, now: float) -> None:
        gap = now - track.cursor
        if gap > 0.0:
            if stamp is not None:
                network = stamp.q + stamp.ser + stamp.prop + stamp.pause
            else:
                network = 0.0
            if network > 0.0:
                # The arriving ACK's packet entered the network no later
                # than the cursor (every send advances the cursor), so the
                # interval is at most one stamped round trip and the scale
                # factor stays in [0, 1] up to float rounding.
                scale = gap / network
                if scale > 1.0:
                    scale = 1.0
                q_share = stamp.q * scale
                ser_share = stamp.ser * scale
                pause_share = stamp.pause * scale
                track.queueing += q_share
                track.serialization += ser_share
                track.pfc_pause += pause_share
                # Residue, not stamp.prop * scale: the split then sums to
                # the interval exactly, which is what makes the end-to-end
                # conservation check exact rather than approximate.
                track.propagation += gap - q_share - ser_share - pause_share
            else:
                # No round-trip breakdown (flow predates the recorder or a
                # zero-latency loop): conserve by charging wire time.
                track.propagation += gap
            track.cursor = now
        track.acks += 1
        track.point(now, acked)

    def on_retx(self, track: _FlowTrack, now: float) -> None:
        gap = now - track.cursor
        if gap > 0.0:
            track.retx_recovery += gap
            track.cursor = now

    def on_complete(self, track: _FlowTrack, state: Any, now: float) -> None:
        flow = track.flow
        fct = now - flow.start_time
        total = track.total()
        residual = fct - total
        track.residual_ns = residual
        track.retransmits = state.retransmits
        track.done = True
        magnitude = residual if residual >= 0.0 else -residual
        if magnitude > self.max_residual_ns:
            self.max_residual_ns = magnitude
        if magnitude > CONSERVATION_TOLERANCE_NS:
            self.conservation_failures += 1
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_flow_decomposition(
                state, fct_ns=fct, components_ns=total, residual_ns=residual
            )

    def on_enqueue(self, port: Any, pkt: Any, now: float) -> None:
        rec = self._ports.get(port)
        if rec is None:
            rec = _PortRec(port, self._meter(port.pfc_egress))
            self._ports[port] = rec
        stamp = pkt.fr
        if stamp is not None:
            stamp.enq_ts = now
            stamp.pause_base = rec.meter.at(now)
        depth = port.queue_bytes
        if depth > rec.queue_max_bytes:
            rec.queue_max_bytes = depth
        rec.queue.sample(now, depth)

    def on_dequeue(self, port: Any, pkt: Any, now: float, ser: float) -> None:
        rec = self._ports.get(port)
        if rec is None:
            rec = _PortRec(port, self._meter(port.pfc_egress))
            self._ports[port] = rec
        paused_cum = rec.meter.at(now)
        stamp = pkt.fr
        if stamp is not None and stamp.enq_ts >= 0.0:
            wait = now - stamp.enq_ts
            paused = paused_cum - stamp.pause_base
            stamp.pause += paused
            stamp.q += wait - paused
            stamp.ser += ser
            stamp.prop += port.spec.prop_delay_ns
            tr = obs_tracer.TRACER
            if tr is not None:
                tr.complete(
                    f"hop {rec.label()}",
                    stamp.enq_ts,
                    wait + ser,
                    cat="hop",
                    tid=pkt.flow_id,
                )
            stamp.enq_ts = -1.0
        rec.queue.sample(now, port.queue_bytes)

    def on_pause(self, egress: Any, now: float, duration_ns: float) -> None:
        meter = self._meter(egress)
        meter.on_pause(now, duration_ns)

    def on_resume(self, egress: Any, now: float) -> None:
        meter = self._meter(egress)
        meter.on_resume(now)

    def on_run_extent(self, now: float) -> None:
        if now > self.extent_ns:
            self.extent_ns = now

    def _meter(self, egress: Any) -> _PauseMeter:
        meter = self._meters.get(egress)
        if meter is None:
            meter = _PauseMeter()
            self._meters[egress] = meter
        return meter

    # -- accessors (tests and in-process consumers) ------------------------

    def tracks(self) -> List[_FlowTrack]:
        return list(self._tracks)

    def track(self, flow_id: int) -> Optional[_FlowTrack]:
        for track in self._tracks:
            if track.flow.flow_id == flow_id:
                return track
        return None

    def queue_series(self, label: str) -> Tuple[List[float], List[float]]:
        """(times, queue-depth bytes) for one link, by finalize label."""
        for rec in self._ports.values():
            if rec.label() == label:
                return list(rec.queue.times), list(rec.queue.values)
        return [], []

    def link_utilization(self, elapsed_ns: Optional[float] = None) -> Dict[str, float]:
        """Time-averaged egress utilization per link label in [0, 1].

        Parity with ``FluidEngine.link_utilization``: transmitted bytes over
        link capacity times elapsed time, against the same default elapsed
        (the run extent the engine reported).
        """
        elapsed = self.extent_ns if elapsed_ns is None else elapsed_ns
        out: Dict[str, float] = {}
        if elapsed <= 0.0:
            return out
        for rec in self._ports.values():
            port = rec.port
            capacity_bits = port.spec.rate_bps * elapsed * 1e-9
            if capacity_bits > 0.0:
                out[rec.label()] = min(1.0, port.tx_bytes * 8.0 / capacity_bits)
        return out

    # -- finalize ----------------------------------------------------------

    def finalize_run(
        self,
        kind: Optional[str] = None,
        desc: Optional[str] = None,
        *,
        ideal_ns_fn: Optional[Callable[[Any], float]] = None,
        convergence_ns: Optional[float] = None,
        extent_ns: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Freeze the current run into a manifest-shaped section entry.

        ``ideal_ns_fn`` (flow -> ideal FCT ns) enriches decompositions with
        slowdowns; ``convergence_ns`` is the analytics detector's instant,
        merged into the timeline.  The entry is appended to :attr:`runs`
        and per-run working state is reset.
        """
        if extent_ns is not None and extent_ns > self.extent_ns:
            self.extent_ns = extent_ns
        extent = self.extent_ns
        completed = [t for t in self._tracks if t.done]
        completed.sort(key=lambda t: t.flow.fct, reverse=True)

        totals = {name: 0.0 for name in COMPONENTS}
        decomps: List[Dict[str, Any]] = []
        for track in completed:
            flow = track.flow
            components = track.components()
            for name in COMPONENTS:
                totals[name] += components[name]
            entry: Dict[str, Any] = {
                "flow_id": flow.flow_id,
                "src": flow.src,
                "dst": flow.dst,
                "size_bytes": flow.size,
                "start_ns": flow.start_time,
                "fct_ns": flow.fct,
                "components": components,
                "residual_ns": track.residual_ns,
                "retransmits": track.retransmits,
                "acks": track.acks,
                "dominant": dominant_component(components),
            }
            if ideal_ns_fn is not None:
                ideal = ideal_ns_fn(flow)
                entry["ideal_ns"] = ideal
                entry["slowdown"] = flow.fct / ideal if ideal > 0.0 else None
            decomps.append(entry)
        if ideal_ns_fn is not None:
            decomps.sort(key=lambda e: e.get("slowdown") or 0.0, reverse=True)

        links: List[Dict[str, Any]] = []
        tr = obs_tracer.TRACER
        for rec in sorted(self._ports.values(), key=lambda r: r.label()):
            port = rec.port
            label = rec.label()
            rate_bps = port.spec.rate_bps
            capacity_bits = rate_bps * extent * 1e-9
            utilization = (
                min(1.0, port.tx_bytes * 8.0 / capacity_bits)
                if capacity_bits > 0.0
                else 0.0
            )
            meter = rec.meter
            links.append(
                {
                    "link": label,
                    "rate_bps": rate_bps,
                    "tx_bytes": port.tx_bytes,
                    "utilization": utilization,
                    "paused_ns": meter.at(extent),
                    "pauses": meter.pauses,
                    "queue_max_bytes": rec.queue_max_bytes,
                    "queue_samples": len(rec.queue.times),
                }
            )
            if tr is not None:
                # Series counters ride the trace shard in virtual time, so
                # `obs stitch` rescales them with every other shard event
                # and merged Perfetto timelines stay aligned (the fluid
                # backend emits its series the same way).
                for ts, depth in zip(rec.queue.times, rec.queue.values):
                    tr.counter(
                        f"queue {label}", ts, {"bytes": depth}, cat="flightrec"
                    )
                tr.counter(
                    f"util {label}",
                    extent,
                    {"utilization": utilization},
                    cat="flightrec",
                )

        timeline_flows = []
        for track in completed[:TIMELINE_FLOWS_CAP]:
            timeline_flows.append(
                {
                    "flow_id": track.flow.flow_id,
                    "points": [[t, b] for t, b in track.points],
                }
            )

        section = {
            "kind": self._kind if kind is None else kind,
            "desc": self._desc if desc is None else desc,
            "flows_tracked": len(self._tracks),
            "flows_completed": len(completed),
            "conservation_failures": self.conservation_failures,
            "max_residual_ns": self.max_residual_ns,
            "extent_ns": extent,
            "components_total": totals,
            "decompositions": decomps[:DECOMPOSITION_CAP],
            "flows_truncated": max(0, len(decomps) - DECOMPOSITION_CAP),
            "links": links,
            "timeline": {
                "convergence_ns": convergence_ns,
                "flows": timeline_flows,
            },
        }
        self.runs.append(section)
        self.begin_run(self._kind, self._desc)
        return section

    def adopt_run(self, section: Dict[str, Any]) -> None:
        """Record a run section finalized in a pool worker.

        Campaign workers are separate processes; their recorder dies with
        them, so the finalized section rides home on the result object and
        the parent re-records it here (the live-analytics pattern).
        """
        self.runs.append(section)

    def section(self) -> Dict[str, Any]:
        """The manifest ``flightrec`` section (schema v5)."""
        return {
            "section_version": 1,
            "runs": list(self.runs),
        }

    def summary(self) -> str:
        """One line for operators: scope and conservation status."""
        flows = sum(r.get("flows_completed", 0) for r in self.runs)
        failures = sum(r.get("conservation_failures", 0) for r in self.runs)
        worst = max(
            (r.get("max_residual_ns", 0.0) for r in self.runs), default=0.0
        )
        status = "conserved" if failures == 0 else f"{failures} FAILURE(S)"
        return (
            f"{len(self.runs)} run(s), {flows} flow(s) decomposed, "
            f"{status} (worst residual {worst:.3g} ns)"
        )


#: Module-global hook: ``None`` keeps every recorder branch untaken.
RECORDER: Optional[FlightRecorder] = None


def enable() -> FlightRecorder:
    """Install (or return) the process-wide flight recorder."""
    global RECORDER
    if RECORDER is None:
        RECORDER = FlightRecorder()
    return RECORDER


def disable() -> None:
    global RECORDER
    RECORDER = None


def enabled() -> bool:
    return RECORDER is not None


def get() -> Optional[FlightRecorder]:
    return RECORDER


@contextmanager
def capture() -> Iterator[FlightRecorder]:
    """Enable for the duration of a block; restore the prior state after."""
    previous = RECORDER
    recorder = enable()
    try:
        yield recorder
    finally:
        globals()["RECORDER"] = previous
