"""Live supervised-campaign dashboard: the ``obs top`` engine.

Strictly **read-only and cross-process**: the dashboard never talks to the
supervisor — it tails the :class:`~repro.experiments.supervisor.CampaignJournal`
the supervisor is already fsync'ing (heartbeats are flushed un-fsync'd, so
they stream with sub-second latency) and reconstructs campaign state from
the event records.  That makes ``obs top`` safe to point at a campaign run
by another process, another user, or one that is already dead — the journal
is the protocol.

Three pieces:

* :class:`JournalTailer` — incremental JSONL reader: remembers its byte
  offset, buffers a torn trailing line until the writer completes it, and
  restarts from zero if the file shrinks (journal replaced/truncated).
* :class:`LiveState` — folds journal records into per-worker liveness,
  attempt/retry/quarantine counts, store hit rate, and streaming P²
  estimates of per-run Jain index and P99 FCT-slowdown (fed from the
  compact ``analytics`` payload ``done`` records carry).
* :func:`render_top` — one deterministic ASCII frame of that state;
  ``obs top --once`` prints a single frame, the live loop redraws it.

Clock honesty: journal ``ts`` fields are wall-clock (display only), so all
age math clamps at zero — a wall-clock step backwards under the dashboard
renders ``0.0s`` ages instead of negative ones (the supervisor's own
liveness decisions use ``time.monotonic()`` and never read these fields).
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional

from .analytics import P2Quantile

#: A worker whose last heartbeat is older than this many seconds renders
#: as ``stale`` (the supervisor's own kill deadline is usually longer).
STALE_AFTER_S = 5.0

#: Terminal per-config statuses `done` records may carry.
_DONE_STATUSES = ("ok", "retried", "salvaged")


def _age_s(now: float, ts: Optional[float]) -> Optional[float]:
    """Wall-clock age, clamped at zero against backwards clock steps."""
    if ts is None:
        return None
    return max(0.0, now - ts)


class JournalTailer:
    """Incremental reader over an append-only JSONL journal.

    ``poll()`` returns the records appended since the previous call.  A
    partial final line (writer mid-append) is buffered, not dropped; a
    file that shrank below our offset means the journal was replaced —
    reading restarts from the top.  Other-process unparseable middle
    lines are skipped defensively (the supervisor's own loader treats
    them as fatal; a live dashboard should keep rendering instead).
    """

    def __init__(self, path: Any) -> None:
        self.path = Path(path)
        self._offset = 0
        self._partial = ""

    def poll(self) -> List[Dict[str, Any]]:
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return []
        if size < self._offset:
            self._offset = 0
            self._partial = ""
        if size == self._offset:
            return []
        with open(self.path, "r", encoding="utf-8") as fh:
            fh.seek(self._offset)
            chunk = fh.read()
            self._offset = fh.tell()
        text = self._partial + chunk
        lines = text.split("\n")
        self._partial = lines.pop()  # "" when chunk ended on a newline
        records = []
        for line in lines:
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(rec, dict):
                records.append(rec)
        return records


class WorkerView:
    """What the journal says about one worker pid."""

    __slots__ = ("pid", "state", "desc", "key", "attempt", "last_ts")

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.state = "running"
        self.desc = "-"
        self.key: Optional[str] = None
        self.attempt: Optional[int] = None
        self.last_ts: Optional[float] = None


class LiveState:
    """Campaign state folded from journal records (see module docstring)."""

    def __init__(self) -> None:
        self.journal_label = ""
        self.started_ts: Optional[float] = None
        self.last_ts: Optional[float] = None
        self.jobs: Optional[int] = None
        self.requested: Optional[int] = None
        self.unique: Optional[int] = None
        self.resumed_from: Optional[str] = None
        self.counts: Dict[str, int] = {
            status: 0
            for status in (*_DONE_STATUSES, "quarantined", "lost")
        }
        self.cached = 0
        self.executed = 0
        self.attempts = 0
        self.failures = 0
        self.reschedules = 0
        self.shards = 0
        self.heartbeats = 0
        self.interrupted = False
        self.ended = False
        self.workers: Dict[int, WorkerView] = {}
        self.recent: deque = deque(maxlen=8)
        # Streaming tail estimates over per-run analytics payloads.
        self.jain_p50 = P2Quantile(0.5)
        self.jain_min: Optional[float] = None
        self.slowdown_p50 = P2Quantile(0.5)
        self.slowdown_p95 = P2Quantile(0.95)
        self.analytics_runs = 0

    # -- folding -----------------------------------------------------------

    def apply(self, rec: Dict[str, Any]) -> None:
        event = rec.get("event")
        ts = rec.get("ts")
        if isinstance(ts, (int, float)):
            self.last_ts = ts
        handler = getattr(self, f"_on_{event}", None)
        if handler is not None:
            handler(rec)

    def apply_all(self, records: List[Dict[str, Any]]) -> None:
        for rec in records:
            self.apply(rec)

    def _worker(self, pid: Any) -> Optional[WorkerView]:
        if not isinstance(pid, int):
            return None
        view = self.workers.get(pid)
        if view is None:
            view = self.workers[pid] = WorkerView(pid)
        return view

    def _note(self, rec: Dict[str, Any], text: str) -> None:
        self.recent.append((rec.get("ts"), text))

    def _on_campaign(self, rec: Dict[str, Any]) -> None:
        self.started_ts = rec.get("ts")
        self.jobs = rec.get("jobs")
        self.requested = rec.get("requested")
        self.unique = rec.get("unique")
        self.resumed_from = rec.get("resumed_from")

    def _on_attempt(self, rec: Dict[str, Any]) -> None:
        self.attempts += 1
        view = self._worker(rec.get("pid"))
        if view is not None:
            view.state = "running"
            view.desc = rec.get("desc") or "-"
            view.key = rec.get("key")
            view.attempt = rec.get("attempt")
            view.last_ts = rec.get("ts")

    def _on_hb(self, rec: Dict[str, Any]) -> None:
        self.heartbeats += 1
        view = self._worker(rec.get("pid"))
        if view is not None:
            view.state = "running"
            if rec.get("desc"):
                view.desc = rec["desc"]
            view.key = rec.get("key", view.key)
            view.last_ts = rec.get("ts")

    def _on_done(self, rec: Dict[str, Any]) -> None:
        status = rec.get("status", "ok")
        if status in self.counts:
            self.counts[status] += 1
        if rec.get("cached"):
            self.cached += 1
        else:
            self.executed += 1
        view = self._worker(rec.get("pid"))
        if view is not None:
            view.state = "idle"
            view.desc = "-"
            view.key = None
            view.attempt = None
            view.last_ts = rec.get("ts")
        live = rec.get("analytics")
        if isinstance(live, dict):
            self.analytics_runs += 1
            jain = live.get("jain")
            if isinstance(jain, (int, float)):
                self.jain_p50.observe(float(jain))
                self.jain_min = (
                    float(jain)
                    if self.jain_min is None
                    else min(self.jain_min, float(jain))
                )
            p99 = live.get("p99_slowdown")
            if isinstance(p99, (int, float)):
                self.slowdown_p50.observe(float(p99))
                self.slowdown_p95.observe(float(p99))
        wall = rec.get("wall_s")
        wall_txt = f" {wall:.2f}s" if isinstance(wall, (int, float)) else ""
        self._note(
            rec,
            f"done {rec.get('desc') or rec.get('key', '?')} [{status}]"
            f"{' (cached)' if rec.get('cached') else wall_txt}",
        )

    def _on_fail(self, rec: Dict[str, Any]) -> None:
        self.failures += 1
        self._note(
            rec,
            f"FAIL attempt {rec.get('attempt', '?')} "
            f"[{rec.get('classification', '?')}]: {rec.get('error', '?')}",
        )

    def _on_reschedule(self, rec: Dict[str, Any]) -> None:
        self.reschedules += 1
        self._note(rec, f"reschedule {rec.get('key', '?')}: {rec.get('reason', '?')}")

    def _on_quarantine(self, rec: Dict[str, Any]) -> None:
        self.counts["quarantined"] += 1
        self._note(
            rec,
            f"QUARANTINE {rec.get('desc', '?')} after "
            f"{rec.get('attempts', '?')} attempt(s)",
        )

    def _on_lost(self, rec: Dict[str, Any]) -> None:
        self.counts["lost"] += 1
        self._note(rec, f"LOST {rec.get('key', '?')}: {rec.get('error', '?')}")

    def _on_trace_shard(self, rec: Dict[str, Any]) -> None:
        self.shards += 1

    def _on_interrupted(self, rec: Dict[str, Any]) -> None:
        self.interrupted = True
        self._note(rec, "campaign INTERRUPTED")

    def _on_end(self, rec: Dict[str, Any]) -> None:
        self.ended = True
        for view in self.workers.values():
            view.state = "done"

    # -- derived -----------------------------------------------------------

    @property
    def done_total(self) -> int:
        return self.cached + self.executed

    @property
    def terminal_total(self) -> int:
        return self.done_total + self.counts["quarantined"] + self.counts["lost"]

    def store_hit_pct(self) -> Optional[float]:
        total = self.done_total
        return 100.0 * self.cached / total if total else None

    def runs_per_s(self) -> Optional[float]:
        if self.started_ts is None or self.last_ts is None or not self.executed:
            return None
        elapsed = max(1e-9, self.last_ts - self.started_ts)
        return self.executed / elapsed

    def eta_s(self) -> Optional[float]:
        rate = self.runs_per_s()
        if rate is None or rate <= 0 or self.unique is None:
            return None
        remaining = max(0, self.unique - self.terminal_total)
        return remaining / rate


def _fmt_age(age: Optional[float]) -> str:
    return f"{age:.1f}s" if age is not None else "-"


def _fmt_opt(v: Optional[float], fmt: str = "{:.2f}") -> str:
    return fmt.format(v) if isinstance(v, (int, float)) else "-"


def render_top(
    state: LiveState, *, now: Optional[float] = None, stale_after_s: float = STALE_AFTER_S
) -> str:
    """One deterministic ASCII frame of the campaign state."""
    # Local import mirrors report.py: keep obs importable without the
    # experiments stack at module-import time.
    from ..experiments.reporting import format_table

    now = time.time() if now is None else now
    c = state.counts
    status = "ENDED" if state.ended else ("INTERRUPTED" if state.interrupted else "live")
    out: List[str] = [
        f"== repro campaign top == {state.journal_label or 'journal'} [{status}]"
    ]
    unique = state.unique if state.unique is not None else "?"
    out.append(
        f"runs: {state.terminal_total}/{unique} done"
        f"  ok {c['ok']}  retried {c['retried']}  salvaged {c['salvaged']}"
        f"  quarantined {c['quarantined']}  lost {c['lost']}"
        f"  cached {state.cached}"
        + (
            f" (store {state.store_hit_pct():.0f}%)"
            if state.store_hit_pct() is not None
            else ""
        )
    )
    out.append(
        f"rate: {_fmt_opt(state.runs_per_s())} runs/s"
        f"  eta: {_fmt_opt(state.eta_s(), '{:.1f}')}s"
        f"  jobs: {state.jobs if state.jobs is not None else '?'}"
        f"  attempts: {state.attempts}  failures: {state.failures}"
        f"  reschedules: {state.reschedules}"
        f"  hb: {state.heartbeats}  shards: {state.shards}"
    )

    if state.workers:
        rows = []
        for pid in sorted(state.workers):
            view = state.workers[pid]
            age = _age_s(now, view.last_ts)
            worker_state = view.state
            if (
                worker_state == "running"
                and age is not None
                and age > stale_after_s
            ):
                worker_state = "stale"
            rows.append(
                (
                    pid,
                    worker_state,
                    _fmt_age(age),
                    view.attempt if view.attempt is not None else "-",
                    view.desc,
                )
            )
        out.append(f"\n-- workers ({len(rows)})")
        out.append(format_table(("pid", "state", "hb-age", "attempt", "run"), rows))

    if state.analytics_runs:
        out.append(f"\n-- streaming tail estimates ({state.analytics_runs} run(s), P2)")
        out.append(
            f"  jain p50={_fmt_opt(state.jain_p50.value(), '{:.3f}')}"
            f" min={_fmt_opt(state.jain_min, '{:.3f}')}"
            f"   p99-slowdown p50={_fmt_opt(state.slowdown_p50.value())}"
            f" p95={_fmt_opt(state.slowdown_p95.value())}"
        )

    if state.recent:
        out.append(f"\n-- recent events ({len(state.recent)})")
        for ts, text in state.recent:
            age = _age_s(now, ts if isinstance(ts, (int, float)) else None)
            out.append(f"  [{_fmt_age(age):>6}] {text}")

    return "\n".join(out)


def watch(
    journal_path: Any,
    *,
    once: bool = False,
    interval_s: float = 0.5,
    clear: bool = True,
    stale_after_s: float = STALE_AFTER_S,
    write: Any = None,
    max_frames: Optional[int] = None,
) -> LiveState:
    """Tail a journal and render frames until the campaign ends.

    ``once`` reads what exists and prints a single frame (tests/CI);
    the live loop polls every ``interval_s`` seconds, redraws on change,
    and returns when an ``end`` record is seen (or ``max_frames`` is
    reached).  Returns the final :class:`LiveState`.
    """
    import sys

    emit = write if write is not None else sys.stdout.write
    tailer = JournalTailer(journal_path)
    state = LiveState()
    state.journal_label = str(journal_path)
    frames = 0
    while True:
        records = tailer.poll()
        state.apply_all(records)
        if once or records or frames == 0:
            frame = render_top(state, stale_after_s=stale_after_s)
            if clear and not once:
                emit("\x1b[2J\x1b[H")
            emit(frame + "\n")
            frames += 1
        if once or state.ended:
            return state
        if max_frames is not None and frames >= max_frames:
            return state
        time.sleep(interval_s)
