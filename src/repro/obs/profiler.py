"""Opt-in hot-path phase profiler (zero overhead when off).

Same contract as the registry/tracer/sanitizer: a module-level global that
instrumented code tests against ``None``.  Two globals, not one:

* :data:`PROFILER` — the active profiler, whatever its mode.  Lifecycle
  owners (CLI, bench harness) read this to collect results.
* :data:`PHASE_HOOKS` — the *hook target* consulted by the hot paths in
  :mod:`repro.sim.engine`, :mod:`repro.sim.port`, :mod:`repro.sim.fluid`
  and the runner's phase timers.  It aliases :data:`PROFILER` only in
  ``phase`` mode; in ``func`` mode (the :func:`sys.setprofile` fallback)
  it stays ``None`` so the interpreter-driven call/return stream is the
  single writer of the phase stack — mixing both would corrupt it.

Attribution is *exclusive* (self) time with a settle-on-transition clock:
``push``/``pop`` charge the wall-time elapsed since the previous transition
to the current stack leaf and to the full stack tuple.  Nested pushes
therefore subtract child time from the parent naturally, and the stack
tuples export directly as collapsed-stack flamegraph text
(``a;b;c <microseconds>`` per line, the format ``flamegraph.pl`` and
speedscope ingest).

The engine's event loop never calls :func:`classify_callback` when the
profiler is off — the dispatch in :meth:`Simulator.run` selects a separate
``_run_profiled`` loop, keeping the fast path's bytecode free of profiler
references entirely (asserted by a benchmark guard).
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Callable, Dict, Optional, Tuple

#: Phase names the built-in hooks emit.  Informational; user pushes may
#: introduce new names freely.
PHASES = (
    "engine.loop",      # event-loop bookkeeping (heap ops, cancelled discards)
    "port.serialize",   # Port.try_drain / _tx_done / _wake transmit work
    "port.propagate",   # switch/node packet receive + forwarding
    "cc.decision",      # host-side congestion-control work (acks, timers)
    "pfc",              # PFC pause/resume application
    "monitor.sample",   # periodic samplers (queue/goodput/analytics)
    "fault.inject",     # fault-schedule callbacks
    "fluid.run",        # flow-level engine main loop
    "fluid.relax",      # fluid relaxation + target recomputation
    "engine.other",     # anything not classified above
)

#: Active profiler (any mode); None when profiling is off.
PROFILER: Optional["PhaseProfiler"] = None

#: Hook target for the manual phase hooks; aliases PROFILER in ``phase``
#: mode only.  Hot paths test THIS against None.
PHASE_HOOKS: Optional["PhaseProfiler"] = None

# -- event-callback classification -----------------------------------------

#: qualname -> phase, for the engine's per-event attribution.
_PHASE_EXACT = {
    "Port._tx_done": "port.serialize",
    "Port._wake": "port.serialize",
    "Switch.receive": "port.propagate",
    "Node.receive": "port.propagate",
    "Host.receive": "cc.decision",
    "Host._start_flow": "cc.decision",
    "Host._timer_fired": "cc.decision",
    "Host._rto_fired": "cc.decision",
}

#: leading class name -> phase, for callback families.
_PHASE_CLASS = {
    "PeriodicSampler": "monitor.sample",
    "QueueMonitor": "monitor.sample",
    "GoodputMonitor": "monitor.sample",
    "LiveAnalyzer": "monitor.sample",
    "FlowMonitor": "monitor.sample",
}

_classify_cache: Dict[str, str] = {}


def classify_callback(fn: Callable) -> str:
    """Map a scheduled callback to a phase name (memoized by qualname)."""
    qn = getattr(fn, "__qualname__", None)
    if qn is None:
        return "engine.other"
    phase = _classify_cache.get(qn)
    if phase is None:
        phase = _classify(qn, fn)
        _classify_cache[qn] = phase
    return phase


def _classify(qn: str, fn: Callable) -> str:
    phase = _PHASE_EXACT.get(qn)
    if phase is not None:
        return phase
    head = qn.split(".", 1)[0]
    phase = _PHASE_CLASS.get(head)
    if phase is not None:
        return phase
    mod = getattr(fn, "__module__", None) or ""
    if mod.endswith(".faults"):
        return "fault.inject"
    return "engine.other"


# -- the profiler ------------------------------------------------------------


class PhaseProfiler:
    """Wall-time attribution to named phases via an explicit phase stack.

    ``phase`` mode records only what instrumented code pushes; ``func``
    mode drives the same stack from :func:`sys.setprofile` call/return
    events (every Python function becomes a phase — much slower, much
    finer).  Both modes export the same three views:

    * :meth:`flat` — ``{phase: {"wall_s", "count"}}`` for bench records,
    * :meth:`section` — the manifest/bench ``profile`` section (flat
      phases plus the top stacks),
    * :meth:`collapsed` — collapsed-stack flamegraph text.
    """

    MODES = ("phase", "func")

    def __init__(
        self,
        mode: str = "phase",
        *,
        clock: Callable[[], float] = time.perf_counter,
        max_depth: int = 64,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown profiler mode {mode!r} (want one of {self.MODES})")
        self.mode = mode
        self.max_depth = max_depth
        self._clock = clock
        #: phase -> [exclusive wall seconds, push count]
        self.phases: Dict[str, list] = {}
        self._stack: list = []
        #: full-stack tuple -> exclusive wall seconds (flamegraph source)
        self._stack_time: Dict[Tuple[str, ...], float] = {}
        self._t0 = clock()
        self._t_last = self._t0
        self._t_stop: Optional[float] = None
        # func mode: frames entered past max_depth await this many returns.
        self._skip = 0

    # -- hot-path hooks (phase mode) --

    def push(self, name: str) -> None:
        """Enter a phase; elapsed time is charged to the previous leaf."""
        t = self._clock()
        stack = self._stack
        if stack:
            self._charge(stack, t - self._t_last)
        self._t_last = t
        stack.append(name)
        rec = self.phases.get(name)
        if rec is None:
            self.phases[name] = [0.0, 1]
        else:
            rec[1] += 1

    def pop(self) -> None:
        """Leave the current phase, charging it the elapsed time."""
        stack = self._stack
        if not stack:
            return
        t = self._clock()
        self._charge(stack, t - self._t_last)
        self._t_last = t
        stack.pop()

    def _charge(self, stack: list, dt: float) -> None:
        key = tuple(stack)
        st = self._stack_time
        st[key] = st.get(key, 0.0) + dt
        rec = self.phases.get(key[-1])
        if rec is None:
            self.phases[key[-1]] = [dt, 0]
        else:
            rec[0] += dt

    # -- func-mode sys.setprofile hook --

    def _func_hook(self, frame, event: str, arg) -> None:
        if event == "call":
            if len(self._stack) >= self.max_depth:
                self._skip += 1
                return
            code = frame.f_code
            self.push(getattr(code, "co_qualname", None) or code.co_name)
        elif event == "return":
            if self._skip:
                self._skip -= 1
            else:
                # Returns from frames entered before enable() land on an
                # empty stack; pop() tolerates that.
                self.pop()
        # c_call / c_return / c_exception: ignored (cost > signal here).

    # -- results --

    def _settle(self) -> None:
        """Charge pending elapsed time to the current leaf (idempotent)."""
        stack = self._stack
        if stack:
            t = self._clock()
            self._charge(stack, t - self._t_last)
            self._t_last = t

    def total_s(self) -> float:
        """Wall seconds from construction to now (or to disable time)."""
        end = self._t_stop if self._t_stop is not None else self._clock()
        return end - self._t0

    def flat(self) -> Dict[str, dict]:
        """``{phase: {"wall_s": float, "count": int}}``, sorted by name."""
        self._settle()
        return {
            name: {"wall_s": round(rec[0], 6), "count": rec[1]}
            for name, rec in sorted(self.phases.items())
        }

    def section(self, *, max_stacks: int = 50) -> dict:
        """The JSON ``profile`` section carried by manifests/bench records."""
        self._settle()
        top = sorted(
            self._stack_time.items(), key=lambda kv: (-kv[1], kv[0])
        )[:max_stacks]
        return {
            "mode": self.mode,
            "wall_s": round(self.total_s(), 6),
            "phases": self.flat(),
            "stacks": [
                {"stack": ";".join(key), "wall_s": round(v, 6)} for key, v in top
            ],
        }

    def collapsed(self) -> str:
        """Collapsed-stack flamegraph text: ``a;b;c <microseconds>`` lines."""
        self._settle()
        lines = []
        for key, v in sorted(self._stack_time.items()):
            us = int(round(v * 1e6))
            if us > 0:
                lines.append(f"{';'.join(key)} {us}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PhaseProfiler mode={self.mode} phases={len(self.phases)} "
            f"depth={len(self._stack)}>"
        )


# -- lifecycle ---------------------------------------------------------------


def enable(mode: str = "phase", **kwargs) -> PhaseProfiler:
    """Install a fresh profiler as the process-wide hook target."""
    global PROFILER, PHASE_HOOKS
    if PROFILER is not None:
        disable()
    prof = PhaseProfiler(mode, **kwargs)
    PROFILER = prof
    if mode == "phase":
        PHASE_HOOKS = prof
    else:
        # func mode drives the stack from the interpreter; the manual hooks
        # must stay dormant or the two writers would corrupt the stack.
        PHASE_HOOKS = None
        sys.setprofile(prof._func_hook)
    return prof


def disable() -> Optional[PhaseProfiler]:
    """Uninstall and return the active profiler (results stay readable)."""
    global PROFILER, PHASE_HOOKS
    prof = PROFILER
    PROFILER = None
    PHASE_HOOKS = None
    if prof is not None:
        if prof.mode == "func":
            sys.setprofile(None)
        prof._settle()
        prof._t_stop = prof._clock()
    return prof


@contextmanager
def capture(mode: str = "phase", **kwargs):
    """``with capture() as prof:`` — enable for the block, then disable."""
    prof = enable(mode, **kwargs)
    try:
        yield prof
    finally:
        disable()
