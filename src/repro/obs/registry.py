"""Near-zero-overhead instrumentation registry: named counters/gauges/histograms.

Design goals, in priority order:

1. **Disabled costs (almost) nothing.**  Instrumented call sites read one
   module-level global (``STATS``) and test it against ``None`` — the same
   idiom as ``Port.fault_hook``.  No objects are allocated, no dict is
   touched, no callback fires.  The benchmark-guard test
   (``tests/sim/test_obs_disabled.py``) locks in that simulation outputs are
   byte-identical with instrumentation on or off; the overhead budget for
   the *disabled* path is documented in DESIGN.md §9.
2. **Enabled is passive.**  Metrics record what happened; they never
   schedule events, draw random numbers, or touch simulation state, so a
   fully instrumented run is also byte-identical to a bare one.
3. **Names are free-form dotted strings** (``"port.fused_deliveries"``).
   The registry creates metrics on first use, so layers never coordinate.

Instrumented sites look like::

    from ..obs import registry as obs_registry
    ...
    reg = obs_registry.STATS
    if reg is not None:
        reg.counter("port.fused_deliveries").inc()

Hot loops that would otherwise look up the same counter thousands of times
may hoist the :class:`Counter` object out of the loop — metric objects are
stable for the lifetime of their registry.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .analytics import P2Quantile, percentile_key

#: Percentiles every histogram summary reports (P² streaming estimates).
HISTOGRAM_PERCENTILES = (50.0, 95.0, 99.0)


class Counter:
    """A monotonically increasing value (float so token fractions count too)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (last write wins; ``update_max`` keeps peaks)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def update_max(self, v: float) -> None:
        if v > self.value:
            self.value = v

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Streaming summary of observations: count/total/min/max + percentiles.

    Percentiles come from O(1)-memory P² estimators
    (:class:`repro.obs.analytics.P2Quantile`) — exact below five
    observations, approximate after — so no bucket boundaries need
    negotiating between layers.  The trace layer (:mod:`repro.obs.tracer`)
    remains the tool for full distributions.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_quantiles")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._quantiles = tuple(
            (p, P2Quantile(p / 100.0)) for p in HISTOGRAM_PERCENTILES
        )

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        for _, est in self._quantiles:
            est.observe(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Streaming estimate of percentile ``p`` (NaN with no data)."""
        for q, est in self._quantiles:
            if q == p:
                return est.value()
        raise KeyError(f"histogram tracks {HISTOGRAM_PERCENTILES}, not {p}")

    def summary(self) -> Dict[str, float]:
        if not self.count:
            out = {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
            out.update({percentile_key(p): 0.0 for p, _ in self._quantiles})
            return out
        out = {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        out.update(
            {percentile_key(p): est.value() for p, est in self._quantiles}
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.3g}>"


class Registry:
    """Create-on-first-use store of named metrics."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict rendering with sorted names (JSON- and diff-friendly)."""
        return {
            "counters": {n: self._counters[n].value for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
            "histograms": {
                n: self._histograms[n].summary() for n in sorted(self._histograms)
            },
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


#: The process-wide registry instrumented sites consult.  ``None`` (the
#: default) disables all instrumentation; hot paths pay one global read and
#: one identity test.
STATS: Optional[Registry] = None


def enable(registry: Optional[Registry] = None) -> Registry:
    """Install (and return) the process-wide registry, creating one if needed."""
    global STATS
    STATS = registry if registry is not None else Registry()
    return STATS


def disable() -> None:
    """Remove the process-wide registry; instrumentation reverts to no-ops."""
    global STATS
    STATS = None


def enabled() -> bool:
    return STATS is not None


def get() -> Optional[Registry]:
    return STATS


@contextmanager
def capture() -> Iterator[Registry]:
    """Enable a fresh registry for the scope of a ``with`` block (tests).

    The previous registry (usually ``None``) is restored on exit, so tests
    never leak instrumentation into each other.
    """
    global STATS
    prev = STATS
    reg = Registry()
    STATS = reg
    try:
        yield reg
    finally:
        STATS = prev
