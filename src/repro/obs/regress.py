"""Performance/metric regression gate over observability artifacts.

``repro-experiments obs diff BASELINE CURRENT`` compares two artifacts —
telemetry manifests (``--telemetry``), benchmark results
(``BENCH_results.json``), or a checked-in baseline file
(``benchmarks/baselines.json``) — metric by metric with per-metric relative
tolerances, and exits non-zero when anything regressed.  CI wires this
between the bench smoke and the artifact upload so the BENCH trajectory
cannot silently decay.

Three document shapes are understood, detected by content:

* **baseline files** (``kind: repro-baselines``) carry explicit
  ``{value, tolerance, direction}`` triples per metric — the gate's
  source of truth, refreshed via ``obs diff --update-baseline``;
* **bench results** (a ``benchmarks`` + ``total`` object from
  ``benchmarks/conftest.py``) flatten to ``total.*`` and
  ``bench.<name>.*`` scalars;
* **telemetry manifests** (``kind: repro-telemetry``) flatten to
  wall/event totals, per-phase wall time, and — when the manifest has a
  v2 ``analytics`` section — the paper's own metrics (convergence time,
  streaming slowdown percentiles) per run, so the gate can catch *metric*
  regressions, not just performance ones.

Tolerance semantics: ``tolerance`` is the allowed relative change in the
*bad* direction.  ``direction`` is ``lower`` (lower is better: wall time,
convergence, slowdown), ``higher`` (higher is better: events/s), or
``near`` (any drift beyond the tolerance band is suspect: deterministic
event counts).  Improvements never fail the gate.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

BASELINE_KIND = "repro-baselines"
BASELINE_SCHEMA_VERSION = 1

#: Fallback relative tolerance when a metric has no explicit entry.
DEFAULT_TOLERANCE = 0.25

#: Direction defaults by metric-name suffix (first match wins).
_DIRECTION_SUFFIXES = (
    ("wall_s", "lower"),
    ("events_per_s", "higher"),
    ("runs_per_s", "higher"),
    ("speedup", "higher"),
    ("events_executed", "near"),
    ("events", "near"),
    ("convergence_ns", "lower"),
    ("_slowdown", "lower"),
    ("samples", "near"),
)

VALID_DIRECTIONS = ("lower", "higher", "near")


def default_direction(name: str) -> str:
    for suffix, direction in _DIRECTION_SUFFIXES:
        if name.endswith(suffix):
            return direction
    return "lower"


def _slug(text: str) -> str:
    """A metric-key-safe rendering of a run description."""
    return re.sub(r"[^A-Za-z0-9]+", "_", text).strip("_").lower()


# ---------------------------------------------------------------------------
# Metric extraction
# ---------------------------------------------------------------------------


def _put(metrics: Dict[str, float], name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return
    v = float(value)
    if math.isnan(v) or math.isinf(v):
        return
    metrics[name] = v


def _put_nested(metrics: Dict[str, float], prefix: str, value: Any) -> None:
    """Flatten scalars and dict-of-scalar subtrees into dotted metric names.

    Bench records may nest structured sections (e.g. the profiler's
    per-phase ``{"wall_s": ..., "count": ...}`` attribution); each leaf
    scalar becomes its own gated metric so ``obs diff`` reports per-phase
    deltas, not just record totals.  Non-numeric leaves are skipped.
    """
    if isinstance(value, dict):
        for key in sorted(value):
            _put_nested(metrics, f"{prefix}.{_slug(str(key))}", value[key])
    else:
        _put(metrics, prefix, value)


def extract_metrics(doc: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a bench-results or telemetry-manifest document to scalars.

    Baseline files are *not* accepted here — use :func:`load_comparable`,
    which also returns their tolerances.
    """
    if doc.get("kind") == BASELINE_KIND:
        raise ValueError("baseline files carry metrics already; use load_comparable")
    metrics: Dict[str, float] = {}
    if "benchmarks" in doc or ("total" in doc and "kind" not in doc):
        total = doc.get("total") or {}
        for key in ("wall_s", "events", "events_per_s"):
            _put(metrics, f"total.{key}", total.get(key))
        for name, rec in sorted((doc.get("benchmarks") or {}).items()):
            # Every numeric field in the record becomes a metric: besides
            # the standard wall_s/events/events_per_s triple this carries
            # benchmark-specific extras (e.g. the flow-backend bench's
            # runs_per_s and speedup) into the regression gate.  Nested
            # dict sections (the profiler's per-phase attribution) flatten
            # to dotted leaves: bench.<name>.profile.<phase>.wall_s.
            for key, value in sorted((rec or {}).items()):
                _put_nested(metrics, f"bench.{_slug(name)}.{key}", value)
        return metrics
    if doc.get("kind") == "repro-telemetry" or "events_executed" in doc:
        for key in ("wall_s", "events_executed", "events_per_s"):
            _put(metrics, key, doc.get(key))
        for name, entry in sorted((doc.get("phases") or {}).items()):
            _put(metrics, f"phase.{_slug(name)}.wall_s", (entry or {}).get("wall_s"))
        for name, entry in sorted(((doc.get("profile") or {}).get("phases") or {}).items()):
            _put(metrics, f"profile.{_slug(name)}.wall_s", (entry or {}).get("wall_s"))
        for run in (doc.get("analytics") or {}).get("runs") or ():
            prefix = f"analytics.{_slug(run.get('desc', '?'))}"
            _put(metrics, f"{prefix}.convergence_ns", run.get("convergence_ns"))
            _put(metrics, f"{prefix}.jain", run.get("jain"))
            for key, value in (run.get("slowdown") or {}).items():
                if key != "count":
                    _put(metrics, f"{prefix}.{key}", value)
        return metrics
    raise ValueError(
        "unrecognized document: expected a telemetry manifest "
        "(kind=repro-telemetry), BENCH_results.json, or a baselines file"
    )


def load_comparable(
    doc: Dict[str, Any],
) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, str]]:
    """``(metrics, tolerances, directions)`` from any supported document.

    Non-baseline documents return empty tolerance/direction maps (the
    caller's CLI flags and the suffix defaults apply instead).
    """
    if doc.get("kind") == BASELINE_KIND:
        metrics: Dict[str, float] = {}
        tolerances: Dict[str, float] = {}
        directions: Dict[str, str] = {}
        for name, entry in (doc.get("metrics") or {}).items():
            _put(metrics, name, entry.get("value"))
            if name not in metrics:
                continue
            if "tolerance" in entry:
                tolerances[name] = float(entry["tolerance"])
            direction = entry.get("direction")
            if direction is not None:
                if direction not in VALID_DIRECTIONS:
                    raise ValueError(
                        f"baseline metric {name!r}: direction must be one of "
                        f"{VALID_DIRECTIONS}, got {direction!r}"
                    )
                directions[name] = direction
        return metrics, tolerances, directions
    return extract_metrics(doc), {}, {}


def make_baseline(
    doc: Dict[str, Any],
    *,
    tolerances: Optional[Dict[str, float]] = None,
    default_tolerance: float = DEFAULT_TOLERANCE,
    source: str = "",
) -> Dict[str, Any]:
    """A fresh baselines document from a bench/manifest document."""
    metrics = extract_metrics(doc)
    tolerances = tolerances or {}
    return {
        "kind": BASELINE_KIND,
        "schema_version": BASELINE_SCHEMA_VERSION,
        "source": source,
        "metrics": {
            name: {
                "value": value,
                "tolerance": tolerances.get(name, default_tolerance),
                "direction": default_direction(name),
            }
            for name, value in sorted(metrics.items())
        },
    }


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-current verdict."""

    name: str
    baseline: float
    current: Optional[float]
    tolerance: float
    direction: str
    status: str  # "ok" | "regressed" | "improved" | "missing"

    @property
    def change(self) -> Optional[float]:
        """Relative change (current - baseline) / |baseline| (None if missing)."""
        if self.current is None:
            return None
        if self.baseline == 0.0:
            return 0.0 if self.current == 0.0 else math.inf
        return (self.current - self.baseline) / abs(self.baseline)


def _classify(
    baseline: float, current: float, tolerance: float, direction: str
) -> str:
    if baseline == 0.0:
        change = 0.0 if current == 0.0 else math.copysign(math.inf, current)
    else:
        change = (current - baseline) / abs(baseline)
    if direction == "lower":
        if change > tolerance:
            return "regressed"
        return "improved" if change < -tolerance else "ok"
    if direction == "higher":
        if change < -tolerance:
            return "regressed"
        return "improved" if change > tolerance else "ok"
    # "near": drift in either direction beyond the band is a regression.
    return "regressed" if abs(change) > tolerance else "ok"


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    *,
    tolerances: Optional[Dict[str, float]] = None,
    directions: Optional[Dict[str, str]] = None,
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> List[MetricDelta]:
    """Per-metric deltas for every baseline metric, sorted worst-first.

    Metrics present only in ``current`` are ignored (new metrics cannot
    regress); metrics missing from ``current`` get status ``missing``.
    """
    tolerances = tolerances or {}
    directions = directions or {}
    deltas: List[MetricDelta] = []
    for name in sorted(baseline):
        base = baseline[name]
        tol = tolerances.get(name, default_tolerance)
        direction = directions.get(name, default_direction(name))
        cur = current.get(name)
        if cur is None:
            status = "missing"
        else:
            status = _classify(base, cur, tol, direction)
        deltas.append(
            MetricDelta(
                name=name,
                baseline=base,
                current=cur,
                tolerance=tol,
                direction=direction,
                status=status,
            )
        )
    order = {"regressed": 0, "missing": 1, "improved": 2, "ok": 3}
    deltas.sort(key=lambda d: (order[d.status], d.name))
    return deltas


def has_regression(deltas: List[MetricDelta], *, fail_on_missing: bool = False) -> bool:
    bad = {"regressed", "missing"} if fail_on_missing else {"regressed"}
    return any(d.status in bad for d in deltas)


def render_diff(deltas: List[MetricDelta], *, verbose: bool = False) -> str:
    """Aligned text table of the comparison (regressions first).

    With ``verbose=False`` only non-``ok`` rows are listed individually;
    the ``ok`` rows collapse into a count line.
    """
    # Local import mirrors report.py: obs stays importable from the
    # simulator layers without dragging in the experiments stack.
    from ..experiments.reporting import format_table

    shown = [d for d in deltas if verbose or d.status != "ok"]
    lines = ["=== repro regression gate ==="]
    counts = {"regressed": 0, "missing": 0, "improved": 0, "ok": 0}
    for d in deltas:
        counts[d.status] += 1
    lines.append(
        f"{len(deltas)} metric(s): {counts['regressed']} regressed, "
        f"{counts['missing']} missing, {counts['improved']} improved, "
        f"{counts['ok']} ok"
    )
    if shown:
        rows = []
        for d in shown:
            change = d.change
            rows.append(
                (
                    d.status.upper() if d.status == "regressed" else d.status,
                    d.name,
                    f"{d.baseline:g}",
                    "-" if d.current is None else f"{d.current:g}",
                    "-" if change is None else f"{change:+.1%}",
                    f"±{d.tolerance:.0%}" if d.direction == "near"
                    else f"{d.tolerance:.0%}",
                    d.direction,
                )
            )
        lines.append(
            format_table(
                ("status", "metric", "baseline", "current", "change", "tol", "dir"),
                rows,
            )
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Trajectory (one JSON line per gated run; CI appends on every main build)
# ---------------------------------------------------------------------------


def trajectory_record(
    doc: Dict[str, Any], *, label: str = "", extra: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """One BENCH-trajectory entry: the flattened metrics plus provenance."""
    record: Dict[str, Any] = {"label": label, "metrics": extract_metrics(doc)}
    if extra:
        record.update(extra)
    return record


def append_trajectory(path: Any, record: Dict[str, Any]) -> Path:
    """Append one record to a JSON-lines trajectory file."""
    out = Path(path)
    with out.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return out
