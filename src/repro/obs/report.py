"""Text dashboard over telemetry manifests and benchmark results.

``repro-experiments obs report m1.json m2.json --bench BENCH_results.json``
renders everything the observability layer knows about past runs as aligned
text tables: per-manifest totals, aggregated phase timings, individual run
records, campaign/cache effectiveness, and the benchmark baseline.

Rendering is deterministic for given inputs (sorted keys, fixed float
formats) — the golden test in ``tests/experiments/test_obs_report.py``
asserts the exact output for fixture manifests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple


def _fmt_s(v: Any) -> str:
    return f"{float(v):.2f}"


def _fmt_rate(v: Any) -> str:
    return f"{float(v):,.0f}"


def _hit_pct(hits: int, misses: int) -> str:
    total = hits + misses
    return f"{100.0 * hits / total:.0f}%" if total else "-"


def _fmt_opt(v: Any, fmt: str = "{:.2f}") -> str:
    return fmt.format(v) if isinstance(v, (int, float)) else "-"


def _fmt_conv(conv_ns: Any) -> str:
    return f"{conv_ns / 1e6:.3f}" if isinstance(conv_ns, (int, float)) else "never"


def render_report(
    manifests: Sequence[Tuple[str, Dict[str, Any]]],
    bench: Optional[Dict[str, Any]] = None,
) -> str:
    """Render ``(label, manifest)`` pairs (+ optional bench data) as text."""
    # Local import: obs must stay importable from the simulator layers
    # without dragging in the experiments stack at module-import time.
    from ..experiments.reporting import format_table

    out: List[str] = ["=== repro observability report ==="]

    rows = []
    for label, m in manifests:
        store = m.get("store") or {}
        campaign = m.get("campaign") or {}
        rows.append(
            (
                label,
                _fmt_s(m.get("wall_s", 0.0)),
                m.get("events_executed", 0),
                _fmt_rate(m.get("events_per_s", 0.0)),
                len(m.get("runs") or ()),
                campaign.get("cached", "-"),
                campaign.get("executed", "-"),
                campaign.get("jobs", "-"),
                _hit_pct(store.get("hits", 0), store.get("misses", 0)),
            )
        )
    out.append(f"\n-- manifests ({len(rows)})")
    out.append(
        format_table(
            (
                "manifest",
                "wall_s",
                "events",
                "events/s",
                "runs",
                "cached",
                "simulated",
                "jobs",
                "store-hit",
            ),
            rows,
        )
    )

    phases: Dict[str, Dict[str, float]] = {}
    for _, m in manifests:
        for name, entry in (m.get("phases") or {}).items():
            agg = phases.setdefault(name, {"wall_s": 0.0, "count": 0})
            agg["wall_s"] += entry.get("wall_s", 0.0)
            agg["count"] += entry.get("count", 0)
    if phases:
        out.append("\n-- phases (aggregated)")
        out.append(
            format_table(
                ("phase", "wall_s", "count"),
                [
                    (name, _fmt_s(phases[name]["wall_s"]), int(phases[name]["count"]))
                    for name in sorted(phases)
                ],
            )
        )

    runs = [(label, r) for label, m in manifests for r in (m.get("runs") or ())]
    if runs:
        out.append(f"\n-- runs ({len(runs)})")
        out.append(
            format_table(
                ("manifest", "kind", "desc", "wall_s", "events", "completed"),
                [
                    (
                        label,
                        r.get("kind", "?"),
                        r.get("desc", "?"),
                        _fmt_s(r.get("wall_s", 0.0)),
                        r.get("events", 0),
                        "yes" if r.get("completed") else "NO",
                    )
                    for label, r in runs
                ],
            )
        )

    # -- histograms (P² percentiles from the instrumentation registry) ----
    hist_rows = []
    for label, m in manifests:
        histograms = (m.get("counters") or {}).get("histograms") or {}
        for name in sorted(histograms):
            h = histograms[name]
            hist_rows.append(
                (
                    label,
                    name,
                    int(h.get("count", 0)),
                    _fmt_opt(h.get("mean"), "{:.3g}"),
                    _fmt_opt(h.get("p50"), "{:.3g}"),
                    _fmt_opt(h.get("p95"), "{:.3g}"),
                    _fmt_opt(h.get("p99"), "{:.3g}"),
                )
            )
    if hist_rows:
        out.append(f"\n-- histograms ({len(hist_rows)})")
        out.append(
            format_table(
                ("manifest", "histogram", "count", "mean", "p50", "p95", "p99"),
                hist_rows,
            )
        )

    # -- live analytics (schema v2) ----------------------------------------
    analytics_rows = []
    missing_analytics = []
    for label, m in manifests:
        section = m.get("analytics")
        if not section:
            missing_analytics.append((label, m.get("schema_version", "?")))
            continue
        for run in section.get("runs") or ():
            slowdown = run.get("slowdown") or {}
            analytics_rows.append(
                (
                    label,
                    run.get("desc", "?"),
                    run.get("samples", 0),
                    f"{run.get('flows_completed', 0)}/{run.get('flows', 0)}",
                    _fmt_opt(run.get("jain"), "{:.3f}"),
                    _fmt_conv(run.get("convergence_ns")),
                    _fmt_opt(slowdown.get("p50_slowdown")),
                    _fmt_opt(slowdown.get("p99_slowdown")),
                    _fmt_opt(slowdown.get("p999_slowdown")),
                )
            )
    if analytics_rows:
        out.append(f"\n-- live analytics ({len(analytics_rows)} run(s))")
        out.append(
            format_table(
                (
                    "manifest",
                    "run",
                    "samples",
                    "flows",
                    "jain",
                    "conv_ms",
                    "p50-slow",
                    "p99-slow",
                    "p999-slow",
                ),
                analytics_rows,
            )
        )
    if missing_analytics:
        labels = ", ".join(label for label, _ in missing_analytics)
        out.append(
            f"\n(note: no live-analytics section in {labels} — pre-v2 manifest "
            "or analytics disabled; re-run with --analytics to collect it)"
        )

    # -- supervision (schema v3) -------------------------------------------
    sup_rows = []
    quarantine_lines: List[str] = []
    for label, m in manifests:
        section = m.get("supervisor")
        if not section:
            continue
        counts = section.get("status_counts") or {}
        sup_rows.append(
            (
                label,
                counts.get("ok", 0),
                counts.get("retried", 0),
                counts.get("salvaged", 0),
                counts.get("quarantined", 0),
                counts.get("lost", 0),
                section.get("workers_killed", 0),
                section.get("workers_lost", 0),
            )
        )
        for q in section.get("quarantines") or ():
            quarantine_lines.append(
                f"  {label}: {q.get('desc', '?')} [{q.get('classification', '?')}] "
                f"after {q.get('attempts', '?')} attempt(s): {q.get('error', '?')}"
            )
    if sup_rows:
        out.append(f"\n-- supervision ({len(sup_rows)} campaign(s))")
        out.append(
            format_table(
                (
                    "manifest",
                    "ok",
                    "retried",
                    "salvaged",
                    "quarantined",
                    "lost",
                    "kills",
                    "losses",
                ),
                sup_rows,
            )
        )
    if quarantine_lines:
        out.append(f"\n-- quarantined configs ({len(quarantine_lines)})")
        out.extend(quarantine_lines)

    failures = sum(
        (m.get("campaign") or {}).get("failures", 0) for _, m in manifests
    )
    incomplete = sum(
        1 for _, r in runs if not r.get("completed", True)
    )
    if failures or incomplete:
        out.append(
            f"\n!! attention: {failures} campaign failure(s), "
            f"{incomplete} incomplete run(s)"
        )

    if bench:
        out.append("\n-- benchmarks (BENCH_results.json)")
        bench_rows = [
            (
                name,
                _fmt_s(rec.get("wall_s", 0.0)),
                rec.get("events", 0),
                _fmt_rate(rec.get("events_per_s", 0.0)),
            )
            for name, rec in sorted((bench.get("benchmarks") or {}).items())
        ]
        total = bench.get("total")
        if total:
            bench_rows.append(
                (
                    "TOTAL",
                    _fmt_s(total.get("wall_s", 0.0)),
                    total.get("events", 0),
                    _fmt_rate(total.get("events_per_s", 0.0)),
                )
            )
        out.append(
            format_table(("benchmark", "wall_s", "events", "events/s"), bench_rows)
        )

    return "\n".join(out)
