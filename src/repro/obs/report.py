"""Text dashboard over telemetry manifests and benchmark results.

``repro-experiments obs report m1.json m2.json --bench BENCH_results.json``
renders everything the observability layer knows about past runs as aligned
text tables: per-manifest totals, aggregated phase timings, individual run
records, campaign/cache effectiveness, and the benchmark baseline.

Rendering is deterministic for given inputs (sorted keys, fixed float
formats) — the golden test in ``tests/experiments/test_obs_report.py``
asserts the exact output for fixture manifests.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

#: Manifest sections introduced at each schema version.  The report
#: renders a section only when the manifest's declared version includes
#: it — explicit dispatch, not ``dict.get`` guessing, so a v1 manifest
#: that happens to carry an ``analytics``-shaped key is never mistaken
#: for a v2 one and a v4 section absent from an old manifest degrades
#: with a note instead of a silent blank.
SECTIONS_BY_VERSION: Dict[int, Tuple[str, ...]] = {
    1: (
        "argv",
        "runs",
        "phases",
        "campaign",
        "store",
        "counters",
        "trace",
        "heartbeats",
    ),
    2: ("analytics",),
    3: ("supervisor",),
    4: ("profile", "export"),
}

#: Versions render_report accepts (mirrors telemetry.KNOWN_SCHEMA_VERSIONS
#: without importing it — report must render foreign manifests too).
KNOWN_VERSIONS = tuple(sorted(SECTIONS_BY_VERSION))


def manifest_version(manifest: Dict[str, Any]) -> int:
    """The manifest's declared schema version (v1 when absent/bogus)."""
    version = manifest.get("schema_version")
    return version if isinstance(version, int) and not isinstance(version, bool) else 1


def sections_for(version: int) -> FrozenSet[str]:
    """Every section a manifest of ``version`` may carry (cumulative)."""
    return frozenset(
        name
        for v, names in SECTIONS_BY_VERSION.items()
        if v <= version
        for name in names
    )


def manifest_section(manifest: Dict[str, Any], name: str) -> Optional[Any]:
    """The section, or None if this manifest's version does not define it."""
    if name not in sections_for(manifest_version(manifest)):
        return None
    return manifest.get(name)


def _fmt_s(v: Any) -> str:
    return f"{float(v):.2f}"


def _fmt_rate(v: Any) -> str:
    return f"{float(v):,.0f}"


def _hit_pct(hits: int, misses: int) -> str:
    total = hits + misses
    return f"{100.0 * hits / total:.0f}%" if total else "-"


def _fmt_opt(v: Any, fmt: str = "{:.2f}") -> str:
    return fmt.format(v) if isinstance(v, (int, float)) else "-"


def _fmt_conv(conv_ns: Any) -> str:
    return f"{conv_ns / 1e6:.3f}" if isinstance(conv_ns, (int, float)) else "never"


def render_report(
    manifests: Sequence[Tuple[str, Dict[str, Any]]],
    bench: Optional[Dict[str, Any]] = None,
) -> str:
    """Render ``(label, manifest)`` pairs (+ optional bench data) as text."""
    # Local import: obs must stay importable from the simulator layers
    # without dragging in the experiments stack at module-import time.
    from ..experiments.reporting import format_table

    out: List[str] = ["=== repro observability report ==="]

    rows = []
    for label, m in manifests:
        store = manifest_section(m, "store") or {}
        campaign = manifest_section(m, "campaign") or {}
        rows.append(
            (
                label,
                f"v{manifest_version(m)}",
                _fmt_s(m.get("wall_s", 0.0)),
                m.get("events_executed", 0),
                _fmt_rate(m.get("events_per_s", 0.0)),
                len(manifest_section(m, "runs") or ()),
                campaign.get("cached", "-"),
                campaign.get("executed", "-"),
                campaign.get("jobs", "-"),
                _hit_pct(store.get("hits", 0), store.get("misses", 0)),
            )
        )
    out.append(f"\n-- manifests ({len(rows)})")
    out.append(
        format_table(
            (
                "manifest",
                "schema",
                "wall_s",
                "events",
                "events/s",
                "runs",
                "cached",
                "simulated",
                "jobs",
                "store-hit",
            ),
            rows,
        )
    )

    phases: Dict[str, Dict[str, float]] = {}
    for _, m in manifests:
        for name, entry in (manifest_section(m, "phases") or {}).items():
            agg = phases.setdefault(name, {"wall_s": 0.0, "count": 0})
            agg["wall_s"] += entry.get("wall_s", 0.0)
            agg["count"] += entry.get("count", 0)
    if phases:
        out.append("\n-- phases (aggregated)")
        out.append(
            format_table(
                ("phase", "wall_s", "count"),
                [
                    (name, _fmt_s(phases[name]["wall_s"]), int(phases[name]["count"]))
                    for name in sorted(phases)
                ],
            )
        )

    runs = [
        (label, r)
        for label, m in manifests
        for r in (manifest_section(m, "runs") or ())
    ]
    if runs:
        out.append(f"\n-- runs ({len(runs)})")
        out.append(
            format_table(
                ("manifest", "kind", "desc", "wall_s", "events", "completed"),
                [
                    (
                        label,
                        r.get("kind", "?"),
                        r.get("desc", "?"),
                        _fmt_s(r.get("wall_s", 0.0)),
                        r.get("events", 0),
                        "yes" if r.get("completed") else "NO",
                    )
                    for label, r in runs
                ],
            )
        )

    # -- histograms (P² percentiles from the instrumentation registry) ----
    hist_rows = []
    for label, m in manifests:
        histograms = (manifest_section(m, "counters") or {}).get("histograms") or {}
        for name in sorted(histograms):
            h = histograms[name]
            hist_rows.append(
                (
                    label,
                    name,
                    int(h.get("count", 0)),
                    _fmt_opt(h.get("mean"), "{:.3g}"),
                    _fmt_opt(h.get("p50"), "{:.3g}"),
                    _fmt_opt(h.get("p95"), "{:.3g}"),
                    _fmt_opt(h.get("p99"), "{:.3g}"),
                )
            )
    if hist_rows:
        out.append(f"\n-- histograms ({len(hist_rows)})")
        out.append(
            format_table(
                ("manifest", "histogram", "count", "mean", "p50", "p95", "p99"),
                hist_rows,
            )
        )

    # -- live analytics (schema v2) ----------------------------------------
    analytics_rows = []
    missing_analytics = []
    for label, m in manifests:
        section = manifest_section(m, "analytics")
        if not section:
            missing_analytics.append((label, m.get("schema_version", "?")))
            continue
        for run in section.get("runs") or ():
            slowdown = run.get("slowdown") or {}
            analytics_rows.append(
                (
                    label,
                    run.get("desc", "?"),
                    run.get("samples", 0),
                    f"{run.get('flows_completed', 0)}/{run.get('flows', 0)}",
                    _fmt_opt(run.get("jain"), "{:.3f}"),
                    _fmt_conv(run.get("convergence_ns")),
                    _fmt_opt(slowdown.get("p50_slowdown")),
                    _fmt_opt(slowdown.get("p99_slowdown")),
                    _fmt_opt(slowdown.get("p999_slowdown")),
                )
            )
    if analytics_rows:
        out.append(f"\n-- live analytics ({len(analytics_rows)} run(s))")
        out.append(
            format_table(
                (
                    "manifest",
                    "run",
                    "samples",
                    "flows",
                    "jain",
                    "conv_ms",
                    "p50-slow",
                    "p99-slow",
                    "p999-slow",
                ),
                analytics_rows,
            )
        )
    if missing_analytics:
        labels = ", ".join(label for label, _ in missing_analytics)
        out.append(
            f"\n(note: no live-analytics section in {labels} — pre-v2 manifest "
            "or analytics disabled; re-run with --analytics to collect it)"
        )

    # -- supervision (schema v3) -------------------------------------------
    sup_rows = []
    quarantine_lines: List[str] = []
    for label, m in manifests:
        section = manifest_section(m, "supervisor")
        if not section:
            continue
        counts = section.get("status_counts") or {}
        sup_rows.append(
            (
                label,
                counts.get("ok", 0),
                counts.get("retried", 0),
                counts.get("salvaged", 0),
                counts.get("quarantined", 0),
                counts.get("lost", 0),
                section.get("workers_killed", 0),
                section.get("workers_lost", 0),
            )
        )
        for q in section.get("quarantines") or ():
            quarantine_lines.append(
                f"  {label}: {q.get('desc', '?')} [{q.get('classification', '?')}] "
                f"after {q.get('attempts', '?')} attempt(s): {q.get('error', '?')}"
            )
    if sup_rows:
        out.append(f"\n-- supervision ({len(sup_rows)} campaign(s))")
        out.append(
            format_table(
                (
                    "manifest",
                    "ok",
                    "retried",
                    "salvaged",
                    "quarantined",
                    "lost",
                    "kills",
                    "losses",
                ),
                sup_rows,
            )
        )
    if quarantine_lines:
        out.append(f"\n-- quarantined configs ({len(quarantine_lines)})")
        out.extend(quarantine_lines)

    # -- hot-path profile (schema v4) --------------------------------------
    profile_rows = []
    for label, m in manifests:
        section = manifest_section(m, "profile")
        if not section:
            continue
        total_s = section.get("wall_s") or 0.0
        prof_phases = section.get("phases") or {}
        for name in sorted(prof_phases, key=lambda n: -prof_phases[n].get("wall_s", 0.0)):
            entry = prof_phases[name]
            wall_s = entry.get("wall_s", 0.0)
            share = f"{100.0 * wall_s / total_s:.1f}%" if total_s > 0 else "-"
            profile_rows.append(
                (
                    label,
                    section.get("mode", "?"),
                    name,
                    f"{wall_s:.4f}",
                    int(entry.get("count", 0)),
                    share,
                )
            )
    if profile_rows:
        out.append(f"\n-- hot-path profile ({len(profile_rows)} phase row(s))")
        out.append(
            format_table(
                ("manifest", "mode", "phase", "wall_s", "count", "share"),
                profile_rows,
            )
        )

    # -- metrics export (schema v4) ----------------------------------------
    export_lines = []
    for label, m in manifests:
        section = manifest_section(m, "export")
        if not section:
            continue
        dest = section.get("metrics_out") or (
            f"port {section['metrics_port']}" if section.get("metrics_port") else "-"
        )
        export_lines.append(
            f"  {label}: {section.get('families', 0)} families, "
            f"{section.get('samples', 0)} samples -> {dest}"
        )
    if export_lines:
        out.append(f"\n-- metrics export ({len(export_lines)} manifest(s))")
        out.extend(export_lines)

    # Truncated traces are worse than missing ones — they look complete in
    # the viewer while silently omitting the oldest events.  Shout.
    for label, m in manifests:
        trace = manifest_section(m, "trace") or {}
        dropped = trace.get("dropped", 0)
        if not dropped:
            counters = (manifest_section(m, "counters") or {}).get("counters") or {}
            dropped = counters.get("tracer.ring_dropped", 0)
        if dropped:
            emitted = trace.get("emitted", 0)
            capacity = trace.get("capacity", "?")
            out.append(
                f"\n!! trace truncated: {label} dropped {int(dropped)} of "
                f"{max(int(emitted), int(dropped))} trace event(s) (ring capacity "
                f"{capacity}) — oldest events are missing; re-run with a larger "
                "--trace-capacity"
            )

    failures = sum(
        (manifest_section(m, "campaign") or {}).get("failures", 0)
        for _, m in manifests
    )
    incomplete = sum(
        1 for _, r in runs if not r.get("completed", True)
    )
    if failures or incomplete:
        out.append(
            f"\n!! attention: {failures} campaign failure(s), "
            f"{incomplete} incomplete run(s)"
        )

    if bench:
        out.append("\n-- benchmarks (BENCH_results.json)")
        bench_rows = [
            (
                name,
                _fmt_s(rec.get("wall_s", 0.0)),
                rec.get("events", 0),
                _fmt_rate(rec.get("events_per_s", 0.0)),
            )
            for name, rec in sorted((bench.get("benchmarks") or {}).items())
        ]
        total = bench.get("total")
        if total:
            bench_rows.append(
                (
                    "TOTAL",
                    _fmt_s(total.get("wall_s", 0.0)),
                    total.get("events", 0),
                    _fmt_rate(total.get("events_per_s", 0.0)),
                )
            )
        out.append(
            format_table(("benchmark", "wall_s", "events", "events/s"), bench_rows)
        )

    return "\n".join(out)
