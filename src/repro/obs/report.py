"""Text dashboard over telemetry manifests and benchmark results.

``repro-experiments obs report m1.json m2.json --bench BENCH_results.json``
renders everything the observability layer knows about past runs as aligned
text tables: per-manifest totals, aggregated phase timings, individual run
records, campaign/cache effectiveness, and the benchmark baseline.

Rendering is deterministic for given inputs (sorted keys, fixed float
formats) — the golden test in ``tests/experiments/test_obs_report.py``
asserts the exact output for fixture manifests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple


def _fmt_s(v: Any) -> str:
    return f"{float(v):.2f}"


def _fmt_rate(v: Any) -> str:
    return f"{float(v):,.0f}"


def _hit_pct(hits: int, misses: int) -> str:
    total = hits + misses
    return f"{100.0 * hits / total:.0f}%" if total else "-"


def render_report(
    manifests: Sequence[Tuple[str, Dict[str, Any]]],
    bench: Optional[Dict[str, Any]] = None,
) -> str:
    """Render ``(label, manifest)`` pairs (+ optional bench data) as text."""
    # Local import: obs must stay importable from the simulator layers
    # without dragging in the experiments stack at module-import time.
    from ..experiments.reporting import format_table

    out: List[str] = ["=== repro observability report ==="]

    rows = []
    for label, m in manifests:
        store = m.get("store") or {}
        campaign = m.get("campaign") or {}
        rows.append(
            (
                label,
                _fmt_s(m.get("wall_s", 0.0)),
                m.get("events_executed", 0),
                _fmt_rate(m.get("events_per_s", 0.0)),
                len(m.get("runs") or ()),
                campaign.get("cached", "-"),
                campaign.get("executed", "-"),
                campaign.get("jobs", "-"),
                _hit_pct(store.get("hits", 0), store.get("misses", 0)),
            )
        )
    out.append(f"\n-- manifests ({len(rows)})")
    out.append(
        format_table(
            (
                "manifest",
                "wall_s",
                "events",
                "events/s",
                "runs",
                "cached",
                "simulated",
                "jobs",
                "store-hit",
            ),
            rows,
        )
    )

    phases: Dict[str, Dict[str, float]] = {}
    for _, m in manifests:
        for name, entry in (m.get("phases") or {}).items():
            agg = phases.setdefault(name, {"wall_s": 0.0, "count": 0})
            agg["wall_s"] += entry.get("wall_s", 0.0)
            agg["count"] += entry.get("count", 0)
    if phases:
        out.append("\n-- phases (aggregated)")
        out.append(
            format_table(
                ("phase", "wall_s", "count"),
                [
                    (name, _fmt_s(phases[name]["wall_s"]), int(phases[name]["count"]))
                    for name in sorted(phases)
                ],
            )
        )

    runs = [(label, r) for label, m in manifests for r in (m.get("runs") or ())]
    if runs:
        out.append(f"\n-- runs ({len(runs)})")
        out.append(
            format_table(
                ("manifest", "kind", "desc", "wall_s", "events", "completed"),
                [
                    (
                        label,
                        r.get("kind", "?"),
                        r.get("desc", "?"),
                        _fmt_s(r.get("wall_s", 0.0)),
                        r.get("events", 0),
                        "yes" if r.get("completed") else "NO",
                    )
                    for label, r in runs
                ],
            )
        )

    failures = sum(
        (m.get("campaign") or {}).get("failures", 0) for _, m in manifests
    )
    incomplete = sum(
        1 for _, r in runs if not r.get("completed", True)
    )
    if failures or incomplete:
        out.append(
            f"\n!! attention: {failures} campaign failure(s), "
            f"{incomplete} incomplete run(s)"
        )

    if bench:
        out.append("\n-- benchmarks (BENCH_results.json)")
        bench_rows = [
            (
                name,
                _fmt_s(rec.get("wall_s", 0.0)),
                rec.get("events", 0),
                _fmt_rate(rec.get("events_per_s", 0.0)),
            )
            for name, rec in sorted((bench.get("benchmarks") or {}).items())
        ]
        total = bench.get("total")
        if total:
            bench_rows.append(
                (
                    "TOTAL",
                    _fmt_s(total.get("wall_s", 0.0)),
                    total.get("events", 0),
                    _fmt_rate(total.get("events_per_s", 0.0)),
                )
            )
        out.append(
            format_table(("benchmark", "wall_s", "events", "events/s"), bench_rows)
        )

    return "\n".join(out)
