"""Text dashboard over telemetry manifests and benchmark results.

``repro-experiments obs report m1.json m2.json --bench BENCH_results.json``
renders everything the observability layer knows about past runs as aligned
text tables: per-manifest totals, aggregated phase timings, individual run
records, campaign/cache effectiveness, and the benchmark baseline.

Rendering is deterministic for given inputs (sorted keys, fixed float
formats) — the golden test in ``tests/experiments/test_obs_report.py``
asserts the exact output for fixture manifests.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

#: Manifest sections introduced at each schema version.  The report
#: renders a section only when the manifest's declared version includes
#: it — explicit dispatch, not ``dict.get`` guessing, so a v1 manifest
#: that happens to carry an ``analytics``-shaped key is never mistaken
#: for a v2 one and a v4 section absent from an old manifest degrades
#: with a note instead of a silent blank.
SECTIONS_BY_VERSION: Dict[int, Tuple[str, ...]] = {
    1: (
        "argv",
        "runs",
        "phases",
        "campaign",
        "store",
        "counters",
        "trace",
        "heartbeats",
    ),
    2: ("analytics",),
    3: ("supervisor",),
    4: ("profile", "export"),
    5: ("flightrec",),
}

#: Versions render_report accepts (mirrors telemetry.KNOWN_SCHEMA_VERSIONS
#: without importing it — report must render foreign manifests too).
KNOWN_VERSIONS = tuple(sorted(SECTIONS_BY_VERSION))


def manifest_version(manifest: Dict[str, Any]) -> int:
    """The manifest's declared schema version (v1 when absent/bogus)."""
    version = manifest.get("schema_version")
    return version if isinstance(version, int) and not isinstance(version, bool) else 1


def sections_for(version: int) -> FrozenSet[str]:
    """Every section a manifest of ``version`` may carry (cumulative)."""
    return frozenset(
        name
        for v, names in SECTIONS_BY_VERSION.items()
        if v <= version
        for name in names
    )


def manifest_section(manifest: Dict[str, Any], name: str) -> Optional[Any]:
    """The section, or None if this manifest's version does not define it."""
    if name not in sections_for(manifest_version(manifest)):
        return None
    return manifest.get(name)


def _fmt_s(v: Any) -> str:
    return f"{float(v):.2f}"


def _fmt_rate(v: Any) -> str:
    return f"{float(v):,.0f}"


def _hit_pct(hits: int, misses: int) -> str:
    total = hits + misses
    return f"{100.0 * hits / total:.0f}%" if total else "-"


def _fmt_opt(v: Any, fmt: str = "{:.2f}") -> str:
    return fmt.format(v) if isinstance(v, (int, float)) else "-"


def _fmt_conv(conv_ns: Any) -> str:
    return f"{conv_ns / 1e6:.3f}" if isinstance(conv_ns, (int, float)) else "never"


def render_report(
    manifests: Sequence[Tuple[str, Dict[str, Any]]],
    bench: Optional[Dict[str, Any]] = None,
) -> str:
    """Render ``(label, manifest)`` pairs (+ optional bench data) as text."""
    # Local import: obs must stay importable from the simulator layers
    # without dragging in the experiments stack at module-import time.
    from ..experiments.reporting import format_table

    out: List[str] = ["=== repro observability report ==="]

    rows = []
    for label, m in manifests:
        store = manifest_section(m, "store") or {}
        campaign = manifest_section(m, "campaign") or {}
        rows.append(
            (
                label,
                f"v{manifest_version(m)}",
                _fmt_s(m.get("wall_s", 0.0)),
                m.get("events_executed", 0),
                _fmt_rate(m.get("events_per_s", 0.0)),
                len(manifest_section(m, "runs") or ()),
                campaign.get("cached", "-"),
                campaign.get("executed", "-"),
                campaign.get("jobs", "-"),
                _hit_pct(store.get("hits", 0), store.get("misses", 0)),
            )
        )
    out.append(f"\n-- manifests ({len(rows)})")
    out.append(
        format_table(
            (
                "manifest",
                "schema",
                "wall_s",
                "events",
                "events/s",
                "runs",
                "cached",
                "simulated",
                "jobs",
                "store-hit",
            ),
            rows,
        )
    )

    phases: Dict[str, Dict[str, float]] = {}
    for _, m in manifests:
        for name, entry in (manifest_section(m, "phases") or {}).items():
            agg = phases.setdefault(name, {"wall_s": 0.0, "count": 0})
            agg["wall_s"] += entry.get("wall_s", 0.0)
            agg["count"] += entry.get("count", 0)
    if phases:
        out.append("\n-- phases (aggregated)")
        out.append(
            format_table(
                ("phase", "wall_s", "count"),
                [
                    (name, _fmt_s(phases[name]["wall_s"]), int(phases[name]["count"]))
                    for name in sorted(phases)
                ],
            )
        )

    runs = [
        (label, r)
        for label, m in manifests
        for r in (manifest_section(m, "runs") or ())
    ]
    if runs:
        out.append(f"\n-- runs ({len(runs)})")
        out.append(
            format_table(
                ("manifest", "kind", "desc", "wall_s", "events", "completed"),
                [
                    (
                        label,
                        r.get("kind", "?"),
                        r.get("desc", "?"),
                        _fmt_s(r.get("wall_s", 0.0)),
                        r.get("events", 0),
                        "yes" if r.get("completed") else "NO",
                    )
                    for label, r in runs
                ],
            )
        )

    # -- histograms (P² percentiles from the instrumentation registry) ----
    hist_rows = []
    for label, m in manifests:
        histograms = (manifest_section(m, "counters") or {}).get("histograms") or {}
        for name in sorted(histograms):
            h = histograms[name]
            hist_rows.append(
                (
                    label,
                    name,
                    int(h.get("count", 0)),
                    _fmt_opt(h.get("mean"), "{:.3g}"),
                    _fmt_opt(h.get("p50"), "{:.3g}"),
                    _fmt_opt(h.get("p95"), "{:.3g}"),
                    _fmt_opt(h.get("p99"), "{:.3g}"),
                )
            )
    if hist_rows:
        out.append(f"\n-- histograms ({len(hist_rows)})")
        out.append(
            format_table(
                ("manifest", "histogram", "count", "mean", "p50", "p95", "p99"),
                hist_rows,
            )
        )

    # -- live analytics (schema v2) ----------------------------------------
    analytics_rows = []
    missing_analytics = []
    for label, m in manifests:
        section = manifest_section(m, "analytics")
        if not section:
            missing_analytics.append((label, m.get("schema_version", "?")))
            continue
        for run in section.get("runs") or ():
            slowdown = run.get("slowdown") or {}
            analytics_rows.append(
                (
                    label,
                    run.get("desc", "?"),
                    run.get("samples", 0),
                    f"{run.get('flows_completed', 0)}/{run.get('flows', 0)}",
                    _fmt_opt(run.get("jain"), "{:.3f}"),
                    _fmt_conv(run.get("convergence_ns")),
                    _fmt_opt(slowdown.get("p50_slowdown")),
                    _fmt_opt(slowdown.get("p99_slowdown")),
                    _fmt_opt(slowdown.get("p999_slowdown")),
                )
            )
    if analytics_rows:
        out.append(f"\n-- live analytics ({len(analytics_rows)} run(s))")
        out.append(
            format_table(
                (
                    "manifest",
                    "run",
                    "samples",
                    "flows",
                    "jain",
                    "conv_ms",
                    "p50-slow",
                    "p99-slow",
                    "p999-slow",
                ),
                analytics_rows,
            )
        )
    if missing_analytics:
        labels = ", ".join(label for label, _ in missing_analytics)
        out.append(
            f"\n(note: no live-analytics section in {labels} — pre-v2 manifest "
            "or analytics disabled; re-run with --analytics to collect it)"
        )

    # -- supervision (schema v3) -------------------------------------------
    sup_rows = []
    quarantine_lines: List[str] = []
    for label, m in manifests:
        section = manifest_section(m, "supervisor")
        if not section:
            continue
        counts = section.get("status_counts") or {}
        sup_rows.append(
            (
                label,
                counts.get("ok", 0),
                counts.get("retried", 0),
                counts.get("salvaged", 0),
                counts.get("quarantined", 0),
                counts.get("lost", 0),
                section.get("workers_killed", 0),
                section.get("workers_lost", 0),
            )
        )
        for q in section.get("quarantines") or ():
            quarantine_lines.append(
                f"  {label}: {q.get('desc', '?')} [{q.get('classification', '?')}] "
                f"after {q.get('attempts', '?')} attempt(s): {q.get('error', '?')}"
            )
    if sup_rows:
        out.append(f"\n-- supervision ({len(sup_rows)} campaign(s))")
        out.append(
            format_table(
                (
                    "manifest",
                    "ok",
                    "retried",
                    "salvaged",
                    "quarantined",
                    "lost",
                    "kills",
                    "losses",
                ),
                sup_rows,
            )
        )
    if quarantine_lines:
        out.append(f"\n-- quarantined configs ({len(quarantine_lines)})")
        out.extend(quarantine_lines)

    # -- hot-path profile (schema v4) --------------------------------------
    profile_rows = []
    for label, m in manifests:
        section = manifest_section(m, "profile")
        if not section:
            continue
        total_s = section.get("wall_s") or 0.0
        prof_phases = section.get("phases") or {}
        for name in sorted(prof_phases, key=lambda n: -prof_phases[n].get("wall_s", 0.0)):
            entry = prof_phases[name]
            wall_s = entry.get("wall_s", 0.0)
            share = f"{100.0 * wall_s / total_s:.1f}%" if total_s > 0 else "-"
            profile_rows.append(
                (
                    label,
                    section.get("mode", "?"),
                    name,
                    f"{wall_s:.4f}",
                    int(entry.get("count", 0)),
                    share,
                )
            )
    if profile_rows:
        out.append(f"\n-- hot-path profile ({len(profile_rows)} phase row(s))")
        out.append(
            format_table(
                ("manifest", "mode", "phase", "wall_s", "count", "share"),
                profile_rows,
            )
        )

    # -- metrics export (schema v4) ----------------------------------------
    export_lines = []
    for label, m in manifests:
        section = manifest_section(m, "export")
        if not section:
            continue
        dest = section.get("metrics_out") or (
            f"port {section['metrics_port']}" if section.get("metrics_port") else "-"
        )
        export_lines.append(
            f"  {label}: {section.get('families', 0)} families, "
            f"{section.get('samples', 0)} samples -> {dest}"
        )
    if export_lines:
        out.append(f"\n-- metrics export ({len(export_lines)} manifest(s))")
        out.extend(export_lines)

    # -- fct decomposition (schema v5) -------------------------------------
    fr_rows = []
    decomp_rows = []
    for label, m in manifests:
        section = manifest_section(m, "flightrec")
        if not section:
            continue
        for run in section.get("runs") or ():
            totals = run.get("components_total") or {}
            run_dominant = max(totals, key=lambda k: totals[k]) if totals else "-"
            failures = run.get("conservation_failures", 0)
            fr_rows.append(
                (
                    label,
                    run.get("desc", "?"),
                    f"{run.get('flows_completed', 0)}/{run.get('flows_tracked', 0)}",
                    "OK" if not failures else f"{failures} FAIL",
                    _fmt_opt(run.get("max_residual_ns"), "{:.3g}"),
                    run_dominant,
                    len(run.get("links") or ()),
                    _fmt_conv((run.get("timeline") or {}).get("convergence_ns")),
                )
            )
            for d in (run.get("decompositions") or ())[:5]:
                comps = d.get("components") or {}
                dominant = d.get("dominant", "?")
                fct_ns = d.get("fct_ns") or 0.0
                share = (
                    f"{100.0 * comps.get(dominant, 0.0) / fct_ns:.0f}%"
                    if fct_ns > 0
                    else "-"
                )
                decomp_rows.append(
                    (
                        label,
                        run.get("desc", "?"),
                        d.get("flow_id", "?"),
                        f"{fct_ns / 1e6:.3f}",
                        _fmt_opt(d.get("slowdown")),
                        dominant,
                        share,
                        d.get("retransmits", 0),
                    )
                )
    if fr_rows:
        out.append(f"\n-- fct decomposition ({len(fr_rows)} run(s))")
        out.append(
            format_table(
                (
                    "manifest",
                    "run",
                    "flows",
                    "conserved",
                    "max-resid-ns",
                    "dominant",
                    "links",
                    "conv_ms",
                ),
                fr_rows,
            )
        )
    if decomp_rows:
        out.append(f"\n-- slowest flows ({len(decomp_rows)} flow(s))")
        out.append(
            format_table(
                (
                    "manifest",
                    "run",
                    "flow",
                    "fct_ms",
                    "slowdown",
                    "dominant",
                    "share",
                    "retx",
                ),
                decomp_rows,
            )
        )

    # A manifest from a *newer* schema than this build knows about still
    # renders (every known section degrades gracefully), but sections the
    # future version introduced are silently invisible — shout so nobody
    # mistakes the partial render for the whole story.
    max_known = max(KNOWN_VERSIONS)
    for label, m in manifests:
        declared = manifest_version(m)
        if declared > max_known:
            out.append(
                f"\n!! unknown schema version: {label} declares v{declared} but "
                f"this build only understands up to v{max_known} — sections "
                "introduced after that version are NOT shown; upgrade repro "
                "to render them"
            )

    # Truncated traces are worse than missing ones — they look complete in
    # the viewer while silently omitting the oldest events.  Shout.
    for label, m in manifests:
        trace = manifest_section(m, "trace") or {}
        dropped = trace.get("dropped", 0)
        if not dropped:
            counters = (manifest_section(m, "counters") or {}).get("counters") or {}
            dropped = counters.get("tracer.ring_dropped", 0)
        if dropped:
            emitted = trace.get("emitted", 0)
            capacity = trace.get("capacity", "?")
            out.append(
                f"\n!! trace truncated: {label} dropped {int(dropped)} of "
                f"{max(int(emitted), int(dropped))} trace event(s) (ring capacity "
                f"{capacity}) — oldest events are missing; re-run with a larger "
                "--trace-capacity"
            )

    failures = sum(
        (manifest_section(m, "campaign") or {}).get("failures", 0)
        for _, m in manifests
    )
    incomplete = sum(
        1 for _, r in runs if not r.get("completed", True)
    )
    if failures or incomplete:
        out.append(
            f"\n!! attention: {failures} campaign failure(s), "
            f"{incomplete} incomplete run(s)"
        )

    if bench:
        out.append("\n-- benchmarks (BENCH_results.json)")
        bench_rows = [
            (
                name,
                _fmt_s(rec.get("wall_s", 0.0)),
                rec.get("events", 0),
                _fmt_rate(rec.get("events_per_s", 0.0)),
            )
            for name, rec in sorted((bench.get("benchmarks") or {}).items())
        ]
        total = bench.get("total")
        if total:
            bench_rows.append(
                (
                    "TOTAL",
                    _fmt_s(total.get("wall_s", 0.0)),
                    total.get("events", 0),
                    _fmt_rate(total.get("events_per_s", 0.0)),
                )
            )
        out.append(
            format_table(("benchmark", "wall_s", "events", "events/s"), bench_rows)
        )

    return "\n".join(out)


# ---------------------------------------------------------------------------
# Flight-recorder verbs: ``obs why FLOW`` and ``obs flows --top-tail``
# ---------------------------------------------------------------------------


def flightrec_runs(manifest: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The manifest's flight-recorder run sections ([] when absent)."""
    section = manifest_section(manifest, "flightrec") or {}
    return list(section.get("runs") or ())


def _fmt_ms(ns: Any) -> str:
    return f"{float(ns) / 1e6:.3f}" if isinstance(ns, (int, float)) else "-"


def render_why(
    manifest: Dict[str, Any],
    flow_id: int,
    run_index: Optional[int] = None,
) -> Optional[str]:
    """Explain one flow's FCT as its component decomposition, or None.

    Searches every flight-recorder run (or just ``run_index``) for the
    flow; the first match wins.  Returns ``None`` when the manifest has
    no flightrec section or the flow is not among the retained
    decompositions (the section caps them — see ``flows_truncated``).
    """
    from ..experiments.reporting import format_table

    runs = flightrec_runs(manifest)
    candidates = (
        list(enumerate(runs))
        if run_index is None
        else [(run_index, runs[run_index])]
        if 0 <= run_index < len(runs)
        else []
    )
    for idx, run in candidates:
        for d in run.get("decompositions") or ():
            if d.get("flow_id") != flow_id:
                continue
            fct_ns = d.get("fct_ns") or 0.0
            comps = d.get("components") or {}
            out = [
                f"=== obs why: flow {flow_id} "
                f"(run {idx}: {run.get('kind', '?')}/{run.get('desc', '?')}) ===",
                f"path {d.get('src', '?')} -> {d.get('dst', '?')}, "
                f"{d.get('size_bytes', '?')} bytes, "
                f"started {_fmt_ms(d.get('start_ns'))} ms",
            ]
            line = f"fct {_fmt_ms(fct_ns)} ms"
            slowdown = d.get("slowdown")
            if isinstance(slowdown, (int, float)):
                line += (
                    f" (ideal {_fmt_ms(d.get('ideal_ns'))} ms, "
                    f"slowdown {slowdown:.2f})"
                )
            line += (
                f", {d.get('retransmits', 0)} retransmit(s), "
                f"{d.get('acks', 0)} ack(s)"
            )
            out.append(line)
            rows = []
            for name in sorted(comps, key=lambda n: -comps[n]):
                value = comps[name]
                share = f"{100.0 * value / fct_ns:.1f}%" if fct_ns > 0 else "-"
                rows.append((name, f"{value:,.1f}", share))
            out.append(format_table(("component", "ns", "share"), rows))
            dominant = d.get("dominant", "?")
            dom_share = (
                f"{100.0 * comps.get(dominant, 0.0) / fct_ns:.1f}%"
                if fct_ns > 0
                else "-"
            )
            out.append(
                f"dominant component: {dominant} ({dom_share} of FCT)"
            )
            residual = d.get("residual_ns", 0.0)
            status = "OK" if abs(residual) <= 1.0 else "VIOLATED (> 1 ns)"
            out.append(
                f"conservation: components sum to FCT, residual "
                f"{residual:.3g} ns [{status}]"
            )
            return "\n".join(out)
    return None


def render_flows(manifest: Dict[str, Any], top: int = 10) -> Optional[str]:
    """The top-``top`` tail flows across every flight-recorder run.

    Ranked by slowdown when the runs carried the ideal-FCT oracle,
    falling back to raw FCT.  Returns ``None`` when the manifest has no
    flightrec section.
    """
    from ..experiments.reporting import format_table

    runs = flightrec_runs(manifest)
    if not runs:
        return None
    entries = [
        (idx, run, d)
        for idx, run in enumerate(runs)
        for d in run.get("decompositions") or ()
    ]
    entries.sort(
        key=lambda e: (
            e[2].get("slowdown") or 0.0,
            e[2].get("fct_ns") or 0.0,
        ),
        reverse=True,
    )
    truncated = sum(run.get("flows_truncated", 0) for run in runs)
    rows = []
    for idx, run, d in entries[:top]:
        comps = d.get("components") or {}
        dominant = d.get("dominant", "?")
        fct_ns = d.get("fct_ns") or 0.0
        share = (
            f"{100.0 * comps.get(dominant, 0.0) / fct_ns:.0f}%"
            if fct_ns > 0
            else "-"
        )
        rows.append(
            (
                f"{idx}:{run.get('desc', '?')}",
                d.get("flow_id", "?"),
                _fmt_ms(fct_ns),
                _fmt_opt(d.get("slowdown")),
                dominant,
                share,
                d.get("retransmits", 0),
            )
        )
    out = [f"=== obs flows: top {len(rows)} tail flow(s) ==="]
    out.append(
        format_table(
            ("run", "flow", "fct_ms", "slowdown", "dominant", "share", "retx"),
            rows,
        )
    )
    if truncated:
        out.append(
            f"(note: {truncated} additional flow(s) not retained in the "
            "manifest — the flightrec section caps decompositions per run)"
        )
    return "\n".join(out)
