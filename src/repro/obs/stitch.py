"""Cross-worker trace stitching: one Perfetto timeline per campaign.

A supervised campaign with ``trace_shard_dir`` set leaves behind (a) the
journal — wall-clock spans of every attempt on every worker — and (b) one
Chrome-trace shard per successful run, drained from each worker's tracer
ring.  ``obs stitch`` merges them into a single Perfetto-loadable
``trace_event`` JSON:

* **pid 0** is the campaign track: one span for the whole campaign plus
  instants for quarantines, losses, and interruption;
* **one pid per worker process** (named ``worker <pid>``), whose ``runs``
  lane (tid 0) carries an ``X`` span per attempt — ``desc [status]`` —
  built purely from journal timestamps, so even runs without shards (or
  killed mid-flight) appear on the timeline;
* **shard events nest under their run span**: each shard's virtual-time
  events are linearly rescaled into the run's wall-clock window (virtual
  nanoseconds and wall seconds share no clock; rank order inside the run
  is what matters) and placed on tids offset by :data:`SHARD_TID_BASE`.

Everything is read-only over the journal + shard files; a missing or
corrupt shard degrades to the journal-only span for that run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: Shard event lanes start here (lane 0 is the per-worker "runs" lane).
SHARD_TID_BASE = 1

#: pid of the campaign-level track.
CAMPAIGN_PID = 0


def _meta(pid: int, name: str, value: str, tid: int = 0) -> dict:
    return {
        "ph": "M",
        "name": name,
        "pid": pid,
        "tid": tid,
        "args": {"name": value},
    }


def load_journal_records(journal_path: Any) -> List[Dict[str, Any]]:
    """All parseable records, in order (torn/corrupt lines skipped)."""
    records: List[Dict[str, Any]] = []
    with open(journal_path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(rec, dict) and isinstance(rec.get("ts"), (int, float)):
                records.append(rec)
    return records


def stitch_journal(
    journal_path: Any,
    *,
    shard_root: Optional[Any] = None,
) -> Dict[str, Any]:
    """Merge a campaign journal (+ its trace shards) into one Chrome trace.

    ``shard_root``, when given, re-roots relative shard paths (CI moves
    artifacts around); absolute paths in the journal are used as-is.
    """
    records = load_journal_records(journal_path)
    if not records:
        raise ValueError(f"{journal_path}: no parseable journal records")
    t0 = records[0]["ts"]

    def us(ts: float) -> float:
        return (ts - t0) * 1e6

    events: List[dict] = [
        _meta(CAMPAIGN_PID, "process_name", "campaign"),
        _meta(CAMPAIGN_PID, "thread_name", "phases"),
    ]
    worker_pids: List[int] = []
    campaign_start: Optional[float] = None
    campaign_end: Optional[float] = None
    #: key -> (pid, start_ts, desc, attempt) for attempts in flight
    open_attempts: Dict[str, Tuple[int, float, str, int]] = {}
    #: key -> (pid, start_us, dur_us) of the most recent closed span
    closed_spans: Dict[str, Tuple[int, float, float]] = {}
    shard_count = 0
    shards_missing = 0

    def ensure_worker(pid: Any) -> Optional[int]:
        if not isinstance(pid, int):
            return None
        if pid not in worker_pids:
            worker_pids.append(pid)
            events.append(_meta(pid, "process_name", f"worker {pid}"))
            events.append(_meta(pid, "thread_name", "runs"))
        return pid

    def close_span(key: str, end_ts: float, status: str) -> None:
        opened = open_attempts.pop(key, None)
        if opened is None:
            return
        pid, start_ts, desc, attempt = opened
        start_us = us(start_ts)
        dur_us = max(0.0, us(end_ts) - start_us)
        closed_spans[key] = (pid, start_us, dur_us)
        events.append(
            {
                "name": f"{desc} [{status}]",
                "cat": "run",
                "ph": "X",
                "ts": start_us,
                "dur": dur_us,
                "pid": pid,
                "tid": 0,
                "args": {"key": key, "attempt": attempt, "status": status},
            }
        )

    for rec in records:
        event = rec.get("event")
        ts = rec["ts"]
        key = rec.get("key")
        if event == "campaign":
            campaign_start = ts
        elif event == "attempt":
            pid = ensure_worker(rec.get("pid"))
            if pid is not None and key:
                open_attempts[key] = (
                    pid,
                    ts,
                    rec.get("desc") or key,
                    rec.get("attempt", 0),
                )
        elif event == "hb":
            ensure_worker(rec.get("pid"))
        elif event == "done":
            if key and not rec.get("cached"):
                close_span(key, ts, rec.get("status", "ok"))
        elif event == "fail":
            if key:
                close_span(key, ts, "fail")
        elif event == "reschedule":
            if key:
                close_span(key, ts, "killed")
        elif event == "lost":
            if key:
                close_span(key, ts, "lost")
            events.append(
                {
                    "name": f"lost {key}",
                    "cat": "campaign",
                    "ph": "i",
                    "s": "g",
                    "ts": us(ts),
                    "pid": CAMPAIGN_PID,
                    "tid": 0,
                }
            )
        elif event == "quarantine":
            events.append(
                {
                    "name": f"quarantine {rec.get('desc') or key}",
                    "cat": "campaign",
                    "ph": "i",
                    "s": "g",
                    "ts": us(ts),
                    "pid": CAMPAIGN_PID,
                    "tid": 0,
                }
            )
        elif event == "interrupted":
            events.append(
                {
                    "name": "interrupted",
                    "cat": "campaign",
                    "ph": "i",
                    "s": "g",
                    "ts": us(ts),
                    "pid": CAMPAIGN_PID,
                    "tid": 0,
                }
            )
            campaign_end = ts
        elif event == "end":
            campaign_end = ts
        elif event == "trace_shard":
            span = closed_spans.get(key or "")
            shard = _load_shard(rec.get("path"), shard_root)
            if shard is None:
                shards_missing += 1
            elif span is not None:
                events.extend(_embed_shard(shard, span))
                shard_count += 1

    if campaign_start is not None:
        end_ts = campaign_end if campaign_end is not None else records[-1]["ts"]
        events.append(
            {
                "name": "campaign",
                "cat": "campaign",
                "ph": "X",
                "ts": us(campaign_start),
                "dur": max(0.0, us(end_ts) - us(campaign_start)),
                "pid": CAMPAIGN_PID,
                "tid": 0,
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "journal": str(journal_path),
            "workers": len(worker_pids),
            "shards_embedded": shard_count,
            "shards_missing": shards_missing,
        },
    }


def _load_shard(path: Any, shard_root: Optional[Any]) -> Optional[Dict[str, Any]]:
    if not path:
        return None
    candidates = [Path(path)]
    if shard_root is not None:
        candidates.append(Path(shard_root) / Path(path).name)
    for candidate in candidates:
        try:
            shard = json.loads(candidate.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(shard, dict) and isinstance(shard.get("traceEvents"), list):
            return shard
    return None


def virtual_extent_us(events: List[dict]) -> float:
    """The latest timestamp (+duration) across a shard's virtual events."""
    extent = 0.0
    for ev in events:
        ts = ev.get("ts")
        if isinstance(ts, (int, float)):
            extent = max(extent, ts + (ev.get("dur") or 0.0))
    return extent


def rescale_events(
    events: List[dict],
    *,
    pid: int,
    start_us: float,
    dur_us: float,
) -> List[dict]:
    """Linearly map virtual-time events into a wall-clock window.

    This is THE virtual→wall rescale for the whole obs plane: journal
    shard events, flight-recorder link/queue series counters, and the
    fluid backend's rate/queue series all ride through here, so every
    lane of a merged Perfetto timeline shares one time base.  Virtual
    nanoseconds and wall seconds share no clock; rank order inside the
    window is what the mapping preserves.  Metadata (``ph == "M"``) and
    timestamp-less events are dropped; tids are shifted past the
    per-worker "runs" lane (:data:`SHARD_TID_BASE`).
    """
    extent = virtual_extent_us(events)
    scale = (dur_us / extent) if extent > 0 and dur_us > 0 else 0.0
    out: List[dict] = []
    seen_tids = set()
    for ev in events:
        ts = ev.get("ts")
        if ev.get("ph") == "M" or not isinstance(ts, (int, float)):
            continue
        tid = ev.get("tid", 0)
        tid = SHARD_TID_BASE + (tid if isinstance(tid, int) and tid >= 0 else 0)
        mapped = dict(ev)
        mapped["pid"] = pid
        mapped["tid"] = tid
        mapped["ts"] = start_us + ts * scale
        if isinstance(ev.get("dur"), (int, float)):
            mapped["dur"] = ev["dur"] * scale
        out.append(mapped)
        seen_tids.add(tid)
    for tid in sorted(seen_tids):
        out.append(_meta(pid, "thread_name", f"sim lane {tid - SHARD_TID_BASE}", tid))
    return out


def _embed_shard(
    shard: Dict[str, Any], span: Tuple[int, float, float]
) -> List[dict]:
    """Rescale one run's virtual-time shard into its wall-clock span."""
    pid, start_us, dur_us = span
    raw = [ev for ev in shard["traceEvents"] if isinstance(ev, dict)]
    return rescale_events(raw, pid=pid, start_us=start_us, dur_us=dur_us)


def write_stitched(
    journal_path: Any,
    out_path: Any,
    *,
    shard_root: Optional[Any] = None,
) -> Dict[str, Any]:
    """Stitch and write; returns the trace's ``otherData`` summary."""
    trace = stitch_journal(journal_path, shard_root=shard_root)
    Path(out_path).write_text(json.dumps(trace, sort_keys=True))
    return trace["otherData"]
