"""Run- and campaign-level telemetry: manifests, phase timers, heartbeats.

While the registry (:mod:`repro.obs.registry`) answers *what did the
simulator do* and the tracer (:mod:`repro.obs.tracer`) *when did it do it*,
this module answers *where did the wall-clock go*: per-run wall time and
event counts, per-phase timings inside the experiment runner, campaign
dedup/cache effectiveness, store hit rates, and live worker heartbeats.

The collector follows the same ``None``-global pattern as the other two
layers — :data:`TELEMETRY` is consulted by the runner and campaign code and
costs one identity test when disabled.

The end product is a **telemetry manifest**: a JSON document validated
against the checked-in schema (``telemetry_schema.json`` next to this
module).  ``repro-experiments --telemetry out.json`` writes one per
invocation; ``repro-experiments obs report`` renders any number of them
(plus ``BENCH_results.json``) as a text dashboard.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Manifest schema revisions this codebase understands.  Version 2 added
#: the ``analytics`` section (streaming convergence/tail estimates); version
#: 3 added the ``supervisor`` section (per-config statuses, quarantines,
#: worker kill/loss counts from the fault-tolerant campaign supervisor);
#: version 4 added the ``profile`` section (hot-path phase attribution from
#: ``obs/profiler.py``) and the ``export`` section (what the OpenMetrics
#: exporter published); version 5 added the ``flightrec`` section (per-flow
#: FCT decompositions, link utilization/queue series, and the convergence
#: timeline from ``obs/flightrec.py``).  Older manifests remain valid;
#: ``obs report`` dispatches sections by version (see
#: ``report.SECTIONS_BY_VERSION``).
KNOWN_SCHEMA_VERSIONS = (1, 2, 3, 4, 5)
SCHEMA_VERSION = 5
MANIFEST_KIND = "repro-telemetry"

_SCHEMA_PATH = Path(__file__).with_name("telemetry_schema.json")


class TelemetryCollector:
    """Accumulates run records, phase timings, and heartbeat lines."""

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        heartbeat_sink: Optional[Callable[[str], None]] = None,
    ):
        self.clock = clock
        self.runs: List[Dict[str, Any]] = []
        self.phases: Dict[str, Dict[str, float]] = {}
        self.heartbeats: List[str] = []
        self.campaign: Optional[Dict[str, Any]] = None
        self.supervisor: Optional[Dict[str, Any]] = None
        self._heartbeat_sink = heartbeat_sink

    # -- phases ------------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate wall time under ``name`` (re-entrant across calls)."""
        start = self.clock()
        try:
            yield
        finally:
            elapsed = self.clock() - start
            entry = self.phases.get(name)
            if entry is None:
                entry = self.phases[name] = {"wall_s": 0.0, "count": 0}
            entry["wall_s"] += elapsed
            entry["count"] += 1

    # -- runs --------------------------------------------------------------

    def record_run(
        self,
        kind: str,
        desc: str,
        *,
        wall_s: float,
        events: int,
        completed: bool = True,
        pid: Optional[int] = None,
    ) -> None:
        self.runs.append(
            {
                "kind": kind,
                "desc": desc,
                "wall_s": wall_s,
                "events": events,
                "completed": completed,
                "pid": pid,
            }
        )

    def record_campaign(
        self,
        *,
        requested: int,
        unique: int,
        cached: int,
        executed: int,
        jobs: int,
        wall_s: float,
        failures: int,
    ) -> None:
        self.campaign = {
            "requested": requested,
            "unique": unique,
            "cached": cached,
            "executed": executed,
            "jobs": jobs,
            "wall_s": wall_s,
            "failures": failures,
        }

    def record_supervisor(
        self,
        *,
        statuses: Dict[str, str],
        quarantines: List[Dict[str, Any]],
        workers_killed: int,
        workers_lost: int,
        retried: int,
        salvaged: int,
        journal: Optional[str] = None,
    ) -> None:
        """Attach the supervised campaign's fault-tolerance summary.

        ``statuses`` maps config key to final per-config state
        (``ok``/``retried``/``salvaged``/``quarantined``/``lost``);
        ``quarantines`` carries the replayable poison-config reports.
        """
        counts: Dict[str, int] = {}
        for status in statuses.values():
            counts[status] = counts.get(status, 0) + 1
        self.supervisor = {
            "statuses": dict(statuses),
            "status_counts": counts,
            "quarantines": list(quarantines),
            "workers_killed": workers_killed,
            "workers_lost": workers_lost,
            "retried": retried,
            "salvaged": salvaged,
            "journal": journal,
        }

    # -- heartbeats --------------------------------------------------------

    def heartbeat(self, message: str) -> None:
        """Record a live progress line (and forward it to the sink, if any)."""
        self.heartbeats.append(message)
        if self._heartbeat_sink is not None:
            self._heartbeat_sink(message)


#: The process-wide collector (``None`` = telemetry off).
TELEMETRY: Optional[TelemetryCollector] = None


def enable(collector: Optional[TelemetryCollector] = None, **kwargs: Any) -> TelemetryCollector:
    """Install (and return) the process-wide collector."""
    global TELEMETRY
    TELEMETRY = collector if collector is not None else TelemetryCollector(**kwargs)
    return TELEMETRY


def disable() -> None:
    global TELEMETRY
    TELEMETRY = None


def get() -> Optional[TelemetryCollector]:
    return TELEMETRY


@contextmanager
def collecting(**kwargs: Any) -> Iterator[TelemetryCollector]:
    """Enable a fresh collector for a ``with`` block, restoring on exit."""
    global TELEMETRY
    prev = TELEMETRY
    collector = TelemetryCollector(**kwargs)
    TELEMETRY = collector
    try:
        yield collector
    finally:
        TELEMETRY = prev


# ---------------------------------------------------------------------------
# Manifest assembly and validation
# ---------------------------------------------------------------------------


def build_manifest(
    collector: Optional[TelemetryCollector],
    *,
    wall_s: float,
    events_executed: int,
    argv: Optional[List[str]] = None,
    store_stats: Optional[Any] = None,
    counters: Optional[Dict[str, Any]] = None,
    trace: Optional[Any] = None,
    analytics: Optional[Dict[str, Any]] = None,
    profile: Optional[Dict[str, Any]] = None,
    export: Optional[Dict[str, Any]] = None,
    flightrec: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a schema-conformant manifest dict.

    ``store_stats`` is a :class:`repro.experiments.store.StoreStats` (duck-
    typed), ``counters`` a :meth:`Registry.snapshot` dict, ``trace`` an
    :class:`repro.obs.tracer.EventTracer`, ``analytics`` an
    :meth:`repro.obs.analytics.AnalyticsAggregator.section` dict,
    ``profile`` a :meth:`repro.obs.profiler.PhaseProfiler.section` dict,
    ``export`` a :func:`repro.obs.exporter.export_section` summary,
    ``flightrec`` a :meth:`repro.obs.flightrec.FlightRecorder.section` dict.
    """
    store = None
    if store_stats is not None:
        store = {
            "hits": store_stats.hits,
            "misses": store_stats.misses,
            "puts": store_stats.puts,
            "bytes_read": store_stats.bytes_read,
            "bytes_written": store_stats.bytes_written,
        }
    trace_info = None
    if trace is not None:
        trace_info = {
            "emitted": trace.emitted,
            "dropped": trace.dropped,
            "capacity": trace.capacity,
        }
    runs = list(collector.runs) if collector is not None else []
    phases = {
        name: {"wall_s": entry["wall_s"], "count": int(entry["count"])}
        for name, entry in (collector.phases.items() if collector else ())
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": MANIFEST_KIND,
        "argv": list(argv) if argv is not None else [],
        "wall_s": wall_s,
        "events_executed": events_executed,
        "events_per_s": events_executed / wall_s if wall_s > 0 else 0.0,
        "runs": runs,
        "phases": phases,
        "campaign": collector.campaign if collector is not None else None,
        "supervisor": collector.supervisor if collector is not None else None,
        "store": store,
        "counters": counters,
        "trace": trace_info,
        "analytics": analytics,
        "profile": profile,
        "export": export,
        "flightrec": flightrec,
        "heartbeats": list(collector.heartbeats) if collector is not None else [],
    }


def load_schema() -> Dict[str, Any]:
    """The checked-in JSON schema for telemetry manifests."""
    return json.loads(_SCHEMA_PATH.read_text())


def _validate_minimal(manifest: Dict[str, Any]) -> List[str]:
    """Dependency-free structural check (fallback when jsonschema is absent).

    Covers the required top-level shape only — enough to catch a manifest
    that would fail the real schema on structure, not every constraint.
    """
    errors: List[str] = []
    required = {
        "schema_version": int,
        "kind": str,
        "wall_s": (int, float),
        "events_executed": int,
        "events_per_s": (int, float),
        "runs": list,
        "phases": dict,
    }
    for key, typ in required.items():
        if key not in manifest:
            errors.append(f"missing required key {key!r}")
        elif not isinstance(manifest[key], typ) or isinstance(manifest[key], bool):
            errors.append(f"{key!r} has wrong type {type(manifest[key]).__name__}")
    if manifest.get("schema_version") not in (None, *KNOWN_SCHEMA_VERSIONS):
        errors.append(f"schema_version must be one of {KNOWN_SCHEMA_VERSIONS}")
    if manifest.get("kind") not in (None, MANIFEST_KIND):
        errors.append(f"kind must be {MANIFEST_KIND!r}")
    for i, run in enumerate(manifest.get("runs") or []):
        if not isinstance(run, dict):
            errors.append(f"runs[{i}] is not an object")
            continue
        for key in ("kind", "desc", "wall_s", "events", "completed"):
            if key not in run:
                errors.append(f"runs[{i}] missing required key {key!r}")
    return errors


def validate_manifest(manifest: Dict[str, Any]) -> List[str]:
    """Validate against the checked-in schema; [] means valid.

    Uses ``jsonschema`` when importable (a dev dependency; CI installs it)
    and falls back to a minimal structural check otherwise, so the library
    itself gains no hard dependency.
    """
    try:
        import jsonschema
    except ImportError:  # pragma: no cover - exercised where jsonschema absent
        return _validate_minimal(manifest)
    validator_cls = jsonschema.validators.validator_for(load_schema())
    validator = validator_cls(load_schema())
    return [
        f"{'/'.join(str(p) for p in err.absolute_path) or '<root>'}: {err.message}"
        for err in sorted(validator.iter_errors(manifest), key=lambda e: str(e.absolute_path))
    ]


def write_manifest(path: Any, manifest: Dict[str, Any]) -> Path:
    """Write a manifest as stable, human-diffable JSON."""
    out = Path(path)
    out.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return out
