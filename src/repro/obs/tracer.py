"""Structured event tracer: typed spans/instants into a bounded ring buffer.

The tracer records *what the simulation did* — flow lifecycles, MD/AI
decisions, fault windows, queue high-watermarks — as typed records in a
bounded ring (:class:`collections.deque` with ``maxlen``), and exports them
as Chrome ``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``)
or CSV.

Like the metric registry, the tracer is consulted through one module-level
global (``TRACER``) tested against ``None``, and recording is strictly
passive: no events are scheduled, no RNG is drawn, so traced runs are
byte-identical to untraced ones.

Record shape (one tuple per event, cheap to append)::

    (ph, name, cat, ts_ns, dur_ns, tid, args)

where ``ph`` is the Chrome phase — ``"X"`` complete span, ``"i"`` instant,
``"C"`` counter sample — ``ts_ns``/``dur_ns`` are virtual nanoseconds,
``tid`` is a small integer lane (flow id, node id, ...), and ``args`` is a
dict or ``None``.

Chrome's ``ts`` field is *microseconds*; the exporter converts.  The ring
drops the **oldest** records once full (``dropped`` counts them), which is
the right bias for post-mortem use: the end of a run is where incast
collapse, drains, and stragglers live.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List, Optional

from . import registry as obs_registry

#: Default ring capacity; ~65k events is a few MB and loads instantly in
#: Perfetto.  Pass a larger capacity for long trace-everything runs.
DEFAULT_CAPACITY = 65_536

#: Chrome phase codes (subset used here).
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_COUNTER = "C"


class EventTracer:
    """Bounded ring of typed trace records with Chrome/CSV export."""

    __slots__ = ("capacity", "_ring", "emitted", "dropped")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.emitted = 0  # total records ever offered
        self.dropped = 0  # records evicted by ring overflow

    # -- recording ---------------------------------------------------------

    def _push(self, record: tuple) -> None:
        ring = self._ring
        if len(ring) == self.capacity:
            self.dropped += 1
            # Overflow is a first-class signal: surface it in the registry
            # so manifests/exports carry it and `obs report` can warn that
            # the trace was truncated.  Off the common path — only paid
            # once the ring is already full.
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("tracer.ring_dropped").inc()
        ring.append(record)
        self.emitted += 1

    def instant(
        self,
        name: str,
        ts_ns: float,
        *,
        cat: str = "sim",
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        """A point event (Chrome phase ``i``)."""
        self._push((PH_INSTANT, name, cat, ts_ns, 0.0, tid, args))

    def complete(
        self,
        name: str,
        start_ns: float,
        dur_ns: float,
        *,
        cat: str = "sim",
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        """A span with explicit start and duration (Chrome phase ``X``)."""
        self._push((PH_COMPLETE, name, cat, start_ns, dur_ns, tid, args))

    def counter(
        self,
        name: str,
        ts_ns: float,
        values: Dict[str, float],
        *,
        cat: str = "sim",
    ) -> None:
        """A counter sample (Chrome phase ``C``); plots as a track."""
        self._push((PH_COUNTER, name, cat, ts_ns, 0.0, 0, dict(values)))

    # -- access ------------------------------------------------------------

    def events(self) -> List[tuple]:
        """The retained records, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    # -- export ------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The retained trace as a Chrome ``trace_event`` object.

        Times convert from virtual nanoseconds to the microseconds the
        format specifies; ``pid`` is always 0 (one simulated world).
        """
        trace_events = []
        for ph, name, cat, ts_ns, dur_ns, tid, args in self._ring:
            ev: dict = {
                "name": name,
                "cat": cat,
                "ph": ph,
                "ts": ts_ns / 1_000.0,
                "pid": 0,
                "tid": tid,
            }
            if ph == PH_COMPLETE:
                ev["dur"] = dur_ns / 1_000.0
            elif ph == PH_INSTANT:
                ev["s"] = "t"  # thread-scoped instant
            if args:
                ev["args"] = args
            trace_events.append(ev)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": {"emitted": self.emitted, "dropped": self.dropped},
        }

    def to_chrome_json(self) -> str:
        return json.dumps(self.to_chrome(), sort_keys=True)

    def drain_chrome(self) -> dict:
        """Export as Chrome JSON, then clear the ring and its counters.

        Supervised-campaign workers call this after each run to ship a
        per-run trace shard back to the parent (``obs stitch`` merges the
        shards); resetting ``emitted``/``dropped`` makes each shard's
        ``otherData`` describe that shard alone.
        """
        out = self.to_chrome()
        self._ring.clear()
        self.emitted = 0
        self.dropped = 0
        return out

    def to_csv(self) -> str:
        """Retained records as deterministic CSV (args JSON-encoded)."""
        # Lazy import: sim.trace pulls the simulator stack, which itself
        # imports this package — resolving at call time breaks the cycle.
        from ..sim.trace import rows_to_csv

        rows = [
            {
                "ph": ph,
                "name": name,
                "cat": cat,
                "ts_ns": ts_ns,
                "dur_ns": dur_ns,
                "tid": tid,
                "args": json.dumps(args, sort_keys=True) if args else "",
            }
            for ph, name, cat, ts_ns, dur_ns, tid, args in self._ring
        ]
        return rows_to_csv(
            ("ph", "name", "cat", "ts_ns", "dur_ns", "tid", "args"), rows
        )


#: The process-wide tracer instrumented sites consult (``None`` = off).
TRACER: Optional[EventTracer] = None


def enable(
    tracer: Optional[EventTracer] = None, *, capacity: int = DEFAULT_CAPACITY
) -> EventTracer:
    """Install (and return) the process-wide tracer."""
    global TRACER
    TRACER = tracer if tracer is not None else EventTracer(capacity)
    return TRACER


def disable() -> None:
    global TRACER
    TRACER = None


def enabled() -> bool:
    return TRACER is not None


def get() -> Optional[EventTracer]:
    return TRACER
