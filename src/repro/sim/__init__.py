"""ns-3-equivalent substrate: discrete-event packet-level network simulator.

Layering (bottom-up): :mod:`engine` (event loop) → :mod:`packet` /
:mod:`link` → :mod:`port` (queueing, ECN, INT, PFC) → :mod:`node` /
:mod:`switch` / :mod:`host` → :mod:`network` (wiring, routing, flows) →
:mod:`monitor` (samplers).
"""

from .engine import Event, SimulationError, Simulator
from .faults import (
    FaultPlan,
    LinkFlapInjector,
    PacketDropInjector,
    PacketFaultHook,
    SwitchBlackoutInjector,
)
from .flow import Flow, ReceiverState, SenderState
from .host import DEFAULT_MTU, Host
from .link import LinkSpec
from .monitor import GoodputMonitor, QueueMonitor
from .network import CompletionStatus, Network, RunBudget
from .node import Node
from .packet import (
    ACK,
    ACK_BYTES,
    CNP,
    DATA,
    HEADER_BYTES,
    PAUSE,
    AckContext,
    HopRecord,
    Packet,
)
from .pfc import PfcConfig, PfcEgressState, PfcIngress
from .port import Port, RedConfig
from .switch import RoutingError, Switch
from .trace import FlowSnapshot, FlowTracer, PortCounterSampler, PortSample
from .wheel import TimingWheel

# NOTE: repro.sim.turbo (TurboSimulator & friends) is deliberately NOT
# imported here — it requires numpy (the [perf] extra) and is pulled in
# lazily by Network(engine="turbo").

__all__ = [
    "ACK",
    "ACK_BYTES",
    "AckContext",
    "CNP",
    "CompletionStatus",
    "DATA",
    "DEFAULT_MTU",
    "Event",
    "FaultPlan",
    "Flow",
    "FlowSnapshot",
    "FlowTracer",
    "GoodputMonitor",
    "HEADER_BYTES",
    "HopRecord",
    "Host",
    "LinkFlapInjector",
    "LinkSpec",
    "Network",
    "Node",
    "PAUSE",
    "Packet",
    "PacketDropInjector",
    "PacketFaultHook",
    "PfcConfig",
    "PortCounterSampler",
    "PortSample",
    "PfcEgressState",
    "PfcIngress",
    "Port",
    "QueueMonitor",
    "ReceiverState",
    "RedConfig",
    "RoutingError",
    "RunBudget",
    "SenderState",
    "SimulationError",
    "Simulator",
    "Switch",
    "SwitchBlackoutInjector",
    "TimingWheel",
]
