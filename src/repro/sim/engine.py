"""Discrete-event simulation engine.

This is the bottom layer of the ns-3-equivalent substrate: a classic
calendar-of-events loop backed by :mod:`heapq`.  Design notes:

* Timestamps are ``float`` nanoseconds.  Events scheduled at identical
  timestamps are executed in FIFO scheduling order thanks to a monotonically
  increasing sequence number in the heap entries — simulation results are
  therefore fully deterministic for a given seed.
* Cancellation is *lazy*: cancelled events stay in the heap, flagged, and are
  discarded when popped.  This keeps ``cancel`` O(1), which matters because
  pacing timers are rescheduled constantly.  The simulator counts live
  cancellations exactly and compacts the heap once cancelled entries dominate
  it, so ``pending_events`` always reports *live* events and a long run
  cannot accumulate an arbitrarily large graveyard of dead entries.
* Event callbacks receive no arguments beyond those bound at scheduling time;
  components capture the simulator by reference and query :meth:`Simulator.now`
  when they need the current time.

Hot-path notes (this loop executes millions of times per experiment):

* :meth:`Simulator.schedule` pushes directly onto the heap — no delegation to
  :meth:`schedule_at` and no scheduling-into-the-past check, which a
  non-negative delay makes impossible by construction.
* :meth:`Simulator.schedule_detached` is the fire-and-forget variant used by
  the packet datapath: it returns no handle, and the engine recycles the
  :class:`Event` object through a free list once it has fired.  Only call
  sites that never keep a reference may use it — that is what makes the
  reuse safe.
* :meth:`Simulator.schedule_delivery` is the ordering-preserving primitive
  behind fused transmission (see :mod:`repro.sim.port`).  A packet delivery
  historically got its tie-break sequence number at serialization *end*
  (drawn inside the tx-done event); fusing tx-done away would draw it at
  serialization *start* and flip the execution order of same-timestamp
  events — observably, via INT queue-length stamps.  Heap entries therefore
  carry an explicit *schedule time* as the first tie-break:
  ``(fire_time, schedule_time, seq, ev)``.  For ordinary events the pair
  ``(schedule_time, seq)`` sorts identically to ``seq`` alone (sequence
  numbers are drawn monotonically in virtual time), so their semantics are
  untouched; a fused delivery is entered with ``schedule_time`` set to the
  serialization end and the sequence number the vanished tx-done event
  would have consumed — exactly the key the legacy schedule produced.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..check import invariants as check_invariants
from ..obs import flightrec as obs_flightrec
from ..obs import profiler as obs_profiler
from ..obs import registry as obs_registry

#: Cap on the Event free list used by :meth:`Simulator.schedule_detached`.
_POOL_MAX = 4096

#: Compaction trigger: sweep the heap once at least this many cancelled
#: entries exist *and* they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 64

#: Process-wide executed-event total, across all Simulator instances (the
#: benchmark harness and ``--profile`` read this to derive events/second).
_TOTAL_EVENTS_EXECUTED = 0


def total_events_executed() -> int:
    """Events executed by every simulator in this process (profiling aid)."""
    return _TOTAL_EVENTS_EXECUTED


class Event:
    """A scheduled callback.

    Users obtain instances from :meth:`Simulator.schedule` and may keep them
    only to call :meth:`cancel`.  All other attributes are engine-internal.
    An event reference is dead once the event has fired; cancelling a dead
    reference is a harmless no-op for events obtained from ``schedule``
    (detached events are never handed out, so they cannot be cancelled).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim", "detached")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim: Optional["Simulator"] = None
        self.detached = False

    def cancel(self) -> None:
        """Mark the event so the engine drops it instead of firing it."""
        if not self.cancelled:
            self.cancelled = True
            sim = self.sim
            if sim is not None:
                sim._cancelled += 1
                sim.cancellations += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.1f}ns seq={self.seq} {name} {state}>"


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling into the past)."""


class Simulator:
    """Event loop with float-nanosecond virtual time.

    Examples
    --------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(10.0, out.append, "a")
    >>> _ = sim.schedule(5.0, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    >>> sim.now()
    10.0
    """

    __slots__ = (
        "_heap",
        "_now",
        "_seq",
        "_cur_seq",
        "_events_executed",
        "_running",
        "_stopped",
        "_cancelled",
        "_pool",
        "cancellations",
        "compactions",
    )

    def __init__(self) -> None:
        # Heap entries are (fire_time, schedule_time, seq, Event) — see the
        # module docstring for why schedule_time participates in ordering.
        # The numeric prefix is unique (seq never repeats among coexisting
        # entries), so ordering never falls through to the Event object and
        # comparisons stay in C (a measured ~25% of total runtime otherwise).
        self._heap: list = []
        self._now: float = 0.0
        self._seq: int = 0
        # Sequence number of the event currently executing (run loop sets it
        # before each callback).  _tx_done uses it to key its delivery.
        self._cur_seq: int = 0
        self._events_executed: int = 0
        self._running: bool = False
        self._stopped: bool = False
        # Live count of cancelled-but-still-heaped entries; maintained exactly
        # by Event.cancel / the pop paths, consumed by _maybe_compact.
        self._cancelled: int = 0
        # Free list of detached Event objects (see schedule_detached).
        self._pool: list[Event] = []
        # Lifetime introspection totals (never decremented, unlike _cancelled).
        self.cancellations: int = 0
        self.compactions: int = 0

    # -- time ---------------------------------------------------------------

    def now(self) -> float:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far (profiling aid)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of *live* (non-cancelled) events still in the heap.

        Lazily-cancelled entries are excluded, so watchdogs and budget
        accounting built on this number are not inflated by dead timers.
        """
        return len(self._heap) - self._cancelled

    @property
    def heap_size(self) -> int:
        """Raw heap length including cancelled entries (introspection aid)."""
        return len(self._heap)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns after the current time."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        # Hot path: a non-negative delay cannot land in the past, so skip the
        # schedule_at validation and push directly.
        now = self._now
        time = now + delay
        seq = self._seq
        ev = Event(time, seq, fn, args)
        ev.sim = self
        heapq.heappush(self._heap, (time, now, seq, ev))
        self._seq = seq + 1
        return ev

    def schedule_detached(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget scheduling: no handle, Event object recycled.

        The returned-nothing contract is what makes the recycling safe: the
        caller cannot retain or cancel the event, so once it has fired the
        engine is free to reuse the object for a later detached schedule
        without any risk of a stale reference cancelling the wrong event.
        The packet datapath (serialization, propagation, monitor resampling)
        schedules millions of such events per run.
        """
        if delay < 0.0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        now = self._now
        time = now + delay
        seq = self._seq
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(time, seq, fn, args)
            ev.sim = self
            ev.detached = True
        heapq.heappush(self._heap, (time, now, seq, ev))
        self._seq = seq + 1

    def schedule_delivery(
        self,
        delay: float,
        t_end: float,
        tx_seq: Optional[int],
        fn: Callable[..., None],
        *args: Any,
    ) -> None:
        """Schedule a packet delivery, ordered as the legacy schedule would.

        ``t_end`` is the absolute time serialization finishes and ``tx_seq``
        the sequence number of the transmission-completion event (pass
        ``None`` from the fused path, which has no such event: a fresh
        number is drawn — the very number the tx-done would have consumed).
        The entry sorts at ``(t_end + delay, t_end, tx_seq)``, the exact key
        a receive scheduled from inside a tx-done event at ``t_end`` gets.
        The fire time is deliberately computed as ``t_end + delay`` — NOT
        ``now + (ser + delay)`` — because float addition is not associative
        and a one-ULP difference reorders the calendar observably.
        Detached semantics: no handle, Event recycled after firing.
        """
        time = t_end + delay
        if tx_seq is None:
            tx_seq = self._seq
            self._seq = tx_seq + 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = tx_seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(time, tx_seq, fn, args)
            ev.sim = self
            ev.detached = True
        heapq.heappush(self._heap, (time, t_end, tx_seq, ev))

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        ev = Event(time, self._seq, fn, args)
        ev.sim = self
        heapq.heappush(self._heap, (time, self._now, self._seq, ev))
        self._seq += 1
        return ev

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (None is tolerated)."""
        if event is not None:
            event.cancel()

    def _maybe_compact(self) -> None:
        """Sweep cancelled entries out of the heap once they dominate it.

        Compaction preserves (time, seq) ordering exactly — it only removes
        entries the run loop would have discarded anyway — so results are
        unchanged; what changes is that ``pending_events`` readers and the
        heap itself no longer pay for an unbounded graveyard of dead timers.
        """
        if self._cancelled >= _COMPACT_MIN_CANCELLED and (
            self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        self.compactions += 1
        live = [entry for entry in self._heap if not entry[-1].cancelled]
        recycled = self._pool
        if len(recycled) < _POOL_MAX:
            for entry in self._heap:
                ev = entry[-1]
                if ev.cancelled and ev.detached and len(recycled) < _POOL_MAX:
                    ev.fn = ev.args = None  # drop refs while parked
                    recycled.append(ev)
        heapq.heapify(live)
        self._heap = live
        self._cancelled = 0

    # -- execution ----------------------------------------------------------

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Execute events in timestamp order.

        Parameters
        ----------
        until:
            If given, stop once the next event's timestamp exceeds ``until``;
            virtual time is advanced to exactly ``until``.  Events *at*
            ``until`` are executed.
        max_events:
            If given, stop after executing this many events (safety valve for
            runaway feedback loops in tests).
        """
        # Dispatch, not inline hooks: the fast loop below must carry zero
        # profiler or flight-recorder instructions (benchmark guards assert
        # its bytecode is clean of both), so the profiled variant is a
        # separate twin loop and the recorder learns the run extent here,
        # once per run() call, after the loop returns.
        if obs_profiler.PHASE_HOOKS is not None:
            self._run_profiled(until, max_events)
        else:
            self._run_fast(until, max_events)
        fr = obs_flightrec.RECORDER
        if fr is not None:
            # Max virtual time reached: the denominator for link-utilization
            # parity with the fluid backend and the virtual-time extent that
            # `obs stitch` rescales against.
            fr.on_run_extent(self._now)

    def _run_fast(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        global _TOTAL_EVENTS_EXECUTED
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        heap = self._heap
        heappop = heapq.heappop
        pool = self._pool
        # Instrumentation is flushed as per-run deltas at run() exit — the
        # per-event hot loop below stays untouched whether obs is on or off.
        reg = obs_registry.STATS
        # Sanitizer: hoisted once per run() like the registry; when off the
        # loop pays one local None test per event.
        chk = check_invariants.CHECKER
        if reg is not None:
            seq_before = self._seq
            cancels_before = self.cancellations
            compactions_before = self.compactions
        try:
            while heap and not self._stopped:
                entry = heap[0]
                ev = entry[-1]
                if ev.cancelled:
                    heappop(heap)
                    self._cancelled -= 1
                    if ev.detached and len(pool) < _POOL_MAX:
                        ev.fn = ev.args = None
                        pool.append(ev)
                    continue
                t = entry[0]
                if until is not None and t > until:
                    break
                heappop(heap)
                if chk is not None:
                    chk.on_event(t, self._now)
                self._now = t
                self._cur_seq = entry[2]
                ev.fn(*ev.args)
                self._events_executed += 1
                executed += 1
                if ev.detached and len(pool) < _POOL_MAX:
                    ev.fn = ev.args = None
                    pool.append(ev)
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and not self._stopped and self._now < until:
                # Advance the clock even if the heap drained early so that
                # "run for 50 ms" semantics hold for monitors reading now().
                if not heap or heap[0][0] > until:
                    self._now = until
            self._maybe_compact()
        finally:
            self._running = False
            _TOTAL_EVENTS_EXECUTED += executed
            if reg is not None:
                reg.counter("engine.events_executed").inc(executed)
                reg.counter("engine.events_scheduled").inc(self._seq - seq_before)
                reg.counter("engine.events_cancelled").inc(
                    self.cancellations - cancels_before
                )
                reg.counter("engine.heap_compactions").inc(
                    self.compactions - compactions_before
                )
                reg.gauge("engine.heap_peak").update_max(len(heap))

    def _run_profiled(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Twin of :meth:`_run_fast` with per-event phase attribution.

        Semantically identical — same heap discipline, same counters, same
        clock advancement — so outputs stay byte-identical with profiling
        on; the only additions are the profiler push/pop pairs.  Loop
        bookkeeping (heap ops, cancelled discards) accrues to
        ``engine.loop``; each callback runs under the phase
        :func:`classify_callback` assigns to it.
        """
        global _TOTAL_EVENTS_EXECUTED
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        heap = self._heap
        heappop = heapq.heappop
        pool = self._pool
        reg = obs_registry.STATS
        chk = check_invariants.CHECKER
        prof = obs_profiler.PHASE_HOOKS
        classify = obs_profiler.classify_callback
        prof_push = prof.push
        prof_pop = prof.pop
        if reg is not None:
            seq_before = self._seq
            cancels_before = self.cancellations
            compactions_before = self.compactions
        prof_push("engine.loop")
        try:
            while heap and not self._stopped:
                entry = heap[0]
                ev = entry[-1]
                if ev.cancelled:
                    heappop(heap)
                    self._cancelled -= 1
                    if ev.detached and len(pool) < _POOL_MAX:
                        ev.fn = ev.args = None
                        pool.append(ev)
                    continue
                t = entry[0]
                if until is not None and t > until:
                    break
                heappop(heap)
                if chk is not None:
                    chk.on_event(t, self._now)
                self._now = t
                self._cur_seq = entry[2]
                prof_push(classify(ev.fn))
                try:
                    ev.fn(*ev.args)
                finally:
                    prof_pop()
                self._events_executed += 1
                executed += 1
                if ev.detached and len(pool) < _POOL_MAX:
                    ev.fn = ev.args = None
                    pool.append(ev)
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and not self._stopped and self._now < until:
                if not heap or heap[0][0] > until:
                    self._now = until
            self._maybe_compact()
        finally:
            prof_pop()
            self._running = False
            _TOTAL_EVENTS_EXECUTED += executed
            if reg is not None:
                reg.counter("engine.events_executed").inc(executed)
                reg.counter("engine.events_scheduled").inc(self._seq - seq_before)
                reg.counter("engine.events_cancelled").inc(
                    self.cancellations - cancels_before
                )
                reg.counter("engine.heap_compactions").inc(
                    self.compactions - compactions_before
                )
                reg.gauge("engine.heap_peak").update_max(len(heap))

    def run_until_idle(self, max_events: Optional[int] = None) -> None:
        """Run until no events remain (or ``max_events`` executed)."""
        self.run(until=None, max_events=max_events)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the heap is empty."""
        heap = self._heap
        pool = self._pool
        while heap and heap[0][-1].cancelled:
            ev = heapq.heappop(heap)[-1]
            self._cancelled -= 1
            if ev.detached and len(pool) < _POOL_MAX:
                ev.fn = ev.args = None
                pool.append(ev)
        return heap[0][0] if heap else None
