"""Discrete-event simulation engine.

This is the bottom layer of the ns-3-equivalent substrate: a classic
calendar-of-events loop backed by :mod:`heapq`.  Design notes:

* Timestamps are ``float`` nanoseconds.  Events scheduled at identical
  timestamps are executed in FIFO scheduling order thanks to a monotonically
  increasing sequence number in the heap entries — simulation results are
  therefore fully deterministic for a given seed.
* Cancellation is *lazy*: cancelled events stay in the heap, flagged, and are
  discarded when popped.  This keeps ``cancel`` O(1), which matters because
  pacing timers are rescheduled constantly.
* Event callbacks receive no arguments beyond those bound at scheduling time;
  components capture the simulator by reference and query :meth:`Simulator.now`
  when they need the current time.

The loop is intentionally simple (per the "make it work, make it right, then
profile" workflow): roughly half a million events per second in CPython, which
sets the experiment scaling recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Users obtain instances from :meth:`Simulator.schedule` and may keep them
    only to call :meth:`cancel`.  All other attributes are engine-internal.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine drops it instead of firing it."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.1f}ns seq={self.seq} {name} {state}>"


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling into the past)."""


class Simulator:
    """Event loop with float-nanosecond virtual time.

    Examples
    --------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(10.0, out.append, "a")
    >>> _ = sim.schedule(5.0, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    >>> sim.now()
    10.0
    """

    __slots__ = ("_heap", "_now", "_seq", "_events_executed", "_running", "_stopped")

    def __init__(self) -> None:
        # Heap entries are (time, seq, Event): the (time, seq) prefix is
        # unique, so ordering never falls through to the Event object and
        # comparisons stay in C (a measured ~25% of total runtime otherwise).
        self._heap: list[tuple[float, int, Event]] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._events_executed: int = 0
        self._running: bool = False
        self._stopped: bool = False

    # -- time ---------------------------------------------------------------

    def now(self) -> float:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far (profiling aid)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns after the current time."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        ev = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, (time, self._seq, ev))
        self._seq += 1
        return ev

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (None is tolerated)."""
        if event is not None:
            event.cancel()

    # -- execution ----------------------------------------------------------

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Execute events in timestamp order.

        Parameters
        ----------
        until:
            If given, stop once the next event's timestamp exceeds ``until``;
            virtual time is advanced to exactly ``until``.  Events *at*
            ``until`` are executed.
        max_events:
            If given, stop after executing this many events (safety valve for
            runaway feedback loops in tests).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap and not self._stopped:
                t, _seq, ev = heap[0]
                if ev.cancelled:
                    heappop(heap)
                    continue
                if until is not None and t > until:
                    break
                heappop(heap)
                self._now = t
                ev.fn(*ev.args)
                self._events_executed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and not self._stopped and self._now < until:
                # Advance the clock even if the heap drained early so that
                # "run for 50 ms" semantics hold for monitors reading now().
                if not heap or heap[0][0] > until:
                    self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: Optional[int] = None) -> None:
        """Run until no events remain (or ``max_events`` executed)."""
        self.run(until=None, max_events=max_events)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
