"""Composable, seeded fault injection for the simulator.

The paper's figures all run on a lossless PFC fabric; this module is how the
reproduction deliberately *breaks* that assumption.  Four failure modes are
modelled, each as a small injector object that knows how to wire itself into
a built :class:`repro.sim.network.Network`:

* :class:`PacketDropInjector` — random (Bernoulli per packet) or periodic
  (every Nth packet) drop and corruption on selected egress ports;
* :class:`LinkFlapInjector` — scheduled link down/up transitions, optionally
  repeating (a flapping link);
* :class:`SwitchBlackoutInjector` — every link of one switch goes down for an
  interval (a crashed/rebooting device);
* :class:`FaultPlan` — a named bundle of injectors installed together.

Design rules:

* **Zero hot-path cost when uninstalled.**  Ports carry a ``fault_hook``
  attribute that is ``None`` by default; the drain/enqueue code only pays a
  single attribute test.  Link state is one boolean read at transmit
  completion.
* **Determinism.**  Every injector owns its own :class:`random.Random`
  seeded from its ``seed`` field (per-port streams are derived with a fixed
  multiplier), so fault patterns are byte-reproducible and independent of the
  network's own RNG draws.
* **Counters, not prints.**  Injected events are counted on the hook and on
  the ports (``fault_drops``) so experiments can report exactly what was
  injected.

Recovery is the other half of the story: dropped data deadlocks a flow unless
the sender retransmits, so experiments that install packet faults should also
call :meth:`repro.sim.network.Network.enable_loss_recovery` (the experiment
runner does this automatically when a config carries a fault spec).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence, Tuple, Union

from ..obs import registry as obs_registry
from ..obs import tracer as obs_tracer
from .packet import DATA, Packet
from .port import FAULT_CORRUPT, FAULT_DROP, FAULT_NONE, Port

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import Network

#: Per-port RNG streams are derived as ``seed * _SEED_STRIDE + port_index``
#: so that two injectors with different seeds never share a stream.
_SEED_STRIDE = 1_000_003

#: A port selection: an explicit sequence of ports or a callable applied to
#: the network at install time (e.g. ``lambda net: net.switches[0].ports``).
PortSelector = Union[Sequence[Port], Callable[["Network"], Iterable[Port]]]


class PacketFaultHook:
    """Per-port packet-level fault decision, attached to ``Port.fault_hook``.

    One hook serves one port.  ``on_packet`` returns one of the ``FAULT_*``
    action codes defined in :mod:`repro.sim.port`; the port applies the
    action (drop before queueing, or mark the packet corrupt).
    """

    __slots__ = ("rng", "drop_prob", "corrupt_prob", "every_nth", "kinds",
                 "_counter", "drops", "corruptions")

    def __init__(
        self,
        rng: random.Random,
        *,
        drop_prob: float = 0.0,
        corrupt_prob: float = 0.0,
        every_nth: Optional[int] = None,
        kinds: Tuple[int, ...] = (DATA,),
    ):
        if not 0.0 <= drop_prob <= 1.0 or not 0.0 <= corrupt_prob <= 1.0:
            raise ValueError("fault probabilities must be in [0, 1]")
        if drop_prob + corrupt_prob > 1.0:
            raise ValueError("drop_prob + corrupt_prob must not exceed 1")
        if every_nth is not None and every_nth < 1:
            raise ValueError(f"every_nth must be >= 1, got {every_nth}")
        self.rng = rng
        self.drop_prob = drop_prob
        self.corrupt_prob = corrupt_prob
        self.every_nth = every_nth
        self.kinds = kinds
        self._counter = 0
        self.drops = 0
        self.corruptions = 0

    def on_packet(self, pkt: Packet) -> int:
        if pkt.kind not in self.kinds:
            return FAULT_NONE
        if self.every_nth is not None:
            self._counter += 1
            if self._counter % self.every_nth == 0:
                self.drops += 1
                reg = obs_registry.STATS
                if reg is not None:
                    reg.counter("faults.drops").inc()
                return FAULT_DROP
            return FAULT_NONE
        # One draw per candidate packet keeps the random stream aligned no
        # matter which faults are configured.
        r = self.rng.random()
        if r < self.drop_prob:
            self.drops += 1
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("faults.drops").inc()
            return FAULT_DROP
        if r < self.drop_prob + self.corrupt_prob:
            self.corruptions += 1
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("faults.corruptions").inc()
            return FAULT_CORRUPT
        return FAULT_NONE


class FaultInjector:
    """Base class: an injector wires one failure mode into a network."""

    def install(self, net: "Network") -> None:
        raise NotImplementedError


def _set_link_state_traced(net: "Network", a: int, b: int, up: bool) -> None:
    """``Network.set_link_state`` plus observability (same event shape)."""
    net.set_link_state(a, b, up)
    reg = obs_registry.STATS
    if reg is not None:
        reg.counter("faults.link_transitions").inc()
    tr = obs_tracer.TRACER
    if tr is not None:
        tr.instant(
            f"link {a}-{b} {'up' if up else 'down'}",
            net.sim.now(),
            cat="fault",
            args={"a": a, "b": b, "up": up},
        )


def _set_switch_state_traced(net: "Network", switch_id: int, up: bool) -> None:
    """``Network.set_switch_state`` plus observability (same event shape)."""
    net.set_switch_state(switch_id, up)
    reg = obs_registry.STATS
    if reg is not None:
        reg.counter("faults.switch_transitions").inc()
    tr = obs_tracer.TRACER
    if tr is not None:
        tr.instant(
            f"switch {switch_id} {'up' if up else 'down'}",
            net.sim.now(),
            cat="fault",
            args={"switch": switch_id, "up": up},
        )


def _resolve_ports(net: "Network", selector: PortSelector) -> List[Port]:
    ports = list(selector(net)) if callable(selector) else list(selector)
    if not ports:
        raise ValueError("port selector matched no ports")
    return ports


@dataclass
class PacketDropInjector(FaultInjector):
    """Random or periodic packet drop/corruption on selected egress ports.

    ``probability``/``corrupt_probability`` give Bernoulli per-packet faults;
    ``every_nth`` switches to deterministic periodic drops instead.  Control
    (PFC) frames are never candidates — losing them is modelled separately by
    the pause-quanta expiry in :mod:`repro.sim.pfc`.

    Liveness caveat: a periodic dropper can phase-lock with a go-back-N
    resend burst (burst length divisible by N puts the drop on the burst
    head every round), permanently starving the cumulative ACK.  That is a
    property of deterministic loss, not a recovery bug; use probabilistic
    drops for completion studies and ``every_nth`` for surgically dropping
    specific packets.  Timeouts surface the livelock as an incomplete run.
    """

    ports: PortSelector
    probability: float = 0.0
    corrupt_probability: float = 0.0
    every_nth: Optional[int] = None
    kinds: Tuple[int, ...] = (DATA,)
    seed: int = 0
    hooks: List[PacketFaultHook] = field(default_factory=list, repr=False)

    def install(self, net: "Network") -> None:
        for i, port in enumerate(_resolve_ports(net, self.ports)):
            if port.fault_hook is not None:
                raise ValueError(f"port {port.name} already has a fault hook")
            hook = PacketFaultHook(
                random.Random(self.seed * _SEED_STRIDE + i),
                drop_prob=self.probability,
                corrupt_prob=self.corrupt_probability,
                every_nth=self.every_nth,
                kinds=self.kinds,
            )
            port.fault_hook = hook
            self.hooks.append(hook)

    @property
    def total_drops(self) -> int:
        return sum(h.drops for h in self.hooks)

    @property
    def total_corruptions(self) -> int:
        return sum(h.corruptions for h in self.hooks)


@dataclass
class LinkFlapInjector(FaultInjector):
    """Scheduled down/up transitions on the link between two nodes.

    With ``period_ns`` set, the down/up cycle repeats ``count`` times (a
    flapping link); otherwise the link fails once at ``down_at_ns`` and
    recovers ``down_for_ns`` later.  Routing is rebuilt around the dead link
    on every transition (see ``Network.set_link_state``).
    """

    a: int
    b: int
    down_at_ns: float
    down_for_ns: float
    period_ns: Optional[float] = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.down_for_ns <= 0:
            raise ValueError("down_for_ns must be positive")
        if self.period_ns is not None and self.period_ns <= self.down_for_ns:
            raise ValueError("flap period must exceed the down interval")

    def install(self, net: "Network") -> None:
        # Fused transmission commits delivery at serialization start, which
        # would let packets survive a flap that should eat them — turn it off
        # up front so every transition sees the exact two-event datapath.
        net.disable_port_fusion()
        t = self.down_at_ns
        cycles = self.count if self.period_ns is not None else 1
        for _ in range(cycles):
            net.sim.schedule_at(t, _set_link_state_traced, net, self.a, self.b, False)
            net.sim.schedule_at(
                t + self.down_for_ns, _set_link_state_traced, net, self.a, self.b, True
            )
            if self.period_ns is not None:
                t += self.period_ns


@dataclass
class SwitchBlackoutInjector(FaultInjector):
    """Every link of one switch goes down for an interval (device crash)."""

    switch_id: int
    down_at_ns: float
    down_for_ns: float

    def __post_init__(self) -> None:
        if self.down_for_ns <= 0:
            raise ValueError("down_for_ns must be positive")

    def install(self, net: "Network") -> None:
        net.disable_port_fusion()  # same reasoning as LinkFlapInjector
        net.sim.schedule_at(
            self.down_at_ns, _set_switch_state_traced, net, self.switch_id, False
        )
        net.sim.schedule_at(
            self.down_at_ns + self.down_for_ns,
            _set_switch_state_traced,
            net,
            self.switch_id,
            True,
        )


class FaultPlan:
    """A bundle of injectors installed together.

    >>> plan = FaultPlan(
    ...     PacketDropInjector(ports=lambda net: net.switches[0].ports,
    ...                        probability=0.01, seed=3),
    ... )

    then ``plan.install(net)`` (and usually ``net.enable_loss_recovery()``).
    """

    def __init__(self, *injectors: FaultInjector):
        self.injectors: List[FaultInjector] = list(injectors)
        self.installed = False

    def add(self, injector: FaultInjector) -> "FaultPlan":
        self.injectors.append(injector)
        return self

    def install(self, net: "Network") -> "FaultPlan":
        if self.installed:
            raise RuntimeError("fault plan already installed")
        for injector in self.injectors:
            injector.install(net)
        self.installed = True
        return self

    def __len__(self) -> int:
        return len(self.injectors)
