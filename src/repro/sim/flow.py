"""Flow descriptors and per-endpoint runtime state.

A :class:`Flow` is the unit of workload: ``size`` payload bytes from ``src``
to ``dst`` starting at ``start_time``.  The same object is visible to both
endpoints (a simulation shortcut — the "wire format" state they could not
share, like sequence numbers, lives in the per-endpoint state classes).

Completion semantics match the HPCC artifact: a flow finishes when the
*sender* receives the ACK covering its final byte, so FCT includes the final
ACK's return trip.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cc.base import CongestionControl


class Flow:
    """Workload-level description plus completion bookkeeping."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size",
        "start_time",
        "priority",
        "ecmp_hash",
        "use_cnp",
        "finish_time",
        "started",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        size: int,
        start_time: float,
        priority: int = 0,
        ecmp_hash: Optional[int] = None,
    ):
        if size <= 0:
            raise ValueError(f"flow size must be positive, got {size}")
        if src == dst:
            raise ValueError(f"flow {flow_id}: src == dst == {src}")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.start_time = start_time
        self.priority = priority
        # A flow-stable hash pins the ECMP path; default derives from the id
        # with a multiplicative scramble so consecutive ids spread out.
        self.ecmp_hash = (
            ecmp_hash if ecmp_hash is not None else (flow_id * 2654435761) & 0xFFFFFFFF
        )
        self.use_cnp = False
        self.finish_time: Optional[float] = None
        self.started = False

    @property
    def completed(self) -> bool:
        return self.finish_time is not None

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time in nanoseconds (None until completed)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        done = f"fct={self.fct:.0f}ns" if self.completed else "running"
        return (
            f"<Flow {self.flow_id} {self.src}->{self.dst} size={self.size}B "
            f"start={self.start_time:.0f}ns {done}>"
        )


class SenderState:
    """Sender-side runtime state for one flow.

    The retransmission fields (``rto_*``, ``retransmits``,
    ``retransmitted_bytes``) are only active when the owning host has loss
    recovery enabled (see :meth:`repro.sim.host.Host.enable_loss_recovery`);
    on a lossless fabric they stay at their initial values.
    """

    __slots__ = (
        "flow",
        "cc",
        "next_seq",
        "acked",
        "next_allowed",
        "timer",
        "packets_sent",
        "last_ack_time",
        "rto_timer",
        "rto_ns",
        "rto_backoff",
        "retransmits",
        "retransmitted_bytes",
        "last_rto_acked",
        "probe_mode",
        "fr",
    )

    def __init__(self, flow: Flow, cc: "CongestionControl"):
        self.flow = flow
        self.cc = cc
        self.next_seq = 0
        self.acked = 0
        self.next_allowed = 0.0
        self.timer = None
        self.packets_sent = 0
        self.last_ack_time = 0.0
        self.rto_timer = None
        self.rto_ns = 0.0  # assigned when the host enables loss recovery
        self.rto_backoff = 1.0
        self.retransmits = 0
        self.retransmitted_bytes = 0
        # Anti-livelock probe (see Host._rto_fired): the cumulative ACK at
        # the previous RTO, and whether the sender is in single-packet
        # stop-and-wait mode because consecutive RTOs made no progress.
        self.last_rto_acked = -1
        self.probe_mode = False
        # Flight-recorder track (repro.obs.flightrec); None unless the
        # recorder was on when this flow started.
        self.fr = None

    @property
    def inflight(self) -> int:
        return self.next_seq - self.acked

    @property
    def done_sending(self) -> bool:
        return self.next_seq >= self.flow.size


class ReceiverState:
    """Receiver-side runtime state for one flow."""

    __slots__ = ("flow", "received", "last_cnp_time", "packets_received")

    def __init__(self, flow: Flow):
        self.flow = flow
        self.received = 0  # contiguous bytes received
        self.last_cnp_time = -float("inf")
        self.packets_received = 0
