"""Event-driven flow-level (fluid) simulation engine.

The packet engine executes one event per packet per hop — exact, but
~3x10^5 events/s caps experiments far below paper scale.  This engine
models each flow as a *rate process* instead: between events every active
flow transfers bytes at a piecewise-constant rate, and events fire only
when the rate picture changes (a flow arrives, departs, a link flaps, a
relaxation tick) or a monitor samples.  A 16-flow incast that costs the
packet engine ~200k events costs this engine a few hundred.

Rate model
----------

* **Targets** come from max-min fair water-filling
  (:func:`repro.core.fluid_model.max_min_allocation`) over *goodput*
  capacities (line rate derated by the MTU header overhead), with
  per-flow caps modelling congestion-control window limits.  A
  topology change only recomputes the water level inside the affected
  bottleneck component: flows sharing no link (transitively) with the
  changed flows keep their targets untouched.
* **Convergence lag** makes the backend CC-aware: instead of snapping to
  the target, each flow's intrinsic rate relaxes toward it first-order,
  ``r(t + dt) = T + (r(t) - T) * exp(-dt / tau)``, with ``tau`` the
  variant's convergence time constant (fast for VAI+SF variants, slow
  for default HPCC/Swift — see :mod:`repro.experiments.flowsim`).
  ``tau = 0`` snaps instantly (ideal fair sharing).  Periodic relaxation
  ticks (every ``min(tau)/4``) bound the staleness of the
  piecewise-constant approximation.
* **Feasibility**: intrinsic rates may transiently oversubscribe a link
  (a newly arrived flow starts at line rate, exactly like a fresh CC
  window).  Served rates are intrinsic rates scaled down per link so no
  link exceeds capacity; the overhang feeds a modelled queue on the
  monitored bottleneck links (diagnostic only — queued bytes are not
  re-delivered, the paper's queue figures need depth, not payload).

Completion semantics mirror the packet engine: a flow finishes when its
payload has drained at the served rate, plus a constant per-flow latency
offset chosen so an *uncontended* flow's FCT equals
:func:`repro.metrics.fct.ideal_fct_ns` exactly (slowdown 1.0).

ECMP fidelity: paths are walked through the switches' real routing
tables using the same ``ecmp_hash % len(group)`` selection as
:meth:`repro.sim.switch.Switch.route`, so a fluid flow occupies exactly
the links its packet twin would.  Link flaps reuse
:meth:`repro.sim.network.Network.set_link_state`, so reroutes see the
same post-flap tables.

Everything is deterministic: no RNG, sorted iteration everywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.fluid_model import max_min_allocation
from ..metrics.fct import ideal_fct_ns
from ..obs import flightrec as obs_flightrec
from ..obs import profiler as obs_profiler
from ..obs import tracer as obs_tracer
from .flow import Flow
from .network import CompletionStatus, Network
from .packet import HEADER_BYTES
from .port import Port
from .switch import Switch

__all__ = ["FluidEngine", "FluidFlowParams", "GOODPUT_FRACTION"]

#: MTU payload bytes (matches the packet engine's segmentation).
MTU_PAYLOAD = 1000

#: Fraction of line rate available to payload after per-packet headers.
GOODPUT_FRACTION = MTU_PAYLOAD / (MTU_PAYLOAD + HEADER_BYTES)

#: A flow with less than this many payload bytes left is complete.
_EPS_BYTES = 1e-6

#: Relative rate error below which relaxation is considered converged.
_RELAX_TOL = 1e-3

#: Floor for the relaxation tick interval (ns) — bounds event count.
_MIN_RELAX_TICK_NS = 500.0


@dataclass(frozen=True)
class FluidFlowParams:
    """Per-flow congestion-control abstraction for the fluid engine.

    ``tau_ns`` is the first-order convergence lag toward the max-min
    target (0 = instant).  ``cap_bytes_per_ns`` caps the intrinsic rate
    (window / base-RTT); None means only link capacities bind.
    ``start_fraction`` sets the arrival rate as a fraction of the path's
    goodput capacity (1.0 = line rate, like a fresh CC window).
    """

    tau_ns: float = 0.0
    cap_bytes_per_ns: Optional[float] = None
    start_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.tau_ns < 0:
            raise ValueError("tau_ns must be non-negative")
        if self.cap_bytes_per_ns is not None and self.cap_bytes_per_ns <= 0:
            raise ValueError("cap_bytes_per_ns must be positive")
        if not 0.0 < self.start_fraction <= 1.0:
            raise ValueError("start_fraction must be in (0, 1]")


#: A directed link: (upstream node id, downstream node id).
DLink = Tuple[int, int]


@dataclass
class _FlowState:
    flow: Flow
    params: FluidFlowParams
    remaining: float
    latency_ns: float
    path: Optional[Tuple[DLink, ...]] = None
    r_int: float = 0.0  # intrinsic (demanded) rate, bytes/ns
    r_srv: float = 0.0  # served rate after per-link feasibility scaling
    target: float = 0.0


@dataclass
class _Samples:
    times: List[float] = field(default_factory=list)
    values: List = field(default_factory=list)


class FluidEngine:
    """Flow-level simulation over a built (but packet-idle) network.

    Parameters
    ----------
    net:
        A wired :class:`~repro.sim.network.Network` with routing built.
        The engine never schedules packet events on it; it only reads the
        topology/routing and (for link flaps) toggles link state.
    monitored_ports:
        Egress ports whose modelled queue depth is sampled (the
        topology's bottleneck ports).
    rate_sample_interval_ns / queue_sample_interval_ns:
        Enable periodic sampling of per-flow served rates (Jain series)
        and summed monitored-queue depth.  None disables a sampler.
    """

    def __init__(
        self,
        net: Network,
        *,
        monitored_ports: Sequence[Port] = (),
        rate_sample_interval_ns: Optional[float] = None,
        queue_sample_interval_ns: Optional[float] = None,
        md_delay_ns: float = 0.0,
        track_link_utilization: bool = False,
    ):
        self.net = net
        #: How long an oversubscription burst feeds the modeled queue before
        #: multiplicative decrease lands (typically one base RTT).
        self.md_delay_ns = md_delay_ns
        self.now = 0.0
        self.events_executed = 0
        self._flows: Dict[int, _FlowState] = {}
        self._order: List[int] = []  # registration order (sampling columns)
        self._active: Set[int] = set()
        self._arrivals: List[Tuple[float, int]] = []
        self._arrival_idx = 0
        self._link_users: Dict[DLink, Set[int]] = {}
        self._monitored: Tuple[DLink, ...] = tuple(
            (p.owner.node_id, p.peer_node.node_id) for p in monitored_ports
        )
        self._queues: Dict[DLink, float] = {d: 0.0 for d in self._monitored}
        #: Served bytes per directed link (hybrid-mode derating input).
        #: Only accumulated when requested — it costs a full link scan per
        #: event and only :meth:`link_utilization` reads it.
        self._track_utilization = track_link_utilization
        self._link_bytes: Dict[DLink, float] = {}
        #: Goodput capacity per directed link; invalidated on link flaps
        #: (port lookups are far too slow for the per-event hot loops).
        self._cap_cache: Dict[DLink, float] = {}
        self._rate_interval = rate_sample_interval_ns
        self._queue_interval = queue_sample_interval_ns
        self._rate_samples = _Samples()
        self._queue_samples = _Samples()
        self._next_rate_sample = (
            rate_sample_interval_ns if rate_sample_interval_ns else math.inf
        )
        self._next_queue_sample = (
            queue_sample_interval_ns if queue_sample_interval_ns else math.inf
        )
        self._next_relax = math.inf
        #: (time, a, b, up) link state toggles, sorted by time.
        self._flaps: List[Tuple[float, int, int, bool]] = []
        self._flap_idx = 0

    # -- setup -------------------------------------------------------------

    def add_flow(self, flow: Flow, params: FluidFlowParams) -> None:
        if flow.flow_id in self._flows:
            raise ValueError(f"duplicate flow id {flow.flow_id}")
        latency = ideal_fct_ns(self.net, flow.src, flow.dst, flow.size)
        path = self._path_links(flow.src, flow.dst, flow.ecmp_hash)
        if path:
            bottleneck = min(self._capacity(d) for d in path)
            if bottleneck > 0:
                latency -= flow.size / bottleneck
        self._flows[flow.flow_id] = _FlowState(
            flow=flow,
            params=params,
            remaining=float(flow.size),
            latency_ns=max(latency, 0.0),
        )
        self._order.append(flow.flow_id)
        self._arrivals.append((flow.start_time, flow.flow_id))

    def schedule_link_flap(
        self,
        a: int,
        b: int,
        *,
        down_at_ns: float,
        down_for_ns: float,
        period_ns: Optional[float] = None,
        count: int = 1,
    ) -> None:
        """Register link down/up toggles (the fluid form of a link flap)."""
        for i in range(count):
            offset = (period_ns or 0.0) * i
            self._flaps.append((down_at_ns + offset, a, b, False))
            self._flaps.append((down_at_ns + offset + down_for_ns, a, b, True))

    # -- topology helpers --------------------------------------------------

    def _capacity(self, dlink: DLink) -> float:
        """Goodput capacity of a directed link in bytes/ns (0 when down)."""
        cached = self._cap_cache.get(dlink)
        if cached is not None:
            return cached
        u, v = dlink
        port = self.net.nodes[u].port_to[v]
        cap = (
            port.spec.rate_bps / 8e9 * GOODPUT_FRACTION if port.link_up else 0.0
        )
        self._cap_cache[dlink] = cap
        return cap

    def _path_links(
        self, src: int, dst: int, ecmp_hash: int
    ) -> Optional[Tuple[DLink, ...]]:
        """The directed links a flow occupies, via real ECMP tables.

        Mirrors the packet path hop by hop: hosts forward on their single
        uplink; switches pick ``group[hash % len(group)]`` from their
        routing table.  Returns None when the destination is unreachable
        (down links, blackout) — the flow then idles at rate 0 until a
        reroute event restores a path.
        """
        node = self.net.nodes[src]
        links: List[DLink] = []
        for _ in range(len(self.net.nodes)):
            if node.node_id == dst:
                return tuple(links)
            if isinstance(node, Switch):
                group = node.routes.get(dst)
                if not group:
                    return None
                port = group[ecmp_hash % len(group)] if len(group) > 1 else group[0]
            else:
                if not node.ports:
                    return None
                port = node.ports[0]
            if not port.link_up:
                return None
            links.append((node.node_id, port.peer_node.node_id))
            node = port.peer_node
        return None  # pragma: no cover - routing loop (defensive)

    # -- rate bookkeeping --------------------------------------------------

    def _occupy(self, fid: int) -> None:
        st = self._flows[fid]
        st.path = self._path_links(st.flow.src, st.flow.dst, st.flow.ecmp_hash)
        for dlink in st.path or ():
            self._link_users.setdefault(dlink, set()).add(fid)

    def _vacate(self, fid: int) -> None:
        st = self._flows[fid]
        for dlink in st.path or ():
            users = self._link_users.get(dlink)
            if users is not None:
                users.discard(fid)
                if not users:
                    del self._link_users[dlink]
        st.path = None

    def _component_of(self, seeds: Set[int]) -> Set[int]:
        """Active flows sharing links (transitively) with ``seeds``."""
        component: Set[int] = set()
        frontier = [fid for fid in sorted(seeds) if fid in self._active]
        while frontier:
            fid = frontier.pop()
            if fid in component:
                continue
            component.add(fid)
            for dlink in self._flows[fid].path or ():
                for other in self._link_users.get(dlink, ()):
                    if other not in component:
                        frontier.append(other)
        return component

    def _recompute_targets(self, changed: Set[int]) -> None:
        """Water-fill the bottleneck component(s) touched by ``changed``."""
        component = self._component_of(changed)
        if not component:
            return
        flow_links: Dict[int, Tuple[DLink, ...]] = {}
        caps: Dict[int, float] = {}
        capacities: Dict[DLink, float] = {}
        for fid in sorted(component):
            st = self._flows[fid]
            path = st.path or ()
            flow_links[fid] = path
            for dlink in path:
                if dlink not in capacities:
                    capacities[dlink] = self._capacity(dlink)
            if not path:
                caps[fid] = 0.0  # unroutable: park at zero
            elif st.params.cap_bytes_per_ns is not None:
                caps[fid] = st.params.cap_bytes_per_ns
        targets = max_min_allocation(capacities, flow_links, caps or None)
        for fid, target in targets.items():
            self._flows[fid].target = target

    def _relax_decay(self, dt: float) -> None:
        """First-order relaxation toward the *current* targets over ``dt``.

        Called before an event's state change is applied, so the elapsed
        interval decays toward the targets that were in force during it.
        """
        if dt <= 0.0:
            return
        flows = self._flows
        exp = math.exp
        for fid in self._active:
            st = flows[fid]
            tau = st.params.tau_ns
            if tau > 0.0:
                target = st.target
                delta = st.r_int - target
                if delta == 0.0:
                    continue
                decayed = delta * exp(-dt / tau)
                # Land exactly on the target once the residual is far below
                # any physical meaning; converged flows then cost nothing.
                if -1e-12 * target < decayed < 1e-12 * target:
                    st.r_int = target
                else:
                    st.r_int = target + decayed

    def _snap_zero_tau(self) -> None:
        for fid in self._active:
            st = self._flows[fid]
            if st.params.tau_ns == 0.0:
                st.r_int = st.target

    def _commit_feasibility(self) -> None:
        """Multiplicative decrease: make the scaled-down rates *intrinsic*.

        Called when congestion appears (an arrival oversubscribes a link, a
        flap reroutes flows onto fewer links).  Real CC cuts rates within
        an RTT of congestion onset — much faster than it converges to
        fairness — so the squeeze is immediate while the squeezed vector
        relaxes toward the fair targets with lag ``tau``.  This is what
        makes late arrivals (fresh window, full rate) hold more than their
        fair share while incumbents sit below it: the paper's unfairness
        signature, persisting for O(tau).

        The burst of excess demand between congestion onset and the cut —
        roughly one base RTT of (load - capacity) — is what a real switch
        buffers, so it is credited to the monitored queues here
        (``md_delay_ns``); the queues then drain via :meth:`_advance`
        whenever departures leave the links under-loaded.
        """
        if self.md_delay_ns > 0.0:
            for dlink in self._monitored:
                users = self._link_users.get(dlink, ())
                load = sum(self._flows[fid].r_int for fid in users)
                excess = load - self._capacity(dlink)
                if excess > 0.0:
                    self._queues[dlink] += excess * self.md_delay_ns
        for fid in self._active:
            st = self._flows[fid]
            st.r_int = st.r_srv

    def _snap_new_flows(self, fresh: Set[int]) -> None:
        """Arrivals start at line rate (or instantly at target for tau=0)."""
        for fid in sorted(fresh):
            st = self._flows[fid]
            if st.params.tau_ns == 0.0 or not st.path:
                st.r_int = st.target
                continue
            path_cap = min(self._capacity(d) for d in st.path)
            if st.params.cap_bytes_per_ns is not None:
                path_cap = min(path_cap, st.params.cap_bytes_per_ns)
            st.r_int = st.params.start_fraction * path_cap

    def _scale_served(self) -> None:
        """Served = intrinsic scaled so no link exceeds its capacity."""
        flows = self._flows
        caps = self._cap_cache
        factors: Dict[DLink, float] = {}
        for dlink, users in self._link_users.items():
            load = 0.0
            for fid in users:
                load += flows[fid].r_int
            if load <= 0.0:
                continue
            cap = caps.get(dlink)
            if cap is None:
                cap = self._capacity(dlink)
            if load > cap:
                factors[dlink] = cap / load
        for fid in self._active:
            st = flows[fid]
            if not st.path:
                st.r_srv = 0.0
                continue
            factor = 1.0
            if factors:
                for d in st.path:
                    f = factors.get(d)
                    if f is not None and f < factor:
                        factor = f
            st.r_srv = st.r_int * factor

    def _schedule_relax_tick(self) -> None:
        flows = self._flows
        min_tau = math.inf
        for fid in self._active:
            st = flows[fid]
            tau = st.params.tau_ns
            if tau <= 0.0 or tau >= min_tau:
                continue
            target, r_int = st.target, st.r_int
            scale = target if target > r_int else r_int
            if scale < 1e-9:
                scale = 1e-9
            delta = r_int - target
            if (delta if delta >= 0.0 else -delta) > _RELAX_TOL * scale:
                min_tau = tau
        if min_tau < math.inf:
            tick = min_tau / 4.0
            if tick < _MIN_RELAX_TICK_NS:
                tick = _MIN_RELAX_TICK_NS
            self._next_relax = self.now + tick
        else:
            self._next_relax = math.inf

    # -- time advancement --------------------------------------------------

    def _advance(self, dt: float) -> None:
        if dt <= 0.0:
            return
        flows = self._flows
        for fid in self._active:
            st = flows[fid]
            if st.r_srv > 0.0:
                remaining = st.remaining - st.r_srv * dt
                st.remaining = remaining if remaining > 0.0 else 0.0
        if self._track_utilization:
            link_bytes = self._link_bytes
            for dlink, users in self._link_users.items():
                served = 0.0
                for fid in users:
                    served += flows[fid].r_srv
                if served > 0.0:
                    link_bytes[dlink] = link_bytes.get(dlink, 0.0) + served * dt
        queues = self._queues
        for dlink in self._monitored:
            load = 0.0
            for fid in self._link_users.get(dlink, ()):
                load += flows[fid].r_int
            depth = queues[dlink] + (load - self._capacity(dlink)) * dt
            queues[dlink] = depth if depth > 0.0 else 0.0

    def _next_departure(self) -> float:
        flows = self._flows
        t = math.inf
        for fid in self._active:
            st = flows[fid]
            if st.r_srv > 0.0:
                eta = self.now + st.remaining / st.r_srv
                if eta < t:
                    t = eta
        return t

    # -- sampling ----------------------------------------------------------

    def _take_rate_sample(self) -> None:
        row = []
        for fid in self._order:
            st = self._flows[fid]
            row.append(st.r_srv * 8e9 if fid in self._active else 0.0)
        self._rate_samples.times.append(self.now)
        self._rate_samples.values.append(row)

    def _take_queue_sample(self) -> None:
        self._queue_samples.times.append(self.now)
        self._queue_samples.values.append(
            sum(self._queues[d] for d in self._monitored)
        )

    def rate_series(self) -> Tuple[List[float], List[List[float]]]:
        """(times, rates_bps rows) in flow registration order."""
        return self._rate_samples.times, self._rate_samples.values

    def queue_series(self) -> Tuple[List[float], List[float]]:
        """(times, summed monitored queue depth in bytes)."""
        return self._queue_samples.times, self._queue_samples.values

    def link_utilization(self, elapsed_ns: Optional[float] = None) -> Dict[DLink, float]:
        """Time-averaged served utilization per directed link in [0, 1].

        ``elapsed_ns`` defaults to the current simulation time.  Hybrid
        mode uses this to derate packet-network link rates by the fluid
        background load.  Utilization is measured against the link's
        *goodput* capacity regardless of its current up/down state.
        """
        if not self._track_utilization:
            raise RuntimeError(
                "link utilization was not tracked; construct the engine "
                "with track_link_utilization=True"
            )
        elapsed = self.now if elapsed_ns is None else elapsed_ns
        if elapsed <= 0.0:
            return {}
        out: Dict[DLink, float] = {}
        for dlink, served in sorted(self._link_bytes.items()):
            u, v = dlink
            spec = self.net.nodes[u].port_to[v].spec
            cap = spec.rate_bps / 8e9 * GOODPUT_FRACTION
            if cap > 0.0:
                out[dlink] = min(1.0, served / (cap * elapsed))
        return out

    def _emit_series_trace(self) -> None:
        """Mirror the sampled series onto the tracer as counter events.

        Parity with the packet backend's flight recorder: when both the
        recorder and the tracer are on, the fluid run's queue/rate series
        land in the trace shard as virtual-time counters (``cat``
        ``flightrec``), so ``obs stitch`` rescales them with every other
        shard event and merged Perfetto timelines stay aligned.
        """
        tr = obs_tracer.TRACER
        if tr is None or obs_flightrec.RECORDER is None:
            return
        for ts, depth in zip(self._queue_samples.times, self._queue_samples.values):
            tr.counter("queue fluid", ts, {"bytes": depth}, cat="flightrec")
        # Per-flow rate lanes are capped like the recorder's timeline —
        # a datacenter-scale run would otherwise emit thousands of tracks.
        shown = self._order[: obs_flightrec.TIMELINE_FLOWS_CAP]
        for row_idx, ts in enumerate(self._rate_samples.times):
            row = self._rate_samples.values[row_idx]
            for col, fid in enumerate(shown):
                tr.counter(
                    f"rate flow {fid}", ts, {"bps": row[col]}, cat="flightrec"
                )
        if self._track_utilization and self.now > 0.0:
            for (u, v), util in sorted(self.link_utilization().items()):
                tr.counter(
                    f"util {u}->{v}", self.now, {"utilization": util},
                    cat="flightrec",
                )

    # -- main loop ---------------------------------------------------------

    def run(self, timeout_ns: float) -> CompletionStatus:
        """Advance the fluid simulation until done or ``timeout_ns``."""
        events_start = self.events_executed
        self._arrivals.sort()
        self._flaps.sort()
        stop_reason = "completed"
        # Hoisted once per run, same idiom as the packet engine's registry
        # hook: off costs one local None test per loop iteration.
        prof = obs_profiler.PHASE_HOOKS
        if prof is not None:
            prof.push("fluid.run")
        while True:
            have_arrival = self._arrival_idx < len(self._arrivals)
            have_flap = self._flap_idx < len(self._flaps)
            if not self._active and not have_arrival:
                break
            candidates = [
                self._arrivals[self._arrival_idx][0] if have_arrival else math.inf,
                self._next_departure(),
                self._flaps[self._flap_idx][0] if have_flap else math.inf,
                self._next_relax,
                self._next_rate_sample,
                self._next_queue_sample,
            ]
            t_next = min(candidates)
            if math.isinf(t_next):
                stop_reason = "stalled"
                break
            if t_next > timeout_ns:
                self._advance(timeout_ns - self.now)
                self.now = timeout_ns
                stop_reason = "timeout"
                break
            dt = t_next - self.now
            self._advance(dt)
            if prof is None:
                self._relax_decay(dt)
            else:
                prof.push("fluid.relax")
                self._relax_decay(dt)
                prof.pop()
            self.now = t_next
            changed: Set[int] = set()
            fresh: Set[int] = set()

            # Departures: flows fully drained as of t_next.
            for fid in sorted(self._active):
                st = self._flows[fid]
                if st.remaining <= _EPS_BYTES:
                    st.remaining = 0.0
                    st.flow.finish_time = self.now + st.latency_ns
                    self._active.discard(fid)
                    # Seed the water-fill with the survivors that shared a
                    # link with the departing flow (it is inactive now, so it
                    # cannot seed the component itself).
                    for dlink in st.path or ():
                        changed |= self._link_users.get(dlink, set())
                    changed.add(fid)
                    self._vacate(fid)
                    st.r_int = st.r_srv = 0.0
                    self.events_executed += 1

            # Arrivals due now.
            while (
                self._arrival_idx < len(self._arrivals)
                and self._arrivals[self._arrival_idx][0] <= self.now
            ):
                _, fid = self._arrivals[self._arrival_idx]
                self._arrival_idx += 1
                st = self._flows[fid]
                st.flow.started = True
                self._active.add(fid)
                self._occupy(fid)
                changed.add(fid)
                fresh.add(fid)
                self.events_executed += 1

            # Link flaps due now: toggle state and re-path every active flow
            # (routing tables changed globally; flaps are rare).
            flapped = False
            while (
                self._flap_idx < len(self._flaps)
                and self._flaps[self._flap_idx][0] <= self.now
            ):
                _, a, b, up = self._flaps[self._flap_idx]
                self._flap_idx += 1
                self.net.set_link_state(a, b, up)
                self._cap_cache.clear()
                flapped = True
                self.events_executed += 1
            if flapped:
                for fid in sorted(self._active):
                    self._vacate(fid)
                for fid in sorted(self._active):
                    self._occupy(fid)
                changed |= self._active

            if changed:
                if prof is None:
                    self._recompute_targets(changed)
                else:
                    prof.push("fluid.relax")
                    self._recompute_targets(changed)
                    prof.pop()
                self._snap_new_flows(fresh)
            if self.now >= self._next_relax:
                self.events_executed += 1
            self._snap_zero_tau()
            self._scale_served()
            if fresh or flapped:
                self._commit_feasibility()
            self._schedule_relax_tick()

            if self.now >= self._next_rate_sample:
                self._take_rate_sample()
                self._next_rate_sample += self._rate_interval
                self.events_executed += 1
            if self.now >= self._next_queue_sample:
                self._take_queue_sample()
                self._next_queue_sample += self._queue_interval
                self.events_executed += 1

        if prof is not None:
            prof.pop()
        self._emit_series_trace()
        incomplete = tuple(
            sorted(fid for fid, st in self._flows.items() if not st.flow.completed)
        )
        return CompletionStatus(
            completed=not incomplete,
            stop_reason="completed" if not incomplete else stop_reason,
            incomplete_flows=incomplete,
            events_executed=self.events_executed - events_start,
        )
