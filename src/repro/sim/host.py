"""End-host model: sender scheduling (window + pacing) and receiver logic.

Senders follow the RDMA NIC model the paper assumes:

* a flow starts sending **at line rate** — its congestion-control module
  initializes window/rate to the line-rate BDP (Sec. IV: "new flows in RDMA
  networks often start sending packets at line rate");
* transmission is gated by both a byte window (inflight < cwnd) and an
  optional pacing rate, whichever is more restrictive;
* one ACK is generated per received data packet (no coalescing), echoing the
  INT telemetry, the ECN mark, and the sender's timestamp;
* for DCQCN flows the receiver emits at most one CNP per ``cnp_interval_ns``
  while marked packets keep arriving.

The send loop re-arms itself on ACK arrival (window opens) or via a pacing
timer, so there is no polling.

Loss recovery (off by default — the paper's fabric is lossless): when enabled
via :meth:`Host.enable_loss_recovery`, every flow keeps a retransmission
timer armed while data is unacknowledged.  If the cumulative ACK stalls for a
full RTO the sender performs **go-back-N**: it rewinds ``next_seq`` to the
last cumulative ACK and resends from there, doubling the RTO (exponential
backoff, capped) until progress resumes.  Receivers stay
cumulative-ACK-only; an out-of-order packet beyond a gap is *not* credited
(it re-ACKs the old cumulative edge), which is exactly what makes go-back-N
correct.  With recovery disabled the timer is never armed and the hot path
pays a single attribute test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..check import invariants as check_invariants
from ..obs import flightrec as obs_flightrec
from ..obs import registry as obs_registry
from ..obs import tracer as obs_tracer
from .engine import Simulator
from .flow import Flow, ReceiverState, SenderState
from .node import Node
from .packet import ACK, CNP, DATA, AckContext, Packet
from .port import Port

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cc.base import CongestionControl

#: Default payload bytes per packet (MTU), as used throughout the paper.
DEFAULT_MTU = 1000
#: DCQCN: minimum spacing between CNPs for one flow (50 microseconds).
DEFAULT_CNP_INTERVAL_NS = 50_000.0
#: Loss recovery: RTO = max(floor, scale x base RTT).  The scale leaves room
#: for queueing delay well beyond the unloaded RTT so that a healthy incast
#: never fires a spurious retransmission.
DEFAULT_RTO_SCALE = 16.0
DEFAULT_RTO_MIN_NS = 25_000.0
#: Exponential backoff cap: RTO never exceeds ``rto_ns * max_backoff``.
DEFAULT_MAX_RTO_BACKOFF = 64.0


class Host(Node):
    """A single-NIC end host running sender and receiver logic."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        name: str,
        *,
        mtu: int = DEFAULT_MTU,
        cnp_interval_ns: float = DEFAULT_CNP_INTERVAL_NS,
    ):
        super().__init__(sim, node_id, name)
        self.mtu = mtu
        self.cnp_interval_ns = cnp_interval_ns
        self.senders: Dict[int, SenderState] = {}
        self.receivers: Dict[int, ReceiverState] = {}
        self.completion_callbacks: List[Callable[[Flow], None]] = []
        # Loss-recovery knobs; disabled unless enable_loss_recovery() is called.
        self.loss_recovery = False
        self.rto_override_ns: Optional[float] = None
        self.rto_scale = DEFAULT_RTO_SCALE
        self.rto_min_ns = DEFAULT_RTO_MIN_NS
        self.max_rto_backoff = DEFAULT_MAX_RTO_BACKOFF
        self.corrupt_discards = 0
        # Reusable per-host AckContext: one is filled per ACK and handed to
        # cc.on_ack, which must not retain it (none do — they copy scalars
        # and at most keep the int_records list).  Saves an allocation on
        # every ACK, the single most frequent host-side object.
        self._ack_ctx = AckContext(
            now=0.0, ack_seq=0, newly_acked=0, ece=False,
            int_records=None, rtt=0.0, hops=0,
        )

    # -- wiring ---------------------------------------------------------------

    @property
    def nic(self) -> Port:
        """The host's single NIC egress port."""
        if not self.ports:
            raise RuntimeError(f"host {self.name} has no NIC port attached")
        return self.ports[0]

    @property
    def line_rate_bps(self) -> float:
        return self.nic.spec.rate_bps

    # -- sender ---------------------------------------------------------------

    def enable_loss_recovery(
        self,
        *,
        rto_ns: Optional[float] = None,
        rto_scale: float = DEFAULT_RTO_SCALE,
        rto_min_ns: float = DEFAULT_RTO_MIN_NS,
        max_backoff: float = DEFAULT_MAX_RTO_BACKOFF,
    ) -> None:
        """Turn on go-back-N retransmission for this host's sender flows.

        ``rto_ns`` fixes the base timeout outright; otherwise it is computed
        per flow as ``max(rto_min_ns, rto_scale * base_rtt)``.  Already
        registered flows are updated too.
        """
        self.loss_recovery = True
        self.rto_override_ns = rto_ns
        self.rto_scale = rto_scale
        self.rto_min_ns = rto_min_ns
        self.max_rto_backoff = max_backoff
        for state in self.senders.values():
            state.rto_ns = self._rto_for(state)

    def _rto_for(self, state: SenderState) -> float:
        if self.rto_override_ns is not None:
            return self.rto_override_ns
        return max(self.rto_min_ns, self.rto_scale * state.cc.env.base_rtt_ns)

    def add_sender_flow(self, flow: Flow, cc: "CongestionControl") -> SenderState:
        """Register an outgoing flow; transmission starts at flow.start_time."""
        if flow.flow_id in self.senders:
            raise ValueError(f"flow {flow.flow_id} already registered on {self.name}")
        state = SenderState(flow, cc)
        cc.bind(state, self)
        self.senders[flow.flow_id] = state
        if self.loss_recovery:
            state.rto_ns = self._rto_for(state)
        self.sim.schedule_at(max(flow.start_time, self.sim.now()), self._start_flow, state)
        return state

    def _start_flow(self, state: SenderState) -> None:
        state.flow.started = True
        fr = obs_flightrec.RECORDER
        if fr is not None:
            state.fr = fr.open_flow(state)
        state.cc.on_flow_start(self.sim.now())
        self._try_send(state)
        if self.loss_recovery:
            self._arm_rto(state)

    def _try_send(self, state: SenderState) -> None:
        """Emit as many packets as window and pacing currently allow."""
        flow = state.flow
        sim = self.sim
        mtu = self.mtu
        nic = self.nic
        while state.next_seq < flow.size:
            cc = state.cc
            if state.inflight >= cc.window_bytes:
                return  # window-blocked; ACK arrival re-triggers
            if state.probe_mode and state.next_seq > state.acked:
                return  # stop-and-wait probe: one unacked packet at a time
            now = sim.now()
            if now < state.next_allowed:
                self._arm_timer(state, state.next_allowed)
                return
            payload = min(mtu, flow.size - state.next_seq)
            pkt = Packet.data(
                flow.flow_id,
                self.node_id,
                flow.dst,
                state.next_seq,
                payload,
                send_ts=now,
                ecmp_hash=flow.ecmp_hash,
                priority=flow.priority,
            )
            state.next_seq += payload
            state.packets_sent += 1
            chk = check_invariants.CHECKER
            if chk is not None:
                chk.on_send(state)
            fr = obs_flightrec.RECORDER
            if fr is not None:
                track = state.fr
                if track is not None:
                    # Closes [cursor, now] as CC-throttle (pacing idle) and
                    # stamps the packet before the NIC enqueue sees it.
                    fr.on_send(track, pkt, now)
            nic.enqueue(pkt)
            rate = cc.pacing_rate_bps
            if rate is not None and rate > 0.0:
                state.next_allowed = now + pkt.size * 8.0 / rate * 1e9

    def _arm_timer(self, state: SenderState, at: float) -> None:
        timer = state.timer
        if timer is not None and not timer.cancelled and timer.time <= at:
            return
        if timer is not None:
            timer.cancel()
        state.timer = self.sim.schedule_at(at, self._timer_fired, state)

    def _timer_fired(self, state: SenderState) -> None:
        state.timer = None
        self._try_send(state)

    # -- loss recovery -----------------------------------------------------------

    def _arm_rto(self, state: SenderState, *, reset: bool = False) -> None:
        """Arm the retransmission timer (idempotent unless ``reset``)."""
        if state.flow.completed:
            return
        if reset and state.rto_timer is not None:
            state.rto_timer.cancel()
            state.rto_timer = None
        if state.rto_timer is None:
            state.rto_timer = self.sim.schedule(
                state.rto_ns * state.rto_backoff, self._rto_fired, state
            )

    def _rto_fired(self, state: SenderState) -> None:
        state.rto_timer = None
        flow = state.flow
        if flow.completed:
            return
        if state.next_seq <= state.acked:
            # Nothing in flight (pacing gap / window fully acknowledged but
            # flow unfinished): keep watching without counting a timeout.
            self._arm_rto(state)
            return
        # Consecutive RTOs without cumulative-ACK progress mean the rewound
        # burst keeps losing the same packet — a deterministic dropper (e.g.
        # FaultConfig.drop_every_nth) can phase-lock with the go-back-N burst
        # and starve the flow forever.  Degrade to a single-packet
        # stop-and-wait probe: a periodic dropper cannot hit every probe, so
        # the cumulative ACK is guaranteed to advance eventually, at which
        # point normal windowed sending resumes (see _receive_ack).
        if state.acked == state.last_rto_acked:
            state.probe_mode = True
        state.last_rto_acked = state.acked
        # Go-back-N: rewind to the last cumulative ACK and resend from there.
        state.retransmits += 1
        state.retransmitted_bytes += state.next_seq - state.acked
        reg = obs_registry.STATS
        if reg is not None:
            reg.counter("host.retransmissions").inc()
            reg.counter("host.retransmitted_bytes").inc(state.next_seq - state.acked)
        tr = obs_tracer.TRACER
        if tr is not None:
            tr.instant(
                f"rto flow {flow.flow_id}",
                self.sim.now(),
                cat="loss",
                tid=flow.flow_id,
                args={"rewind_to": state.acked, "backoff": state.rto_backoff},
            )
        fr = obs_flightrec.RECORDER
        if fr is not None:
            track = state.fr
            if track is not None:
                # The stall this timeout ends is retransmission recovery; the
                # benign re-arm branch above deliberately has no hook.
                fr.on_retx(track, self.sim.now())
        state.next_seq = state.acked
        state.rto_backoff = min(state.rto_backoff * 2.0, self.max_rto_backoff)
        state.cc.on_timeout(self.sim.now())
        self._arm_rto(state)
        self._try_send(state)

    # -- receiver ---------------------------------------------------------------

    def add_receiver_flow(self, flow: Flow) -> ReceiverState:
        if flow.flow_id in self.receivers:
            raise ValueError(f"flow {flow.flow_id} already received on {self.name}")
        state = ReceiverState(flow)
        self.receivers[flow.flow_id] = state
        return state

    # -- datapath ------------------------------------------------------------------

    def receive(self, pkt: Packet, in_port: Optional[Port]) -> None:
        if pkt.is_control:
            if in_port is not None:
                in_port.apply_pause(pkt)
            return
        if pkt.corrupt:
            # CRC failure: the packet (data, ACK or CNP alike) is discarded
            # silently; sender-side loss recovery covers the gap.
            self.corrupt_discards += 1
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("host.corrupt_discards").inc()
            return
        kind = pkt.kind
        if kind == DATA:
            self._receive_data(pkt)
        elif kind == ACK:
            self._receive_ack(pkt)
        elif kind == CNP:
            self._receive_cnp(pkt)

    def _receive_data(self, pkt: Packet) -> None:
        state = self.receivers.get(pkt.flow_id)
        if state is None:
            raise RuntimeError(
                f"{self.name}: data for unknown flow {pkt.flow_id} ({pkt!r})"
            )
        state.packets_received += 1
        # Cumulative-ACK discipline: only packets that extend the contiguous
        # prefix advance ``received``.  A packet beyond a loss-induced gap
        # must NOT be credited (go-back-N will resend the gap); a duplicate
        # or overlapping retransmission advances by its novel suffix only.
        end = pkt.end_seq()
        if pkt.seq <= state.received and end > state.received:
            state.received = end
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_data(state, pkt)
        now = self.sim.now()
        if state.flow.use_cnp and pkt.ece:
            if now - state.last_cnp_time >= self.cnp_interval_ns:
                state.last_cnp_time = now
                self.nic.enqueue(Packet.cnp(pkt.flow_id, self.node_id, pkt.src))
        self.nic.enqueue(Packet.ack(pkt, state.received, now))

    def _receive_ack(self, pkt: Packet) -> None:
        state = self.senders.get(pkt.flow_id)
        if state is None:
            raise RuntimeError(f"{self.name}: ACK for unknown flow {pkt.flow_id}")
        flow = state.flow
        now = self.sim.now()
        newly = pkt.seq - state.acked
        if newly < 0:
            newly = 0
        else:
            state.acked = pkt.seq
        state.last_ack_time = now
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_ack(state, pkt)
        if self.loss_recovery and newly > 0:
            # Forward progress: reset the backoff and restart the RTO clock,
            # and leave stop-and-wait probing (the phase-lock is broken).
            state.rto_backoff = 1.0
            state.probe_mode = False
            state.last_rto_acked = -1
            self._arm_rto(state, reset=True)
        fr = obs_flightrec.RECORDER
        if fr is not None:
            track = state.fr
            if track is not None:
                # Every ACK (duplicates included) closes [cursor, now] using
                # the round-trip breakdown echoed on the packet's stamp.
                fr.on_ack(track, pkt.fr, state.acked, now)
        ctx = self._ack_ctx
        ctx.now = now
        ctx.ack_seq = pkt.seq
        ctx.newly_acked = newly
        ctx.ece = pkt.ece
        ctx.int_records = pkt.int_records
        ctx.rtt = now - pkt.send_ts
        ctx.hops = pkt.hops
        state.cc.on_ack(ctx)
        if state.acked >= flow.size and not flow.completed:
            flow.finish_time = now
            if state.rto_timer is not None:
                state.rto_timer.cancel()
                state.rto_timer = None
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("host.flows_completed").inc()
            tr = obs_tracer.TRACER
            if tr is not None:
                # Flow lifecycle as one complete span: start -> last ACK.
                tr.complete(
                    f"flow {flow.flow_id}",
                    flow.start_time,
                    now - flow.start_time,
                    cat="flow",
                    tid=flow.flow_id,
                    args={
                        "src": flow.src,
                        "dst": flow.dst,
                        "size_bytes": flow.size,
                        "retransmits": state.retransmits,
                    },
                )
            if fr is not None:
                track = state.fr
                if track is not None:
                    # The final ACK just closed the last interval, so the
                    # six components now telescope to exactly the FCT; this
                    # checks conservation (and the sanitizer cross-check).
                    fr.on_complete(track, state, now)
            for cb in self.completion_callbacks:
                cb(flow)
            return
        self._try_send(state)

    def _receive_cnp(self, pkt: Packet) -> None:
        state = self.senders.get(pkt.flow_id)
        if state is None:
            raise RuntimeError(f"{self.name}: CNP for unknown flow {pkt.flow_id}")
        state.cc.on_cnp(self.sim.now())
        # Rate may have dropped; pacing timer handles future sends. No-op here.
