"""End-host model: sender scheduling (window + pacing) and receiver logic.

Senders follow the RDMA NIC model the paper assumes:

* a flow starts sending **at line rate** — its congestion-control module
  initializes window/rate to the line-rate BDP (Sec. IV: "new flows in RDMA
  networks often start sending packets at line rate");
* transmission is gated by both a byte window (inflight < cwnd) and an
  optional pacing rate, whichever is more restrictive;
* one ACK is generated per received data packet (no coalescing), echoing the
  INT telemetry, the ECN mark, and the sender's timestamp;
* for DCQCN flows the receiver emits at most one CNP per ``cnp_interval_ns``
  while marked packets keep arriving.

The send loop re-arms itself on ACK arrival (window opens) or via a pacing
timer, so there is no polling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from .engine import Simulator
from .flow import Flow, ReceiverState, SenderState
from .node import Node
from .packet import ACK, CNP, DATA, AckContext, Packet
from .port import Port

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cc.base import CongestionControl

#: Default payload bytes per packet (MTU), as used throughout the paper.
DEFAULT_MTU = 1000
#: DCQCN: minimum spacing between CNPs for one flow (50 microseconds).
DEFAULT_CNP_INTERVAL_NS = 50_000.0


class Host(Node):
    """A single-NIC end host running sender and receiver logic."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        name: str,
        *,
        mtu: int = DEFAULT_MTU,
        cnp_interval_ns: float = DEFAULT_CNP_INTERVAL_NS,
    ):
        super().__init__(sim, node_id, name)
        self.mtu = mtu
        self.cnp_interval_ns = cnp_interval_ns
        self.senders: Dict[int, SenderState] = {}
        self.receivers: Dict[int, ReceiverState] = {}
        self.completion_callbacks: List[Callable[[Flow], None]] = []

    # -- wiring ---------------------------------------------------------------

    @property
    def nic(self) -> Port:
        """The host's single NIC egress port."""
        if not self.ports:
            raise RuntimeError(f"host {self.name} has no NIC port attached")
        return self.ports[0]

    @property
    def line_rate_bps(self) -> float:
        return self.nic.spec.rate_bps

    # -- sender ---------------------------------------------------------------

    def add_sender_flow(self, flow: Flow, cc: "CongestionControl") -> SenderState:
        """Register an outgoing flow; transmission starts at flow.start_time."""
        if flow.flow_id in self.senders:
            raise ValueError(f"flow {flow.flow_id} already registered on {self.name}")
        state = SenderState(flow, cc)
        cc.bind(state, self)
        self.senders[flow.flow_id] = state
        self.sim.schedule_at(max(flow.start_time, self.sim.now()), self._start_flow, state)
        return state

    def _start_flow(self, state: SenderState) -> None:
        state.flow.started = True
        state.cc.on_flow_start(self.sim.now())
        self._try_send(state)

    def _try_send(self, state: SenderState) -> None:
        """Emit as many packets as window and pacing currently allow."""
        flow = state.flow
        sim = self.sim
        mtu = self.mtu
        nic = self.nic
        while state.next_seq < flow.size:
            cc = state.cc
            if state.inflight >= cc.window_bytes:
                return  # window-blocked; ACK arrival re-triggers
            now = sim.now()
            if now < state.next_allowed:
                self._arm_timer(state, state.next_allowed)
                return
            payload = min(mtu, flow.size - state.next_seq)
            pkt = Packet.data(
                flow.flow_id,
                self.node_id,
                flow.dst,
                state.next_seq,
                payload,
                send_ts=now,
                ecmp_hash=flow.ecmp_hash,
                priority=flow.priority,
            )
            state.next_seq += payload
            state.packets_sent += 1
            nic.enqueue(pkt)
            rate = cc.pacing_rate_bps
            if rate is not None and rate > 0.0:
                state.next_allowed = now + pkt.size * 8.0 / rate * 1e9

    def _arm_timer(self, state: SenderState, at: float) -> None:
        timer = state.timer
        if timer is not None and not timer.cancelled and timer.time <= at:
            return
        if timer is not None:
            timer.cancel()
        state.timer = self.sim.schedule_at(at, self._timer_fired, state)

    def _timer_fired(self, state: SenderState) -> None:
        state.timer = None
        self._try_send(state)

    # -- receiver ---------------------------------------------------------------

    def add_receiver_flow(self, flow: Flow) -> ReceiverState:
        if flow.flow_id in self.receivers:
            raise ValueError(f"flow {flow.flow_id} already received on {self.name}")
        state = ReceiverState(flow)
        self.receivers[flow.flow_id] = state
        return state

    # -- datapath ------------------------------------------------------------------

    def receive(self, pkt: Packet, in_port: Optional[Port]) -> None:
        if pkt.is_control:
            if in_port is not None:
                in_port.apply_pause(pkt)
            return
        kind = pkt.kind
        if kind == DATA:
            self._receive_data(pkt)
        elif kind == ACK:
            self._receive_ack(pkt)
        elif kind == CNP:
            self._receive_cnp(pkt)

    def _receive_data(self, pkt: Packet) -> None:
        state = self.receivers.get(pkt.flow_id)
        if state is None:
            raise RuntimeError(
                f"{self.name}: data for unknown flow {pkt.flow_id} ({pkt!r})"
            )
        state.packets_received += 1
        # Paths are flow-pinned and the fabric is lossless, so arrival is
        # in-order; the max() guards the (untriggered) duplicated case.
        end = pkt.end_seq()
        if end > state.received:
            state.received = end
        now = self.sim.now()
        if state.flow.use_cnp and pkt.ece:
            if now - state.last_cnp_time >= self.cnp_interval_ns:
                state.last_cnp_time = now
                self.nic.enqueue(Packet.cnp(pkt.flow_id, self.node_id, pkt.src))
        self.nic.enqueue(Packet.ack(pkt, state.received, now))

    def _receive_ack(self, pkt: Packet) -> None:
        state = self.senders.get(pkt.flow_id)
        if state is None:
            raise RuntimeError(f"{self.name}: ACK for unknown flow {pkt.flow_id}")
        flow = state.flow
        now = self.sim.now()
        newly = pkt.seq - state.acked
        if newly < 0:
            newly = 0
        else:
            state.acked = pkt.seq
        state.last_ack_time = now
        ctx = AckContext(
            now=now,
            ack_seq=pkt.seq,
            newly_acked=newly,
            ece=pkt.ece,
            int_records=pkt.int_records,
            rtt=now - pkt.send_ts,
            hops=pkt.hops,
        )
        state.cc.on_ack(ctx)
        if state.acked >= flow.size and not flow.completed:
            flow.finish_time = now
            for cb in self.completion_callbacks:
                cb(flow)
            return
        self._try_send(state)

    def _receive_cnp(self, pkt: Packet) -> None:
        state = self.senders.get(pkt.flow_id)
        if state is None:
            raise RuntimeError(f"{self.name}: CNP for unknown flow {pkt.flow_id}")
        state.cc.on_cnp(self.sim.now())
        # Rate may have dropped; pacing timer handles future sends. No-op here.
