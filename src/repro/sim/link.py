"""Point-to-point link description.

A physical cable is modelled as two independent unidirectional channels, one
per direction, each owned by the egress :class:`repro.sim.port.Port` on its
sending side.  This module holds only the immutable description shared by
wiring code; the dynamic behaviour (serialization, queueing) lives in the
port.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import serialization_time_ns


@dataclass(frozen=True)
class LinkSpec:
    """Immutable description of one unidirectional channel.

    Attributes
    ----------
    rate_bps:
        Line rate in bits per second.
    prop_delay_ns:
        Propagation delay in nanoseconds (speed-of-light latency, exclusive
        of serialization).
    """

    rate_bps: float
    prop_delay_ns: float

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {self.rate_bps}")
        if self.prop_delay_ns < 0:
            raise ValueError(
                f"propagation delay must be non-negative, got {self.prop_delay_ns}"
            )

    def serialization_ns(self, size_bytes: int) -> float:
        """Serialization time for a packet of ``size_bytes`` on this channel."""
        return serialization_time_ns(size_bytes, self.rate_bps)

    def one_way_ns(self, size_bytes: int) -> float:
        """Serialization plus propagation for one packet."""
        return self.serialization_ns(size_bytes) + self.prop_delay_ns
