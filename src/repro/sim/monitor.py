"""Periodic samplers for queue depth and per-flow goodput.

Monitors are plain event-loop citizens: they schedule themselves at a fixed
interval and append to Python lists (converted to NumPy arrays on demand, so
the hot path stays allocation-cheap and the analysis path gets vectorized
data — the split the HPC guides recommend).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .engine import Simulator
from .flow import Flow
from .port import Port


class PeriodicSampler:
    """A self-rescheduling fixed-interval callback — the monitor pattern.

    The first tick fires at the current simulation time, then every
    ``interval_ns`` after.  ``stop()`` cancels the pending heap event so a
    run-until-empty loop never spins an extra wakeup (the regression
    ``tests/sim/test_monitor_stop.py`` guards).

    Both monitors below subclass this; external samplers (the live
    analytics ticker in :mod:`repro.obs.analytics`) compose with it by
    passing any zero-argument callable as ``fn``.
    """

    def __init__(self, sim: Simulator, interval_ns: float, fn=None):
        if interval_ns <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.interval_ns = interval_ns
        self._fn = fn if fn is not None else self._sample
        self._stopped = False
        self._event = None  # the pending self-rescheduled sample event

    def start(self) -> "PeriodicSampler":
        self._event = self.sim.schedule(0.0, self._tick)
        return self

    def stop(self) -> None:
        """Stop sampling and cancel the pending event (no heap residue)."""
        self._stopped = True
        self.sim.cancel(self._event)
        self._event = None

    def _tick(self) -> None:
        if self._stopped:
            return
        self._fn()
        self._event = self.sim.schedule(self.interval_ns, self._tick)

    def _sample(self) -> None:  # pragma: no cover - subclasses override
        raise NotImplementedError


class QueueMonitor(PeriodicSampler):
    """Samples the queue occupancy of one or more ports at a fixed interval."""

    def __init__(
        self,
        sim: Simulator,
        ports: Sequence[Port],
        interval_ns: float,
        *,
        aggregate: str = "sum",
    ):
        if aggregate not in ("sum", "max"):
            raise ValueError(f"aggregate must be 'sum' or 'max', got {aggregate!r}")
        super().__init__(sim, interval_ns)
        self.ports = list(ports)
        self.aggregate = aggregate
        self.times: List[float] = []
        self.values: List[float] = []

    def _sample(self) -> None:
        qlens = [p.queue_bytes for p in self.ports]
        value = max(qlens) if self.aggregate == "max" else sum(qlens)
        self.times.append(self.sim.now())
        self.values.append(value)

    def series(self) -> tuple:
        """(times_ns, queue_bytes) as NumPy arrays."""
        return np.asarray(self.times), np.asarray(self.values)

    def max_depth(self) -> float:
        return max(self.values, default=0.0)

    def mean_depth(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0


class GoodputMonitor(PeriodicSampler):
    """Samples per-flow delivered bytes to derive goodput time series.

    ``received`` counters live on the destination host's receiver state; the
    monitor polls the flows' receivers through the network's node table, so it
    needs only the flows themselves.
    """

    def __init__(
        self,
        sim: Simulator,
        flows: Sequence[Flow],
        nodes: Sequence,
        interval_ns: float,
    ):
        super().__init__(sim, interval_ns)
        self.flows = list(flows)
        self.nodes = nodes
        self.times: List[float] = []
        self.samples: List[List[int]] = []  # delivered bytes per flow

    def _delivered(self, flow: Flow) -> int:
        receiver = self.nodes[flow.dst].receivers.get(flow.flow_id)
        return receiver.received if receiver is not None else 0

    def _sample(self) -> None:
        self.times.append(self.sim.now())
        self.samples.append([self._delivered(f) for f in self.flows])

    def rates_bps(self) -> tuple:
        """Per-interval goodput for each flow.

        Returns ``(mid_times_ns, rates)`` where ``rates`` has shape
        ``(len(times) - 1, n_flows)`` in bits/second.
        """
        t = np.asarray(self.times)
        delivered = np.asarray(self.samples, dtype=float)
        if len(t) < 2:
            return np.empty(0), np.empty((0, len(self.flows)))
        dt = np.diff(t)[:, None]  # ns
        rates = np.diff(delivered, axis=0) * 8.0 / dt * 1e9
        mids = (t[:-1] + t[1:]) / 2.0
        return mids, rates
