"""Network assembly and experiment orchestration.

:class:`Network` owns the simulator, the devices, and the wiring, and offers
the high-level operations experiments need:

* ``add_host`` / ``add_switch`` / ``connect`` — topology construction;
* ``build_routing`` — ECMP tables from shortest paths (call after wiring);
* ``add_flow`` — register a flow with a congestion-control instance;
* ``run`` — advance the event loop;
* path/RTT utilities used to configure protocols (base RTT, min BDP).

Determinism: a single seeded :class:`random.Random` drives every stochastic
choice (RED marking); workload generators take their own seeds.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..units import serialization_time_ns
from .engine import Simulator
from .flow import Flow
from .host import Host
from .link import LinkSpec
from .packet import ACK_BYTES, HEADER_BYTES
from .pfc import PfcConfig
from .port import Port, RedConfig
from .routing import bfs_distances, ecmp_next_hops
from .switch import Switch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cc.base import CongestionControl


class Network:
    """A wired topology plus its event loop and flow registry."""

    def __init__(self, seed: int = 1):
        self.sim = Simulator()
        self.rng = random.Random(seed)
        self.nodes: List = []
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self.flows: Dict[int, Flow] = {}
        self._adjacency: Dict[int, List[int]] = {}
        self._routing_built = False
        self._next_flow_id = 0
        self.completed_flows: List[Flow] = []

    # -- topology construction --------------------------------------------------

    def add_host(self, name: Optional[str] = None, **kwargs) -> Host:
        node_id = len(self.nodes)
        host = Host(self.sim, node_id, name or f"h{node_id}", **kwargs)
        host.completion_callbacks.append(self._on_flow_complete)
        self.nodes.append(host)
        self.hosts.append(host)
        self._adjacency[node_id] = []
        return host

    def add_switch(self, name: Optional[str] = None) -> Switch:
        node_id = len(self.nodes)
        sw = Switch(self.sim, node_id, name or f"s{node_id}")
        self.nodes.append(sw)
        self.switches.append(sw)
        self._adjacency[node_id] = []
        return sw

    def connect(
        self,
        a,
        b,
        rate_bps: float,
        prop_delay_ns: float,
        *,
        max_queue_bytes: Optional[float] = None,
        red: Optional[RedConfig] = None,
        pfc: Optional[PfcConfig] = None,
    ) -> Tuple[Port, Port]:
        """Create a bidirectional link between nodes ``a`` and ``b``.

        Returns the two egress ports ``(a->b, b->a)``.  Switch egress ports
        stamp INT; host NIC ports do not (telemetry comes from the fabric).
        """
        if self._routing_built:
            raise RuntimeError("cannot modify topology after build_routing()")
        spec = LinkSpec(rate_bps, prop_delay_ns)
        port_ab = Port(
            self.sim,
            a,
            spec,
            index=len(a.ports),
            max_queue_bytes=max_queue_bytes,
            red=red,
            rng=self.rng,
            stamp_int=isinstance(a, Switch),
            pfc=pfc,
        )
        port_ba = Port(
            self.sim,
            b,
            spec,
            index=len(b.ports),
            max_queue_bytes=max_queue_bytes,
            red=red,
            rng=self.rng,
            stamp_int=isinstance(b, Switch),
            pfc=pfc,
        )
        port_ab.peer_node, port_ab.peer_port = b, port_ba
        port_ba.peer_node, port_ba.peer_port = a, port_ab
        a.attach_port(port_ab, b.node_id)
        b.attach_port(port_ba, a.node_id)
        self._adjacency[a.node_id].append(b.node_id)
        self._adjacency[b.node_id].append(a.node_id)
        return port_ab, port_ba

    def build_routing(self) -> None:
        """Populate every switch's ECMP tables for every host destination."""
        for host in self.hosts:
            next_hops = ecmp_next_hops(self._adjacency, host.node_id)
            for sw in self.switches:
                hops = next_hops.get(sw.node_id)
                if hops is None:
                    continue  # unreachable (disconnected test topologies)
                sw.set_route(
                    host.node_id, tuple(sw.port_to[h] for h in hops)
                )
        self._routing_built = True

    # -- path utilities -----------------------------------------------------------

    def hop_count(self, src: int, dst: int) -> int:
        """Links on a shortest path between two nodes."""
        dist = bfs_distances(self._adjacency, dst)
        return dist[src]

    def path_rtt_ns(self, src: int, dst: int, mtu_payload: int = 1000) -> float:
        """Unloaded round-trip estimate for CC base-RTT configuration.

        Forward direction: per hop, one full-MTU serialization plus
        propagation (store-and-forward); reverse: ACK serialization plus
        propagation.  Assumes the (common) case of uniform link rates along
        the path; with heterogeneous rates this is the hop-wise sum using each
        hop's own rate, which is exact for an unloaded network.
        """
        path = self._shortest_path(src, dst)
        rtt = 0.0
        pkt_size = mtu_payload + HEADER_BYTES
        for u, v in zip(path, path[1:]):
            spec = self.nodes[u].port_to[v].spec
            rtt += spec.serialization_ns(pkt_size) + spec.prop_delay_ns
        for u, v in zip(path, path[1:]):
            spec = self.nodes[v].port_to[u].spec
            rtt += spec.serialization_ns(ACK_BYTES) + spec.prop_delay_ns
        return rtt

    def min_bdp_bytes(self, src: int, dst: int) -> float:
        """Line-rate-at-source x base-RTT product, the paper's Token_Thresh."""
        host = self.nodes[src]
        rate = host.ports[0].spec.rate_bps
        return rate / 8.0 * self.path_rtt_ns(src, dst) / 1e9

    def _shortest_path(self, src: int, dst: int) -> List[int]:
        dist = bfs_distances(self._adjacency, dst)
        if src not in dist:
            raise RuntimeError(f"no path {src} -> {dst}")
        path = [src]
        node = src
        while node != dst:
            node = min(
                (v for v in self._adjacency[node] if v in dist),
                key=lambda v: dist[v],
            )
            path.append(node)
        return path

    # -- flows ---------------------------------------------------------------------

    def next_flow_id(self) -> int:
        fid = self._next_flow_id
        self._next_flow_id += 1
        return fid

    def add_flow(self, flow: Flow, cc: "CongestionControl") -> Flow:
        """Register a flow: sender state at src host, receiver state at dst."""
        if not self._routing_built:
            raise RuntimeError("call build_routing() before adding flows")
        if flow.flow_id in self.flows:
            raise ValueError(f"duplicate flow id {flow.flow_id}")
        src = self.nodes[flow.src]
        dst = self.nodes[flow.dst]
        if not isinstance(src, Host) or not isinstance(dst, Host):
            raise TypeError("flows must run between hosts")
        self.flows[flow.flow_id] = flow
        dst.add_receiver_flow(flow)
        src.add_sender_flow(flow, cc)
        if flow.flow_id >= self._next_flow_id:
            self._next_flow_id = flow.flow_id + 1
        return flow

    def _on_flow_complete(self, flow: Flow) -> None:
        self.completed_flows.append(flow)

    # -- execution ------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.sim.run(until=until, max_events=max_events)

    def run_until_flows_complete(
        self, timeout_ns: float, check_interval_ns: float = 100_000.0
    ) -> bool:
        """Run until all registered flows complete or ``timeout_ns`` passes.

        Returns True if every flow completed.
        """
        deadline = self.sim.now() + timeout_ns
        while self.sim.now() < deadline:
            if all(f.completed for f in self.flows.values()):
                return True
            step_until = min(deadline, self.sim.now() + check_interval_ns)
            self.sim.run(until=step_until)
            if self.sim.peek_time() is None:
                break
        return all(f.completed for f in self.flows.values())

    # -- monitoring helpers -------------------------------------------------------------

    def total_drops(self) -> int:
        return sum(p.drops for n in self.nodes for p in n.ports)
