"""Network assembly and experiment orchestration.

:class:`Network` owns the simulator, the devices, and the wiring, and offers
the high-level operations experiments need:

* ``add_host`` / ``add_switch`` / ``connect`` — topology construction;
* ``build_routing`` — ECMP tables from shortest paths (call after wiring);
* ``add_flow`` — register a flow with a congestion-control instance;
* ``run`` — advance the event loop;
* path/RTT utilities used to configure protocols (base RTT, min BDP).

Determinism: a single seeded :class:`random.Random` drives every stochastic
choice (RED marking); workload generators take their own seeds.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from .engine import Simulator
from .flow import Flow
from .host import Host
from .link import LinkSpec
from .packet import ACK_BYTES, HEADER_BYTES
from .pfc import PfcConfig
from .port import Port, RedConfig
from .routing import bfs_distances, ecmp_next_hops
from .switch import Switch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cc.base import CongestionControl


@dataclass(frozen=True)
class RunBudget:
    """Hard per-run safety limits for :meth:`Network.run_until_flows_complete`.

    ``wall_clock_s`` bounds real elapsed time; ``max_events`` bounds executed
    simulator events.  Either breach stops the run with the matching
    ``stop_reason`` so a single pathological simulation cannot wedge a sweep.
    Budgets never alter event ordering, so a run that finishes within budget
    is byte-identical to an unbudgeted one.
    """

    wall_clock_s: Optional[float] = None
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.wall_clock_s is not None and self.wall_clock_s < 0:
            raise ValueError("wall_clock_s must be non-negative")
        if self.max_events is not None and self.max_events < 0:
            raise ValueError("max_events must be non-negative")


@dataclass
class CompletionStatus:
    """Outcome of :meth:`Network.run_until_flows_complete`.

    Truthiness preserves the old boolean contract (``bool(status)`` is "all
    flows completed"), while the fields make a partial run distinguishable
    downstream: which flows never finished and why the loop stopped
    (``"completed"``, ``"timeout"``, ``"stalled"``, ``"wall_clock"`` or
    ``"max_events"``).
    """

    completed: bool
    stop_reason: str
    incomplete_flows: Tuple[int, ...]
    events_executed: int

    def __bool__(self) -> bool:
        return self.completed

    @property
    def watchdog_expired(self) -> bool:
        """True when a :class:`RunBudget` limit (not simulated time) stopped us."""
        return self.stop_reason in ("wall_clock", "max_events")


class Network:
    """A wired topology plus its event loop and flow registry."""

    def __init__(self, seed: int = 1, *, engine: str = "reference"):
        if engine == "reference":
            self.sim = Simulator()
            self.core = None
            self._host_cls = Host
            self._switch_cls = Switch
            self._port_cls = Port
        elif engine == "turbo":
            # Lazy import: the turbo core needs numpy (the [perf] extra) and
            # raises an actionable ImportError without it; the reference
            # engine must stay importable regardless.
            from .turbo import (
                TurboCore,
                TurboHost,
                TurboPort,
                TurboSimulator,
                TurboSwitch,
            )

            self.sim = TurboSimulator()
            self.core = TurboCore()
            self._host_cls = TurboHost
            self._switch_cls = TurboSwitch
            self._port_cls = TurboPort
        else:
            raise ValueError(
                f"unknown engine {engine!r}: expected 'reference' or 'turbo'"
            )
        self.engine = engine
        self.rng = random.Random(seed)
        self.nodes: List = []
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self.flows: Dict[int, Flow] = {}
        self._adjacency: Dict[int, List[int]] = {}
        self._routing_built = False
        self._next_flow_id = 0
        self.completed_flows: List[Flow] = []
        #: Links currently administratively/physically down, as (lo, hi) pairs.
        self._down_links: Set[Tuple[int, int]] = set()

    # -- topology construction --------------------------------------------------

    def add_host(self, name: Optional[str] = None, **kwargs) -> Host:
        node_id = len(self.nodes)
        host = self._host_cls(self.sim, node_id, name or f"h{node_id}", **kwargs)
        if self.core is not None:
            host.core = self.core
        host.completion_callbacks.append(self._on_flow_complete)
        self.nodes.append(host)
        self.hosts.append(host)
        self._adjacency[node_id] = []
        return host

    def add_switch(self, name: Optional[str] = None) -> Switch:
        node_id = len(self.nodes)
        sw = self._switch_cls(self.sim, node_id, name or f"s{node_id}")
        self.nodes.append(sw)
        self.switches.append(sw)
        self._adjacency[node_id] = []
        return sw

    def connect(
        self,
        a,
        b,
        rate_bps: float,
        prop_delay_ns: float,
        *,
        max_queue_bytes: Optional[float] = None,
        red: Optional[RedConfig] = None,
        pfc: Optional[PfcConfig] = None,
    ) -> Tuple[Port, Port]:
        """Create a bidirectional link between nodes ``a`` and ``b``.

        Returns the two egress ports ``(a->b, b->a)``.  Switch egress ports
        stamp INT; host NIC ports do not (telemetry comes from the fabric).
        """
        if self._routing_built:
            raise RuntimeError("cannot modify topology after build_routing()")
        spec = LinkSpec(rate_bps, prop_delay_ns)
        port_cls = self._port_cls
        port_ab = port_cls(
            self.sim,
            a,
            spec,
            index=len(a.ports),
            max_queue_bytes=max_queue_bytes,
            red=red,
            rng=self.rng,
            stamp_int=isinstance(a, Switch),
            pfc=pfc,
        )
        port_ba = port_cls(
            self.sim,
            b,
            spec,
            index=len(b.ports),
            max_queue_bytes=max_queue_bytes,
            red=red,
            rng=self.rng,
            stamp_int=isinstance(b, Switch),
            pfc=pfc,
        )
        port_ab.peer_node, port_ab.peer_port = b, port_ba
        port_ba.peer_node, port_ba.peer_port = a, port_ab
        a.attach_port(port_ab, b.node_id)
        b.attach_port(port_ba, a.node_id)
        if self.core is not None:
            self.core.register_port(port_ab)
            self.core.register_port(port_ba)
        self._adjacency[a.node_id].append(b.node_id)
        self._adjacency[b.node_id].append(a.node_id)
        return port_ab, port_ba

    def build_routing(self) -> None:
        """Populate every switch's ECMP tables for every host destination."""
        self._rebuild_routing()
        self._routing_built = True

    def _effective_adjacency(self) -> Dict[int, List[int]]:
        """The adjacency map with failed links removed."""
        if not self._down_links:
            return self._adjacency
        down = self._down_links
        return {
            u: [v for v in nbrs if (min(u, v), max(u, v)) not in down]
            for u, nbrs in self._adjacency.items()
        }

    def _rebuild_routing(self) -> None:
        adj = self._effective_adjacency()
        for sw in self.switches:
            sw.routes.clear()
        for host in self.hosts:
            next_hops = ecmp_next_hops(adj, host.node_id)
            for sw in self.switches:
                hops = next_hops.get(sw.node_id)
                if hops is None:
                    continue  # unreachable (disconnected test topologies)
                sw.set_route(
                    host.node_id, tuple(sw.port_to[h] for h in hops)
                )

    # -- fault handling -----------------------------------------------------------

    def set_link_state(self, a: int, b: int, up: bool) -> None:
        """Mark the a<->b link up or down and reroute around it.

        Packets that finish serializing on a down link are lost (counted as
        ``fault_drops`` on the port); packets already propagating when the
        link fails still arrive, matching the cut-cable intuition.  Routing
        tables are rebuilt immediately, and switches move to
        drop-on-unroutable mode since transient unreachability is now
        legitimate.
        """
        port_ab = self.nodes[a].port_to.get(b)
        port_ba = self.nodes[b].port_to.get(a)
        if port_ab is None or port_ba is None:
            raise ValueError(f"no link between nodes {a} and {b}")
        # Link state is now dynamic: fused transmission (which commits
        # delivery at serialization start) must not be used from here on.
        self.disable_port_fusion()
        key = (min(a, b), max(a, b))
        if up:
            self._down_links.discard(key)
        else:
            self._down_links.add(key)
        changed = port_ab.link_up != up
        port_ab.link_up = up
        port_ba.link_up = up
        if self._routing_built and changed:
            for sw in self.switches:
                sw.drop_unroutable = True
            self._rebuild_routing()

    def set_switch_state(self, switch_id: int, up: bool) -> None:
        """Take every link of one switch down (or back up) — a blackout."""
        node = self.nodes[switch_id]
        if not isinstance(node, Switch):
            raise TypeError(f"node {switch_id} ({node.name}) is not a switch")
        for neighbour in self._adjacency[switch_id]:
            self.set_link_state(switch_id, neighbour, up)

    def link_is_up(self, a: int, b: int) -> bool:
        return (min(a, b), max(a, b)) not in self._down_links

    def enable_loss_recovery(self, **kwargs) -> None:
        """Enable go-back-N retransmission on every host (see ``Host``)."""
        for host in self.hosts:
            host.enable_loss_recovery(**kwargs)

    def disable_port_fusion(self) -> None:
        """Force every port onto the two-event transmit path.

        Called automatically the moment link-state faults become possible
        (:meth:`set_link_state`, link/switch fault injectors): the fused path
        decides delivery at serialization start, which is only equivalent
        when links cannot die mid-serialization.
        """
        for node in self.nodes:
            for port in node.ports:
                port.allow_fusion = False

    # -- path utilities -----------------------------------------------------------

    def hop_count(self, src: int, dst: int) -> int:
        """Links on a shortest path between two nodes (live links only)."""
        dist = bfs_distances(self._effective_adjacency(), dst)
        return dist[src]

    def path_rtt_ns(self, src: int, dst: int, mtu_payload: int = 1000) -> float:
        """Unloaded round-trip estimate for CC base-RTT configuration.

        Forward direction: per hop, one full-MTU serialization plus
        propagation (store-and-forward); reverse: ACK serialization plus
        propagation.  Assumes the (common) case of uniform link rates along
        the path; with heterogeneous rates this is the hop-wise sum using each
        hop's own rate, which is exact for an unloaded network.
        """
        path = self._shortest_path(src, dst)
        rtt = 0.0
        pkt_size = mtu_payload + HEADER_BYTES
        for u, v in zip(path, path[1:]):
            spec = self.nodes[u].port_to[v].spec
            rtt += spec.serialization_ns(pkt_size) + spec.prop_delay_ns
        for u, v in zip(path, path[1:]):
            spec = self.nodes[v].port_to[u].spec
            rtt += spec.serialization_ns(ACK_BYTES) + spec.prop_delay_ns
        return rtt

    def min_bdp_bytes(self, src: int, dst: int) -> float:
        """Line-rate-at-source x base-RTT product, the paper's Token_Thresh."""
        host = self.nodes[src]
        rate = host.ports[0].spec.rate_bps
        return rate / 8.0 * self.path_rtt_ns(src, dst) / 1e9

    def _shortest_path(self, src: int, dst: int) -> List[int]:
        adjacency = self._effective_adjacency()
        dist = bfs_distances(adjacency, dst)
        if src not in dist:
            raise RuntimeError(f"no path {src} -> {dst}")
        path = [src]
        node = src
        while node != dst:
            node = min(
                (v for v in adjacency[node] if v in dist),
                key=lambda v: dist[v],
            )
            path.append(node)
        return path

    # -- flows ---------------------------------------------------------------------

    def next_flow_id(self) -> int:
        fid = self._next_flow_id
        self._next_flow_id += 1
        return fid

    def add_flow(self, flow: Flow, cc: "CongestionControl") -> Flow:
        """Register a flow: sender state at src host, receiver state at dst."""
        if not self._routing_built:
            raise RuntimeError("call build_routing() before adding flows")
        if flow.flow_id in self.flows:
            raise ValueError(f"duplicate flow id {flow.flow_id}")
        src = self.nodes[flow.src]
        dst = self.nodes[flow.dst]
        if not isinstance(src, Host) or not isinstance(dst, Host):
            raise TypeError("flows must run between hosts")
        self.flows[flow.flow_id] = flow
        dst.add_receiver_flow(flow)
        src.add_sender_flow(flow, cc)
        if self.core is not None:
            self.core.register_flow(flow)
        if flow.flow_id >= self._next_flow_id:
            self._next_flow_id = flow.flow_id + 1
        return flow

    def _on_flow_complete(self, flow: Flow) -> None:
        if self.core is not None:
            self.core.mark_done(flow)
        self.completed_flows.append(flow)

    # -- execution ------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.sim.run(until=until, max_events=max_events)

    def run_until_flows_complete(
        self,
        timeout_ns: float,
        check_interval_ns: float = 100_000.0,
        *,
        budget: Optional[RunBudget] = None,
    ) -> CompletionStatus:
        """Run until all registered flows complete or a limit is hit.

        Limits are the simulated-time ``timeout_ns`` and, optionally, a
        :class:`RunBudget` (wall-clock seconds and/or executed events).  The
        returned :class:`CompletionStatus` is truthy iff every flow
        completed, preserving the historical boolean contract, and records
        the incomplete flow ids and the stop reason otherwise.
        """
        deadline = self.sim.now() + timeout_ns
        events_start = self.sim.events_executed
        wall_start = time.monotonic()
        stop_reason = "timeout"
        core = self.core
        while self.sim.now() < deadline:
            # The turbo core keeps an O(1) outstanding-flow counter; the
            # reference path scans the registry (identical truth value).
            if core is not None:
                if core.active == 0:
                    break
            elif all(f.completed for f in self.flows.values()):
                break
            max_events = None
            if budget is not None:
                if (
                    budget.wall_clock_s is not None
                    and time.monotonic() - wall_start >= budget.wall_clock_s
                ):
                    stop_reason = "wall_clock"
                    break
                if budget.max_events is not None:
                    max_events = budget.max_events - (
                        self.sim.events_executed - events_start
                    )
                    if max_events <= 0:
                        stop_reason = "max_events"
                        break
            step_until = min(deadline, self.sim.now() + check_interval_ns)
            self.sim.run(until=step_until, max_events=max_events)
            if self.sim.peek_time() is None:
                # Event heap drained: either everything finished or the
                # simulation deadlocked (e.g. loss without recovery).
                stop_reason = "stalled"
                break
        completed = all(f.completed for f in self.flows.values())
        if completed:
            stop_reason = "completed"
        incomplete = tuple(
            sorted(fid for fid, f in self.flows.items() if not f.completed)
        )
        return CompletionStatus(
            completed=completed,
            stop_reason=stop_reason,
            incomplete_flows=incomplete,
            events_executed=self.sim.events_executed - events_start,
        )

    # -- monitoring helpers -------------------------------------------------------

    def total_fault_drops(self) -> int:
        """Packets lost to injected faults or down links (all ports)."""
        return sum(p.fault_drops for n in self.nodes for p in n.ports)

    def total_routing_drops(self) -> int:
        """Packets dropped for lack of a route (reroute transients)."""
        return sum(sw.routing_drops for sw in self.switches)

    def total_retransmitted_bytes(self) -> int:
        """Bytes resent by go-back-N recovery across all sender flows."""
        return sum(
            s.retransmitted_bytes for h in self.hosts for s in h.senders.values()
        )

    def total_drops(self) -> int:
        return sum(p.drops for n in self.nodes for p in n.ports)
