"""Base class for network devices (hosts and switches)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from .engine import Simulator
from .packet import Packet
from .port import Port

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class Node:
    """A device with ports.

    Subclasses implement :meth:`receive`.  Ports are added by the network
    wiring helper (:meth:`repro.sim.network.Network.connect`).
    """

    def __init__(self, sim: Simulator, node_id: int, name: str):
        self.sim = sim
        self.node_id = node_id
        self.name = name
        self.ports: List[Port] = []
        self.port_to: Dict[int, Port] = {}  # neighbour node_id -> egress port

    def attach_port(self, port: Port, neighbour_id: int) -> None:
        """Register an egress port facing ``neighbour_id``."""
        self.ports.append(port)
        self.port_to[neighbour_id] = port

    def receive(self, pkt: Packet, in_port: Optional[Port]) -> None:
        """Handle a packet arriving on ``in_port``.

        ``in_port`` is this node's own egress port facing the sender — it
        identifies the interface and is the target of PFC pause application.
        """
        raise NotImplementedError

    def send_pfc(self, ingress: Port, *, resume: bool) -> None:
        """Send a PFC pause or resume frame upstream through ``ingress``.

        ``ingress`` is our port facing the congesting neighbour; the frame is
        queued there with priority and, on arrival, pauses/resumes the
        neighbour's egress port facing us.
        """
        cfg = ingress.pfc_ingress.config
        if cfg is None:
            return
        duration = 0.0 if resume else cfg.pause_quanta_ns
        peer = ingress.peer_node
        frame = Packet.pause(self.node_id, peer.node_id if peer else -1, duration)
        ingress.enqueue(frame)

    def on_forwarded(self, pkt: Packet, ingress: Port) -> None:
        """Called when a packet that arrived on ``ingress`` finishes egress.

        The default does nothing; switches use it for PFC ingress release.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} id={self.node_id}>"
