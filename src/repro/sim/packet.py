"""Packets, acknowledgements, and in-band network telemetry records.

Packets are deliberately light-weight (``__slots__``) because the datacenter
simulations push hundreds of thousands of them through the event loop.  A
single :class:`Packet` class covers data packets, ACKs, CNPs (DCQCN
congestion-notification packets), and PFC pause frames, discriminated by
:attr:`Packet.kind` — this avoids isinstance dispatch on the hot path.

INT (in-band network telemetry) is modelled exactly as HPCC consumes it: every
switch egress port appends a :class:`HopRecord` carrying the queue length at
dequeue time, the cumulative bytes the port has transmitted, the timestamp,
and the port's line rate.  The receiver echoes the final record list back on
the ACK.
"""

from __future__ import annotations

from typing import List, Optional

# Packet kinds (ints, not an Enum, to keep hot-path comparisons cheap).
DATA = 0
ACK = 1
CNP = 2
PAUSE = 3
RESUME = 4

KIND_NAMES = {DATA: "DATA", ACK: "ACK", CNP: "CNP", PAUSE: "PAUSE", RESUME: "RESUME"}

#: Bytes of L2/L3/L4 header added to every data packet's payload.  RoCEv2
#: framing is ~58 B on the wire; we use 48 B like the HPCC artifact simulator.
HEADER_BYTES = 48
#: On-the-wire size of an acknowledgement.
ACK_BYTES = 64
#: On-the-wire size of a DCQCN congestion-notification packet.
CNP_BYTES = 64
#: On-the-wire size of a PFC pause/resume frame.
PAUSE_BYTES = 64


class HopRecord:
    """One INT stamp, added at a switch egress port.

    Attributes
    ----------
    qlen:
        Egress queue length in bytes observed when this packet was dequeued.
    tx_bytes:
        Cumulative bytes the egress port has transmitted (monotonic counter),
        including this packet.
    ts:
        Timestamp (ns) at which this packet began serialization on the port.
    rate_bps:
        Line rate of the egress port in bits/second.
    """

    __slots__ = ("qlen", "tx_bytes", "ts", "rate_bps")

    def __init__(self, qlen: float, tx_bytes: float, ts: float, rate_bps: float):
        self.qlen = qlen
        self.tx_bytes = tx_bytes
        self.ts = ts
        self.rate_bps = rate_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HopRecord(qlen={self.qlen:.0f}B, tx={self.tx_bytes:.0f}B, "
            f"ts={self.ts:.0f}ns, B={self.rate_bps / 1e9:.0f}Gbps)"
        )


class Packet:
    """A unit of transmission.

    For ``kind == DATA``: ``seq`` is the first payload byte's offset within
    the flow and ``payload`` the number of payload bytes; the wire size is
    ``payload + HEADER_BYTES``.

    For ``kind == ACK``: ``seq`` is the cumulative acknowledgement (all bytes
    < seq received), ``payload`` is 0 and the wire size is ``ACK_BYTES``.
    ``int_records`` echoes the data packet's telemetry and ``ece`` its ECN
    congestion-experienced mark.

    ``send_ts`` is stamped by the sending host and echoed on the ACK so that
    delay-based protocols (Swift) can measure RTT without per-packet state at
    the sender.
    """

    __slots__ = (
        "kind",
        "flow_id",
        "src",
        "dst",
        "seq",
        "payload",
        "size",
        "send_ts",
        "ece",
        "int_records",
        "hops",
        "ecmp_hash",
        "priority",
        "pause_duration",
        "corrupt",
        "fr",
    )

    def __init__(
        self,
        kind: int,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        payload: int,
        size: int,
        send_ts: float = 0.0,
        ecmp_hash: int = 0,
        priority: int = 0,
    ):
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.payload = payload
        self.size = size
        self.send_ts = send_ts
        self.ece = False
        self.int_records: Optional[List[HopRecord]] = None
        self.hops = 0
        self.ecmp_hash = ecmp_hash
        self.priority = priority
        self.pause_duration = 0.0
        # Set by fault injectors; corrupt packets are discarded (and counted)
        # by the destination host's CRC check, never acknowledged.
        self.corrupt = False
        # Flight-recorder stamp (repro.obs.flightrec): None unless the
        # recorder is on and this is a data packet or its echoed ACK.
        self.fr = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def data(
        cls,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        payload: int,
        send_ts: float,
        ecmp_hash: int = 0,
        priority: int = 0,
    ) -> "Packet":
        """Build a data packet; wire size adds the fixed header overhead."""
        if payload <= 0:
            raise ValueError(f"data packet needs positive payload, got {payload}")
        pkt = cls(
            DATA,
            flow_id,
            src,
            dst,
            seq,
            payload,
            payload + HEADER_BYTES,
            send_ts=send_ts,
            ecmp_hash=ecmp_hash,
            priority=priority,
        )
        pkt.int_records = []
        return pkt

    @classmethod
    def ack(cls, data_pkt: "Packet", cumulative_seq: int, recv_ts: float) -> "Packet":
        """Build the acknowledgement for ``data_pkt`` (reverse direction)."""
        ackp = cls(
            ACK,
            data_pkt.flow_id,
            data_pkt.dst,
            data_pkt.src,
            cumulative_seq,
            0,
            ACK_BYTES,
            send_ts=data_pkt.send_ts,
            ecmp_hash=data_pkt.ecmp_hash,
            priority=data_pkt.priority,
        )
        ackp.ece = data_pkt.ece
        ackp.int_records = data_pkt.int_records
        ackp.hops = data_pkt.hops
        # Echo the flight-recorder stamp: the return path keeps accumulating
        # on it, so the sender sees one full round-trip breakdown per ACK.
        ackp.fr = data_pkt.fr
        return ackp

    @classmethod
    def cnp(cls, flow_id: int, src: int, dst: int) -> "Packet":
        """Build a DCQCN congestion-notification packet."""
        return cls(CNP, flow_id, src, dst, 0, 0, CNP_BYTES)

    @classmethod
    def pause(cls, src: int, dst: int, duration_ns: float, priority: int = 0) -> "Packet":
        """Build a PFC pause frame (duration 0 encodes resume)."""
        kind = PAUSE if duration_ns > 0 else RESUME
        pkt = cls(kind, -1, src, dst, 0, 0, PAUSE_BYTES, priority=priority)
        pkt.pause_duration = duration_ns
        return pkt

    # -- helpers ----------------------------------------------------------

    @property
    def is_data(self) -> bool:
        return self.kind == DATA

    @property
    def is_ack(self) -> bool:
        return self.kind == ACK

    @property
    def is_control(self) -> bool:
        """PFC frames are link-local control, never routed or queued."""
        return self.kind == PAUSE or self.kind == RESUME

    def end_seq(self) -> int:
        """One past the last payload byte carried by a data packet."""
        return self.seq + self.payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{KIND_NAMES[self.kind]} flow={self.flow_id} {self.src}->{self.dst} "
            f"seq={self.seq} payload={self.payload} size={self.size}>"
        )


class AckContext:
    """Everything a congestion-control module may inspect for one ACK.

    This is the boundary between the substrate (:mod:`repro.sim`) and the
    protocols (:mod:`repro.cc`): host receive logic fills one of these and
    hands it to :meth:`repro.cc.base.CongestionControl.on_ack`.

    The context is only valid for the duration of the ``on_ack`` call — the
    host reuses a single instance per ACK to avoid an allocation on the
    hottest receive path.  Protocols may keep the ``int_records`` list (HPCC
    does, across one RTT) but must copy any scalar they need later.
    """

    __slots__ = (
        "now",
        "ack_seq",
        "newly_acked",
        "ece",
        "int_records",
        "rtt",
        "hops",
    )

    def __init__(
        self,
        now: float,
        ack_seq: int,
        newly_acked: int,
        ece: bool,
        int_records: Optional[List[HopRecord]],
        rtt: float,
        hops: int,
    ):
        self.now = now
        self.ack_seq = ack_seq
        self.newly_acked = newly_acked
        self.ece = ece
        self.int_records = int_records
        self.rtt = rtt
        self.hops = hops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AckContext(t={self.now:.0f}, seq={self.ack_seq}, "
            f"acked={self.newly_acked}, ece={self.ece}, rtt={self.rtt:.0f}ns)"
        )
