"""Priority Flow Control (IEEE 802.1Qbb) state machines.

RDMA datacenter fabrics are lossless: when an ingress buffer fills past a
watermark the switch sends a PAUSE frame upstream, and the upstream egress
port stops transmitting until it receives a RESUME (or the pause quanta
expire).  The paper's simulations inherit this from the HPCC artifact; losses
never occur, so congestion control — not retransmission — fully determines
flow completion times.

Two small classes model the two halves:

* :class:`PfcIngress` — per-ingress-port byte accounting with XOFF/XON
  watermarks, deciding when to emit pause/resume toward the upstream node.
* :class:`PfcEgressState` — pause bookkeeping on the egress side, honoured by
  :class:`repro.sim.port.Port` when draining its queue.

The default experiment configurations size buffers so that PFC rarely fires
(matching the paper, which reports queue depths well below pause thresholds);
dedicated unit tests exercise the pause path directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..check import invariants as check_invariants
from ..obs import flightrec as obs_flightrec
from ..obs import registry as obs_registry


@dataclass(frozen=True)
class PfcConfig:
    """Watermarks for PFC, in bytes of ingress occupancy.

    ``xoff`` — send PAUSE when ingress usage rises to/above this.
    ``xon`` — send RESUME when usage falls to/below this (must be < xoff).
    ``pause_quanta_ns`` — pause lifetime carried in the frame; the upstream
    port resumes on its own after this long even if no RESUME arrives
    (hardware behaviour; protects against lost control frames).
    """

    xoff: float
    xon: float
    pause_quanta_ns: float = 65_535 * 512.0  # max 802.3x quanta at 1 bit/ns

    def __post_init__(self) -> None:
        if self.xon >= self.xoff:
            raise ValueError(
                f"PFC xon ({self.xon}) must be below xoff ({self.xoff})"
            )
        if self.xoff <= 0:
            raise ValueError("PFC xoff must be positive")


class PfcIngress:
    """Ingress-side accounting for one (port, priority) pair."""

    __slots__ = ("config", "occupancy", "paused_upstream")

    def __init__(self, config: Optional[PfcConfig]):
        self.config = config
        self.occupancy = 0.0
        self.paused_upstream = False

    def on_enqueue(self, size: int) -> bool:
        """Record ``size`` bytes buffered; return True if PAUSE must be sent."""
        self.occupancy += size
        if (
            self.config is not None
            and not self.paused_upstream
            and self.occupancy >= self.config.xoff
        ):
            self.paused_upstream = True
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("pfc.xoff_triggered").inc()
                reg.histogram("pfc.xoff_occupancy_bytes").observe(self.occupancy)
            return True
        return False

    def on_release(self, size: int) -> bool:
        """Record ``size`` bytes leaving the buffer; True if RESUME is due."""
        self.occupancy -= size
        if self.occupancy < 0:
            # Accounting must never go negative; clamp and surface in tests.
            # The sanitizer sees the pre-clamp value — a release exceeding
            # what was charged is a real bookkeeping bug even though the
            # clamp keeps the state machine serviceable.
            chk = check_invariants.CHECKER
            if chk is not None:
                chk.on_pfc_occupancy(self.occupancy)
            self.occupancy = 0.0
        if (
            self.config is not None
            and self.paused_upstream
            and self.occupancy <= self.config.xon
        ):
            self.paused_upstream = False
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("pfc.xon_triggered").inc()
            return True
        return False


class PfcEgressState:
    """Egress-side pause state honoured by the port drain loop."""

    __slots__ = ("paused_until",)

    def __init__(self) -> None:
        self.paused_until = 0.0

    def pause(self, now: float, duration_ns: float) -> None:
        """Apply a PAUSE frame received at ``now``."""
        self.paused_until = max(self.paused_until, now + duration_ns)
        fr = obs_flightrec.RECORDER
        if fr is not None:
            fr.on_pause(self, now, duration_ns)

    def resume(self) -> None:
        """Apply a RESUME frame (clears any remaining pause)."""
        self.paused_until = 0.0

    def is_paused(self, now: float) -> bool:
        return now < self.paused_until

    def remaining(self, now: float) -> float:
        """Nanoseconds of pause left (0 if not paused)."""
        return max(0.0, self.paused_until - now)
