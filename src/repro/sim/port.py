"""Egress port: the queueing and transmission workhorse.

Every node-to-node channel is owned by exactly one :class:`Port` on the
sending side.  A port bundles:

* the FIFO egress queue (bytes-accounted, optional tail-drop limit),
* the transmitter (serialization at line rate, then propagation),
* ECN/RED marking at enqueue (used by DCQCN),
* INT stamping at dequeue (used by HPCC),
* the PFC egress pause state, plus the PFC ingress accounting for traffic
  *arriving from* the neighbour this port faces (the same port object
  identifies the interface in both directions, which is how pause frames
  find their target).

The drain loop is the hottest code in the simulator; it avoids allocation and
keeps bookkeeping to integer/float adds.

Fused transmission (the big event-count win): a packet normally costs two
events — ``_tx_done`` at serialization end (free the transmitter, continue
draining) and the peer ``receive`` one propagation later.  When the packet
was *locally originated* (no ingress port, so no forwarding or PFC-release
bookkeeping is owed at serialization end) and the link is healthy, the port
instead schedules a single detached delivery event at ``serialization +
propagation`` and models the transmitter occupancy with a ``busy_until``
timestamp.  Anyone who tries to drain before ``busy_until`` arms a wake
timer at exactly that instant, so packet spacing — and therefore every
simulation output — is identical to the two-event schedule; host NICs (every
data packet and every ACK in the network starts at one) simply stop paying
the second event.  Fusion turns itself off (``allow_fusion``) as soon as
link-state faults enter the picture, because delivery of a fused packet is
committed at serialization *start*, which would bypass the "packets
finishing serialization on a down link are lost" rule.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..check import invariants as check_invariants
from ..obs import flightrec as obs_flightrec
from ..obs import profiler as obs_profiler
from ..obs import registry as obs_registry
from ..obs import tracer as obs_tracer
from .engine import Simulator
from .link import LinkSpec
from .packet import DATA, PAUSE, RESUME, HopRecord, Packet
from .pfc import PfcConfig, PfcEgressState, PfcIngress

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node

# Fault-hook action codes (see repro.sim.faults).  Ints, not an Enum, for the
# same hot-path reason as the packet kinds.
FAULT_NONE = 0
FAULT_DROP = 1
FAULT_CORRUPT = 2


@dataclass(frozen=True)
class RedConfig:
    """RED/ECN marking thresholds (DCQCN-style), on instantaneous queue length.

    ``q <= kmin``: never mark; ``kmin < q < kmax``: mark with probability
    ``pmax * (q - kmin) / (kmax - kmin)``; ``q >= kmax``: always mark.
    """

    kmin_bytes: float
    kmax_bytes: float
    pmax: float

    def __post_init__(self) -> None:
        if not 0 <= self.pmax <= 1:
            raise ValueError(f"pmax must be in [0, 1], got {self.pmax}")
        if self.kmin_bytes < 0 or self.kmax_bytes <= self.kmin_bytes:
            raise ValueError(
                f"need 0 <= kmin < kmax, got kmin={self.kmin_bytes}, "
                f"kmax={self.kmax_bytes}"
            )

    def mark_probability(self, qlen: float) -> float:
        """Marking probability at instantaneous queue length ``qlen`` bytes."""
        if qlen <= self.kmin_bytes:
            return 0.0
        if qlen >= self.kmax_bytes:
            return 1.0
        return self.pmax * (qlen - self.kmin_bytes) / (self.kmax_bytes - self.kmin_bytes)


class Port:
    """One egress interface of a node.

    Wiring (done by :class:`repro.sim.network.Network`) sets ``peer_node`` and
    ``peer_port`` so that packet arrival is delivered as
    ``peer_node.receive(pkt, in_port=peer_port)``.
    """

    __slots__ = (
        "sim",
        "owner",
        "spec",
        "index",
        "peer_node",
        "peer_port",
        "queue",
        "queue_bytes",
        "tx_bytes",
        "busy_until",
        "_tx_pending",
        "drops",
        "max_queue_bytes",
        "red",
        "rng",
        "stamp_int",
        "pfc_egress",
        "pfc_ingress",
        "max_qlen_seen",
        "_wake_event",
        "fault_hook",
        "link_up",
        "fault_drops",
        "allow_fusion",
    )

    def __init__(
        self,
        sim: Simulator,
        owner: "Node",
        spec: LinkSpec,
        index: int,
        *,
        max_queue_bytes: Optional[float] = None,
        red: Optional[RedConfig] = None,
        rng: Optional[random.Random] = None,
        stamp_int: bool = False,
        pfc: Optional[PfcConfig] = None,
    ):
        self.sim = sim
        self.owner = owner
        self.spec = spec
        self.index = index
        self.peer_node: Optional["Node"] = None
        self.peer_port: Optional["Port"] = None
        self.queue: deque = deque()  # entries: (Packet, ingress Port | None)
        self.queue_bytes = 0.0
        self.tx_bytes = 0.0
        # Transmitter occupancy.  The legacy (two-event) path is governed by
        # ``_tx_pending`` — busy until its ``_tx_done`` event *executes*, so
        # same-timestamp events that run before it still see the port busy,
        # exactly as the pre-fusion flag did.  The fused path has no tx-done
        # event, so occupancy is the timestamp ``busy_until`` (inclusive: the
        # wake event armed at that instant plays the role of ``_tx_done`` and
        # resets it to -1).
        self.busy_until = -1.0
        self._tx_pending = False
        self.drops = 0
        self.max_queue_bytes = max_queue_bytes
        self.red = red
        self.rng = rng
        self.stamp_int = stamp_int
        self.pfc_egress = PfcEgressState()
        self.pfc_ingress = PfcIngress(pfc)
        self.max_qlen_seen = 0.0
        self._wake_event = None
        # Fault-injection state (repro.sim.faults): None / True means healthy
        # and costs one attribute test on the hot path.
        self.fault_hook = None
        self.link_up = True
        self.fault_drops = 0
        self.allow_fusion = True

    # -- identity -----------------------------------------------------------

    @property
    def name(self) -> str:
        peer = self.peer_node.name if self.peer_node is not None else "?"
        return f"{self.owner.name}.p{self.index}->{peer}"

    @property
    def busy(self) -> bool:
        """True while a packet is serializing on the transmitter."""
        return self._tx_pending or self.sim.now() <= self.busy_until

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name} q={self.queue_bytes:.0f}B busy={self.busy}>"

    # -- enqueue ------------------------------------------------------------

    def enqueue(self, pkt: Packet, ingress: Optional["Port"] = None) -> bool:
        """Queue a packet for transmission.  Returns False if tail-dropped.

        Control (PFC) frames jump the queue and are never dropped or marked.
        """
        if pkt.is_control:
            self.queue.appendleft((pkt, ingress))
            self.queue_bytes += pkt.size
        else:
            hook = self.fault_hook
            if hook is not None:
                action = hook.on_packet(pkt)
                if action == FAULT_DROP:
                    self.fault_drops += 1
                    chk = check_invariants.CHECKER
                    if chk is not None:
                        chk.on_drop(self, pkt, ingress, "fault")
                    self._release_dropped(pkt, ingress)
                    return False
                if action == FAULT_CORRUPT:
                    pkt.corrupt = True
            if (
                self.max_queue_bytes is not None
                and self.queue_bytes + pkt.size > self.max_queue_bytes
            ):
                self.drops += 1
                reg = obs_registry.STATS
                if reg is not None:
                    reg.counter("port.tail_drops").inc()
                chk = check_invariants.CHECKER
                if chk is not None:
                    chk.on_drop(self, pkt, ingress, "tail")
                self._release_dropped(pkt, ingress)
                return False
            if self.red is not None and pkt.kind == DATA:
                p = self.red.mark_probability(self.queue_bytes)
                if p > 0.0 and (p >= 1.0 or self.rng.random() < p):
                    pkt.ece = True
            self.queue.append((pkt, ingress))
            self.queue_bytes += pkt.size
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_enqueue(self, pkt)
        fr = obs_flightrec.RECORDER
        if fr is not None:
            fr.on_enqueue(self, pkt, self.sim._now)
        if self.queue_bytes > self.max_qlen_seen:
            self.max_qlen_seen = self.queue_bytes
            tr = obs_tracer.TRACER
            if tr is not None:
                # Queue high-watermark: one counter sample per new maximum
                # renders as a rising staircase track in Perfetto.
                tr.counter(
                    f"qmax {self.owner.name}.p{self.index}",
                    self.sim._now,
                    {"bytes": self.max_qlen_seen},
                    cat="queue",
                )
        self.try_drain()
        return True

    def _release_dropped(self, pkt: Packet, ingress: Optional["Port"]) -> None:
        """Undo the ingress PFC accounting for a packet dropped at enqueue.

        A dropped packet never occupies the egress buffer, so the bytes it
        charged against the upstream-facing ingress accounting must be freed
        immediately — otherwise a drop while the upstream is PFC-paused can
        leave the pause latched forever (the RESUME that would have been
        triggered by this packet's departure never fires).
        """
        if ingress is not None:
            if ingress.pfc_ingress.on_release(pkt.size):
                self.owner.send_pfc(ingress, resume=True)

    # -- drain --------------------------------------------------------------

    def try_drain(self) -> None:
        """Start transmitting the head-of-line packet if possible."""
        if not self.queue:
            return
        sim = self.sim
        now = sim._now
        if self._tx_pending:
            # Legacy path in flight: its _tx_done event will drain.
            return
        if now <= self.busy_until:
            # Fused transmission in flight: there is no tx-done event coming,
            # so arm a wake at the exact instant the transmitter frees up.
            self._schedule_wake(self.busy_until)
            return
        if self.pfc_egress.is_paused(now):
            self._schedule_wake(self.pfc_egress.paused_until)
            return
        # Past the early-outs a transmission definitely starts; everything
        # below is serializer work.  Single fall-through exit, so one
        # push/pop pair brackets it.
        prof = obs_profiler.PHASE_HOOKS
        if prof is not None:
            prof.push("port.serialize")
        pkt, ingress = self.queue.popleft()
        size = pkt.size
        self.queue_bytes -= size
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_dequeue(self, pkt)
        if self.stamp_int and pkt.kind == DATA and pkt.int_records is not None:
            pkt.int_records.append(
                HopRecord(
                    qlen=self.queue_bytes,
                    tx_bytes=self.tx_bytes + size,
                    ts=now,
                    rate_bps=self.spec.rate_bps,
                )
            )
            pkt.hops += 1
        ser = self.spec.serialization_ns(size)
        fr = obs_flightrec.RECORDER
        if fr is not None:
            # One hook covers both delivery paths below: the per-hop wait /
            # serialization / propagation / pause breakdown accumulates on
            # the packet's stamp here, at serialization start.
            fr.on_dequeue(self, pkt, now, ser)
        peer = self.peer_node
        if (
            ingress is None
            and not self.queue
            and self.allow_fusion
            and self.link_up
            and peer is not None
        ):
            # Fused path: single delivery event, occupancy via busy_until.
            # Only taken for locally-originated packets (no forwarding or
            # PFC-release bookkeeping owed at serialization end) with an
            # empty queue behind them (nobody needs a tx-done to keep
            # draining; a later enqueue arms a wake at busy_until instead).
            # tx accounting moves to serialization start — the counter is
            # cumulative, only intra-packet sampling can see the shift.
            # schedule_delivery keys the event to serialization end so its
            # execution order matches the legacy two-event schedule exactly.
            self.busy_until = now + ser
            self.tx_bytes += size
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("port.fused_deliveries").inc()
            sim.schedule_delivery(
                self.spec.prop_delay_ns, self.busy_until, None,
                peer.receive, pkt, self.peer_port,
            )
        else:
            self._tx_pending = True
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("port.unfused_deliveries").inc()
            sim.schedule_detached(ser, self._tx_done, pkt, ingress)
        if prof is not None:
            prof.pop()

    def _tx_done(self, pkt: Packet, ingress: Optional["Port"]) -> None:
        self._tx_pending = False
        self.tx_bytes += pkt.size
        if ingress is not None:
            self.owner.on_forwarded(pkt, ingress)
        if self.peer_node is not None:
            if self.link_up:
                # Keyed by this event's own (time, seq) so fused and legacy
                # deliveries interleave identically (see schedule_delivery).
                sim = self.sim
                sim.schedule_delivery(
                    self.spec.prop_delay_ns, sim._now, sim._cur_seq,
                    self.peer_node.receive, pkt, self.peer_port,
                )
            else:
                # Link is down: the queue keeps draining (carrier loss), every
                # serialized packet is lost on the wire.
                self.fault_drops += 1
                chk = check_invariants.CHECKER
                if chk is not None:
                    chk.on_drop(self, pkt, ingress, "link-down")
        self.try_drain()

    def _schedule_wake(self, at: float) -> None:
        ev = self._wake_event
        if ev is not None and not ev.cancelled and ev.time <= at:
            return
        if ev is not None:
            ev.cancel()
        self._wake_event = self.sim.schedule_at(at, self._wake)

    def _wake(self) -> None:
        self._wake_event = None
        # This wake is the fused path's stand-in for _tx_done: if the fused
        # serialization has completed (<= because the wake fires at exactly
        # busy_until), free the transmitter.  The guard protects against a
        # stale same-timestamp wake firing after a new transmission started.
        if self.sim._now >= self.busy_until:
            self.busy_until = -1.0
        self.try_drain()

    # -- PFC ---------------------------------------------------------------

    def apply_pause(self, pkt: Packet) -> None:
        """Apply a received PFC frame to this (egress) port."""
        prof = obs_profiler.PHASE_HOOKS
        if prof is not None:
            prof.push("pfc")
        if pkt.kind == PAUSE:
            now = self.sim.now()
            self.pfc_egress.pause(now, pkt.pause_duration)
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("pfc.pauses_applied").inc()
                reg.histogram("pfc.pause_duration_ns").observe(pkt.pause_duration)
            tr = obs_tracer.TRACER
            if tr is not None:
                tr.complete(
                    f"pfc pause {self.owner.name}.p{self.index}",
                    now,
                    pkt.pause_duration,
                    cat="pfc",
                    tid=self.owner.node_id,
                )
        elif pkt.kind == RESUME:
            self.pfc_egress.resume()
            fr = obs_flightrec.RECORDER
            if fr is not None:
                # resume() carries no timestamp, so the pause-time integrator
                # is settled here rather than inside PfcEgressState.
                fr.on_resume(self.pfc_egress, self.sim.now())
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("pfc.resumes_applied").inc()
            self.try_drain()
        if prof is not None:
            prof.pop()

    # -- introspection -------------------------------------------------------

    def reset_counters(self) -> None:
        """Reset monitoring counters (not queue state)."""
        self.max_qlen_seen = self.queue_bytes
        self.drops = 0
        self.fault_drops = 0

    @property
    def utilization_bytes(self) -> float:
        """Cumulative bytes transmitted (for throughput accounting)."""
        return self.tx_bytes
