"""Egress port: the queueing and transmission workhorse.

Every node-to-node channel is owned by exactly one :class:`Port` on the
sending side.  A port bundles:

* the FIFO egress queue (bytes-accounted, optional tail-drop limit),
* the transmitter (serialization at line rate, then propagation),
* ECN/RED marking at enqueue (used by DCQCN),
* INT stamping at dequeue (used by HPCC),
* the PFC egress pause state, plus the PFC ingress accounting for traffic
  *arriving from* the neighbour this port faces (the same port object
  identifies the interface in both directions, which is how pause frames
  find their target).

The drain loop is the hottest code in the simulator; it avoids allocation and
keeps bookkeeping to integer/float adds.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .engine import Simulator
from .link import LinkSpec
from .packet import DATA, PAUSE, RESUME, HopRecord, Packet
from .pfc import PfcConfig, PfcEgressState, PfcIngress

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node

# Fault-hook action codes (see repro.sim.faults).  Ints, not an Enum, for the
# same hot-path reason as the packet kinds.
FAULT_NONE = 0
FAULT_DROP = 1
FAULT_CORRUPT = 2


@dataclass(frozen=True)
class RedConfig:
    """RED/ECN marking thresholds (DCQCN-style), on instantaneous queue length.

    ``q <= kmin``: never mark; ``kmin < q < kmax``: mark with probability
    ``pmax * (q - kmin) / (kmax - kmin)``; ``q >= kmax``: always mark.
    """

    kmin_bytes: float
    kmax_bytes: float
    pmax: float

    def __post_init__(self) -> None:
        if not 0 <= self.pmax <= 1:
            raise ValueError(f"pmax must be in [0, 1], got {self.pmax}")
        if self.kmin_bytes < 0 or self.kmax_bytes <= self.kmin_bytes:
            raise ValueError(
                f"need 0 <= kmin < kmax, got kmin={self.kmin_bytes}, "
                f"kmax={self.kmax_bytes}"
            )

    def mark_probability(self, qlen: float) -> float:
        """Marking probability at instantaneous queue length ``qlen`` bytes."""
        if qlen <= self.kmin_bytes:
            return 0.0
        if qlen >= self.kmax_bytes:
            return 1.0
        return self.pmax * (qlen - self.kmin_bytes) / (self.kmax_bytes - self.kmin_bytes)


class Port:
    """One egress interface of a node.

    Wiring (done by :class:`repro.sim.network.Network`) sets ``peer_node`` and
    ``peer_port`` so that packet arrival is delivered as
    ``peer_node.receive(pkt, in_port=peer_port)``.
    """

    __slots__ = (
        "sim",
        "owner",
        "spec",
        "index",
        "peer_node",
        "peer_port",
        "queue",
        "queue_bytes",
        "tx_bytes",
        "busy",
        "drops",
        "max_queue_bytes",
        "red",
        "rng",
        "stamp_int",
        "pfc_egress",
        "pfc_ingress",
        "max_qlen_seen",
        "_wake_event",
        "fault_hook",
        "link_up",
        "fault_drops",
    )

    def __init__(
        self,
        sim: Simulator,
        owner: "Node",
        spec: LinkSpec,
        index: int,
        *,
        max_queue_bytes: Optional[float] = None,
        red: Optional[RedConfig] = None,
        rng: Optional[random.Random] = None,
        stamp_int: bool = False,
        pfc: Optional[PfcConfig] = None,
    ):
        self.sim = sim
        self.owner = owner
        self.spec = spec
        self.index = index
        self.peer_node: Optional["Node"] = None
        self.peer_port: Optional["Port"] = None
        self.queue: deque = deque()  # entries: (Packet, ingress Port | None)
        self.queue_bytes = 0.0
        self.tx_bytes = 0.0
        self.busy = False
        self.drops = 0
        self.max_queue_bytes = max_queue_bytes
        self.red = red
        self.rng = rng
        self.stamp_int = stamp_int
        self.pfc_egress = PfcEgressState()
        self.pfc_ingress = PfcIngress(pfc)
        self.max_qlen_seen = 0.0
        self._wake_event = None
        # Fault-injection state (repro.sim.faults): None / True means healthy
        # and costs one attribute test on the hot path.
        self.fault_hook = None
        self.link_up = True
        self.fault_drops = 0

    # -- identity -----------------------------------------------------------

    @property
    def name(self) -> str:
        peer = self.peer_node.name if self.peer_node is not None else "?"
        return f"{self.owner.name}.p{self.index}->{peer}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name} q={self.queue_bytes:.0f}B busy={self.busy}>"

    # -- enqueue ------------------------------------------------------------

    def enqueue(self, pkt: Packet, ingress: Optional["Port"] = None) -> bool:
        """Queue a packet for transmission.  Returns False if tail-dropped.

        Control (PFC) frames jump the queue and are never dropped or marked.
        """
        if pkt.is_control:
            self.queue.appendleft((pkt, ingress))
            self.queue_bytes += pkt.size
        else:
            hook = self.fault_hook
            if hook is not None:
                action = hook.on_packet(pkt)
                if action == FAULT_DROP:
                    self.fault_drops += 1
                    self._release_dropped(pkt, ingress)
                    return False
                if action == FAULT_CORRUPT:
                    pkt.corrupt = True
            if (
                self.max_queue_bytes is not None
                and self.queue_bytes + pkt.size > self.max_queue_bytes
            ):
                self.drops += 1
                self._release_dropped(pkt, ingress)
                return False
            if self.red is not None and pkt.kind == DATA:
                p = self.red.mark_probability(self.queue_bytes)
                if p > 0.0 and (p >= 1.0 or self.rng.random() < p):
                    pkt.ece = True
            self.queue.append((pkt, ingress))
            self.queue_bytes += pkt.size
        if self.queue_bytes > self.max_qlen_seen:
            self.max_qlen_seen = self.queue_bytes
        self.try_drain()
        return True

    def _release_dropped(self, pkt: Packet, ingress: Optional["Port"]) -> None:
        """Undo the ingress PFC accounting for a packet dropped at enqueue.

        A dropped packet never occupies the egress buffer, so the bytes it
        charged against the upstream-facing ingress accounting must be freed
        immediately — otherwise a drop while the upstream is PFC-paused can
        leave the pause latched forever (the RESUME that would have been
        triggered by this packet's departure never fires).
        """
        if ingress is not None:
            if ingress.pfc_ingress.on_release(pkt.size):
                self.owner.send_pfc(ingress, resume=True)

    # -- drain --------------------------------------------------------------

    def try_drain(self) -> None:
        """Start transmitting the head-of-line packet if possible."""
        if self.busy or not self.queue:
            return
        now = self.sim.now()
        if self.pfc_egress.is_paused(now):
            self._schedule_wake(self.pfc_egress.paused_until)
            return
        pkt, ingress = self.queue.popleft()
        self.queue_bytes -= pkt.size
        if self.stamp_int and pkt.kind == DATA and pkt.int_records is not None:
            pkt.int_records.append(
                HopRecord(
                    qlen=self.queue_bytes,
                    tx_bytes=self.tx_bytes + pkt.size,
                    ts=now,
                    rate_bps=self.spec.rate_bps,
                )
            )
            pkt.hops += 1
        self.busy = True
        self.sim.schedule(self.spec.serialization_ns(pkt.size), self._tx_done, pkt, ingress)

    def _tx_done(self, pkt: Packet, ingress: Optional["Port"]) -> None:
        self.busy = False
        self.tx_bytes += pkt.size
        if ingress is not None:
            self.owner.on_forwarded(pkt, ingress)
        if self.peer_node is not None:
            if self.link_up:
                self.sim.schedule(
                    self.spec.prop_delay_ns, self.peer_node.receive, pkt, self.peer_port
                )
            else:
                # Link is down: the queue keeps draining (carrier loss), every
                # serialized packet is lost on the wire.
                self.fault_drops += 1
        self.try_drain()

    def _schedule_wake(self, at: float) -> None:
        ev = self._wake_event
        if ev is not None and not ev.cancelled and ev.time <= at:
            return
        if ev is not None:
            ev.cancel()
        self._wake_event = self.sim.schedule_at(at, self._wake)

    def _wake(self) -> None:
        self._wake_event = None
        self.try_drain()

    # -- PFC ---------------------------------------------------------------

    def apply_pause(self, pkt: Packet) -> None:
        """Apply a received PFC frame to this (egress) port."""
        if pkt.kind == PAUSE:
            self.pfc_egress.pause(self.sim.now(), pkt.pause_duration)
        elif pkt.kind == RESUME:
            self.pfc_egress.resume()
            self.try_drain()

    # -- introspection -------------------------------------------------------

    def reset_counters(self) -> None:
        """Reset monitoring counters (not queue state)."""
        self.max_qlen_seen = self.queue_bytes
        self.drops = 0
        self.fault_drops = 0

    @property
    def utilization_bytes(self) -> float:
        """Cumulative bytes transmitted (for throughput accounting)."""
        return self.tx_bytes
