"""Shortest-path ECMP routing-table construction.

For every destination host we run a reverse breadth-first search over the
(undirected, unweighted-hop) device graph; a switch's ECMP group toward that
destination is the set of its neighbours whose BFS distance is one less than
its own.  This yields exactly the up/down multipath structure of a fat-tree
(all spine/agg choices on shortest paths) without topology-specific code.

``networkx`` is used for graph bookkeeping and for independent verification
in tests (``nx.shortest_path_length`` must agree with the BFS distances).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Tuple

import networkx as nx


def build_device_graph(adjacency: Dict[int, Iterable[int]]) -> nx.Graph:
    """Build an undirected networkx graph from a node -> neighbours map."""
    g = nx.Graph()
    for node, neighbours in adjacency.items():
        g.add_node(node)
        for n in neighbours:
            g.add_edge(node, n)
    return g


def bfs_distances(adjacency: Dict[int, List[int]], source: int) -> Dict[int, int]:
    """Hop distances from ``source`` to every reachable node."""
    dist = {source: 0}
    q = deque([source])
    while q:
        u = q.popleft()
        du = dist[u]
        for v in adjacency[u]:
            if v not in dist:
                dist[v] = du + 1
                q.append(v)
    return dist


def ecmp_next_hops(
    adjacency: Dict[int, List[int]],
    destination: int,
) -> Dict[int, Tuple[int, ...]]:
    """Next-hop node ids on shortest paths toward ``destination``.

    Returns a map ``node -> sorted tuple of neighbour ids``; the destination
    itself and unreachable nodes are absent.  Neighbour order is sorted so
    ECMP group indexing is deterministic across runs.
    """
    dist = bfs_distances(adjacency, destination)
    result: Dict[int, Tuple[int, ...]] = {}
    for node, d in dist.items():
        if node == destination:
            continue
        hops = tuple(
            sorted(v for v in adjacency[node] if dist.get(v, -1) == d - 1)
        )
        if hops:
            result[node] = hops
    return result


def path_hop_count(adjacency: Dict[int, List[int]], src: int, dst: int) -> int:
    """Number of links on a shortest path between two nodes."""
    dist = bfs_distances(adjacency, dst)
    try:
        return dist[src]
    except KeyError:
        raise nx.NetworkXNoPath(f"no path {src} -> {dst}") from None
