"""Output-queued switch with static ECMP routing.

Routing tables are dictionaries ``dst host id -> tuple of candidate egress
ports`` built by :mod:`repro.sim.routing`.  ECMP selection is by the packet's
flow-stable hash, so every flow follows a single path and packets never
reorder (matching RoCE deployments, which pin flows to paths).

PFC: ingress-side byte accounting is kept on the port *facing the upstream
neighbour*; crossing the XOFF watermark sends a PAUSE frame back through that
port, and the accounted bytes are released when the packet completes egress
serialization.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..check import invariants as check_invariants
from .engine import Simulator
from .node import Node
from .packet import Packet
from .port import Port


class RoutingError(RuntimeError):
    """Raised when a packet has no route to its destination."""


class Switch(Node):
    """An output-queued, INT-capable, ECN-capable switch."""

    def __init__(self, sim: Simulator, node_id: int, name: str):
        super().__init__(sim, node_id, name)
        #: dst host node_id -> candidate egress ports (ECMP group)
        self.routes: Dict[int, Tuple[Port, ...]] = {}
        self.packets_forwarded = 0
        #: When True, a missing route drops the packet (counted) instead of
        #: raising.  The network turns this on once link failures make
        #: transient unreachability legitimate; in a healthy topology a
        #: missing route stays a loud configuration error.
        self.drop_unroutable = False
        self.routing_drops = 0

    # -- routing -------------------------------------------------------------

    def set_route(self, dst: int, ports: Tuple[Port, ...]) -> None:
        if not ports:
            raise RoutingError(f"{self.name}: empty ECMP group for dst {dst}")
        self.routes[dst] = ports

    def route(self, pkt: Packet) -> Optional[Port]:
        """Select the egress port for a packet (flow-hash ECMP).

        Returns ``None`` (instead of raising) for an unroutable packet when
        :attr:`drop_unroutable` is set.
        """
        group = self.routes.get(pkt.dst)
        if group is None:
            if self.drop_unroutable:
                return None
            raise RoutingError(
                f"{self.name}: no route to node {pkt.dst} for {pkt!r}"
            )
        if len(group) == 1:
            return group[0]
        return group[pkt.ecmp_hash % len(group)]

    # -- datapath --------------------------------------------------------------

    def receive(self, pkt: Packet, in_port: Optional[Port]) -> None:
        if pkt.is_control:
            # A PFC frame from the neighbour: pause/resume our egress toward it.
            if in_port is not None:
                in_port.apply_pause(pkt)
            return
        if in_port is not None:
            if in_port.pfc_ingress.on_enqueue(pkt.size):
                self.send_pfc(in_port, resume=False)
        out = self.route(pkt)
        if out is None:
            # Destination unreachable (failed links): drop, and release the
            # ingress PFC accounting charged above so the pause cannot latch.
            self.routing_drops += 1
            if in_port is not None:
                if in_port.pfc_ingress.on_release(pkt.size):
                    self.send_pfc(in_port, resume=True)
            return
        self.packets_forwarded += 1
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_switch_forward(self, pkt, out)
        out.enqueue(pkt, ingress=in_port)

    def on_forwarded(self, pkt: Packet, ingress: Port) -> None:
        if ingress.pfc_ingress.on_release(pkt.size):
            self.send_pfc(ingress, resume=True)

    # -- introspection -----------------------------------------------------------

    def total_queue_bytes(self) -> float:
        """Sum of all egress queue occupancies (monitoring)."""
        return sum(p.queue_bytes for p in self.ports)

    def total_drops(self) -> int:
        return sum(p.drops for p in self.ports)
