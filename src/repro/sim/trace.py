"""Simulation tracing: per-flow lifecycle records and per-port counters.

Two collectors that downstream users of the library typically need when
debugging a protocol or preparing plots:

* :class:`FlowTracer` — one row per flow (size, start, finish, FCT,
  retransmission-free delivery check) plus optional periodic snapshots of
  sender state (window/rate), exportable as CSV;
* :class:`PortCounterSampler` — periodic samples of per-port cumulative
  tx bytes / queue / drops, from which utilization time series derive.

Both are ordinary event-loop citizens like the monitors and cost nothing
when not started.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from .engine import Simulator
from .flow import Flow
from .host import Host
from .port import Port

#: Fixed-precision float rendering for CSV exports.  ``repr(float)`` output
#: can vary in length (0.1 vs 0.30000000000000004), which makes diffs and
#: golden files noisy; six decimal places is sub-nanosecond for times and
#: sub-byte for counters.
_FLOAT_FMT = "%.6f"


def _format_cell(value) -> str:
    if isinstance(value, float):
        return _FLOAT_FMT % value
    return "" if value is None else str(value)


def rows_to_csv(fieldnames: Sequence[str], rows: Iterable[dict]) -> str:
    """Render dict rows as CSV text with stable columns and float format.

    The shared export path for every CSV the simulator produces (flow
    tables, port samples, obs traces): column order is exactly
    ``fieldnames``, floats are fixed-precision, missing keys render empty.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(fieldnames)
    for row in rows:
        writer.writerow([_format_cell(row.get(name)) for name in fieldnames])
    return buf.getvalue()


@dataclass
class FlowSnapshot:
    """One periodic sample of a sender's congestion-control state."""

    time_ns: float
    flow_id: int
    acked_bytes: int
    inflight_bytes: int
    window_bytes: float
    pacing_rate_bps: Optional[float]


class FlowTracer:
    """Record flow lifecycles and (optionally) sender-state time series."""

    def __init__(
        self,
        sim: Simulator,
        hosts: Sequence[Host],
        *,
        snapshot_interval_ns: Optional[float] = None,
    ):
        self.sim = sim
        self.hosts = list(hosts)
        self.snapshot_interval_ns = snapshot_interval_ns
        self.snapshots: List[FlowSnapshot] = []
        self.completed: List[Flow] = []
        self._stopped = False
        self._event = None  # the pending self-rescheduled sample event
        for host in self.hosts:
            host.completion_callbacks.append(self._on_complete)

    def start(self) -> "FlowTracer":
        if self.snapshot_interval_ns is not None:
            self._event = self.sim.schedule(0.0, self._sample)
        return self

    def stop(self) -> None:
        """Stop sampling and cancel the pending event (no heap residue)."""
        self._stopped = True
        self.sim.cancel(self._event)
        self._event = None

    def _on_complete(self, flow: Flow) -> None:
        self.completed.append(flow)

    def _sample(self) -> None:
        if self._stopped:
            return
        now = self.sim.now()
        for host in self.hosts:
            for state in host.senders.values():
                if not state.flow.started or state.flow.completed:
                    continue
                self.snapshots.append(
                    FlowSnapshot(
                        time_ns=now,
                        flow_id=state.flow.flow_id,
                        acked_bytes=state.acked,
                        inflight_bytes=state.inflight,
                        window_bytes=state.cc.window_bytes,
                        pacing_rate_bps=state.cc.pacing_rate_bps,
                    )
                )
        self._event = self.sim.schedule(self.snapshot_interval_ns, self._sample)

    # -- export -----------------------------------------------------------------

    def completion_rows(self) -> List[dict]:
        """One dict per completed flow, ready for CSV/table rendering."""
        return [
            {
                "flow_id": f.flow_id,
                "src": f.src,
                "dst": f.dst,
                "size_bytes": f.size,
                "start_ns": f.start_time,
                "finish_ns": f.finish_time,
                "fct_ns": f.fct,
            }
            for f in self.completed
        ]

    to_csv_columns = (
        "flow_id",
        "src",
        "dst",
        "size_bytes",
        "start_ns",
        "finish_ns",
        "fct_ns",
    )

    def to_csv(self) -> str:
        """Completed-flow table as CSV text (write it wherever you like)."""
        return rows_to_csv(self.to_csv_columns, self.completion_rows())

    def snapshots_for(self, flow_id: int) -> List[FlowSnapshot]:
        return [s for s in self.snapshots if s.flow_id == flow_id]


@dataclass
class PortSample:
    """One periodic sample of a port's counters."""

    time_ns: float
    tx_bytes: float
    queue_bytes: float
    drops: int


class PortCounterSampler:
    """Sample cumulative port counters; derive utilization per interval."""

    def __init__(self, sim: Simulator, ports: Sequence[Port], interval_ns: float):
        if interval_ns <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.ports = list(ports)
        self.interval_ns = interval_ns
        self.samples: Dict[int, List[PortSample]] = {i: [] for i in range(len(self.ports))}
        self._stopped = False
        self._event = None  # the pending self-rescheduled sample event

    def start(self) -> "PortCounterSampler":
        self._event = self.sim.schedule(0.0, self._sample)
        return self

    def stop(self) -> None:
        """Stop sampling and cancel the pending event (no heap residue)."""
        self._stopped = True
        self.sim.cancel(self._event)
        self._event = None

    def _sample(self) -> None:
        if self._stopped:
            return
        now = self.sim.now()
        for i, port in enumerate(self.ports):
            self.samples[i].append(
                PortSample(now, port.tx_bytes, port.queue_bytes, port.drops)
            )
        self._event = self.sim.schedule(self.interval_ns, self._sample)

    def utilization_series(self, port_index: int) -> List[tuple]:
        """(interval midpoint ns, utilization in [0, 1]) per interval."""
        samples = self.samples[port_index]
        port = self.ports[port_index]
        out = []
        for a, b in zip(samples, samples[1:]):
            dt = b.time_ns - a.time_ns
            if dt <= 0:
                continue
            capacity = port.spec.rate_bps / 8.0 * dt / 1e9
            out.append(((a.time_ns + b.time_ns) / 2, (b.tx_bytes - a.tx_bytes) / capacity))
        return out

    def peak_utilization(self, port_index: int) -> float:
        series = self.utilization_series(port_index)
        return max((u for _, u in series), default=0.0)

    to_csv_columns = ("port", "time_ns", "tx_bytes", "queue_bytes", "drops")

    def to_csv(self) -> str:
        """All ports' samples as one CSV table (same exporter as flows)."""
        rows = [
            {
                "port": i,
                "time_ns": s.time_ns,
                "tx_bytes": s.tx_bytes,
                "queue_bytes": s.queue_bytes,
                "drops": s.drops,
            }
            for i in range(len(self.ports))
            for s in self.samples[i]
        ]
        return rows_to_csv(self.to_csv_columns, rows)
