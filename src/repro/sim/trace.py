"""Simulation tracing: per-flow lifecycle records and per-port counters.

Two collectors that downstream users of the library typically need when
debugging a protocol or preparing plots:

* :class:`FlowTracer` — one row per flow (size, start, finish, FCT,
  retransmission-free delivery check) plus optional periodic snapshots of
  sender state (window/rate), exportable as CSV;
* :class:`PortCounterSampler` — periodic samples of per-port cumulative
  tx bytes / queue / drops, from which utilization time series derive.

Both are ordinary event-loop citizens like the monitors and cost nothing
when not started.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .engine import Simulator
from .flow import Flow
from .host import Host
from .port import Port


@dataclass
class FlowSnapshot:
    """One periodic sample of a sender's congestion-control state."""

    time_ns: float
    flow_id: int
    acked_bytes: int
    inflight_bytes: int
    window_bytes: float
    pacing_rate_bps: Optional[float]


class FlowTracer:
    """Record flow lifecycles and (optionally) sender-state time series."""

    def __init__(
        self,
        sim: Simulator,
        hosts: Sequence[Host],
        *,
        snapshot_interval_ns: Optional[float] = None,
    ):
        self.sim = sim
        self.hosts = list(hosts)
        self.snapshot_interval_ns = snapshot_interval_ns
        self.snapshots: List[FlowSnapshot] = []
        self.completed: List[Flow] = []
        self._stopped = False
        for host in self.hosts:
            host.completion_callbacks.append(self._on_complete)

    def start(self) -> "FlowTracer":
        if self.snapshot_interval_ns is not None:
            self.sim.schedule(0.0, self._sample)
        return self

    def stop(self) -> None:
        self._stopped = True

    def _on_complete(self, flow: Flow) -> None:
        self.completed.append(flow)

    def _sample(self) -> None:
        if self._stopped:
            return
        now = self.sim.now()
        for host in self.hosts:
            for state in host.senders.values():
                if not state.flow.started or state.flow.completed:
                    continue
                self.snapshots.append(
                    FlowSnapshot(
                        time_ns=now,
                        flow_id=state.flow.flow_id,
                        acked_bytes=state.acked,
                        inflight_bytes=state.inflight,
                        window_bytes=state.cc.window_bytes,
                        pacing_rate_bps=state.cc.pacing_rate_bps,
                    )
                )
        self.sim.schedule(self.snapshot_interval_ns, self._sample)

    # -- export -----------------------------------------------------------------

    def completion_rows(self) -> List[dict]:
        """One dict per completed flow, ready for CSV/table rendering."""
        return [
            {
                "flow_id": f.flow_id,
                "src": f.src,
                "dst": f.dst,
                "size_bytes": f.size,
                "start_ns": f.start_time,
                "finish_ns": f.finish_time,
                "fct_ns": f.fct,
            }
            for f in self.completed
        ]

    def to_csv(self) -> str:
        """Completed-flow table as CSV text (write it wherever you like)."""
        rows = self.completion_rows()
        buf = io.StringIO()
        writer = csv.DictWriter(
            buf,
            fieldnames=[
                "flow_id",
                "src",
                "dst",
                "size_bytes",
                "start_ns",
                "finish_ns",
                "fct_ns",
            ],
        )
        writer.writeheader()
        writer.writerows(rows)
        return buf.getvalue()

    def snapshots_for(self, flow_id: int) -> List[FlowSnapshot]:
        return [s for s in self.snapshots if s.flow_id == flow_id]


@dataclass
class PortSample:
    """One periodic sample of a port's counters."""

    time_ns: float
    tx_bytes: float
    queue_bytes: float
    drops: int


class PortCounterSampler:
    """Sample cumulative port counters; derive utilization per interval."""

    def __init__(self, sim: Simulator, ports: Sequence[Port], interval_ns: float):
        if interval_ns <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.ports = list(ports)
        self.interval_ns = interval_ns
        self.samples: Dict[int, List[PortSample]] = {i: [] for i in range(len(self.ports))}
        self._stopped = False

    def start(self) -> "PortCounterSampler":
        self.sim.schedule(0.0, self._sample)
        return self

    def stop(self) -> None:
        self._stopped = True

    def _sample(self) -> None:
        if self._stopped:
            return
        now = self.sim.now()
        for i, port in enumerate(self.ports):
            self.samples[i].append(
                PortSample(now, port.tx_bytes, port.queue_bytes, port.drops)
            )
        self.sim.schedule(self.interval_ns, self._sample)

    def utilization_series(self, port_index: int) -> List[tuple]:
        """(interval midpoint ns, utilization in [0, 1]) per interval."""
        samples = self.samples[port_index]
        port = self.ports[port_index]
        out = []
        for a, b in zip(samples, samples[1:]):
            dt = b.time_ns - a.time_ns
            if dt <= 0:
                continue
            capacity = port.spec.rate_bps / 8.0 * dt / 1e9
            out.append(((a.time_ns + b.time_ns) / 2, (b.tx_bytes - a.tx_bytes) / capacity))
        return out

    def peak_utilization(self, port_index: int) -> float:
        series = self.utilization_series(port_index)
        return max((u for _, u in series), default=0.0)
