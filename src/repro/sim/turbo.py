"""Turbo packet core: struct-of-arrays state + timing-wheel scheduler.

This is the opt-in ``engine="turbo"`` implementation of the packet-accurate
simulator.  The reference engine (:mod:`repro.sim.engine`) stays untouched as
ground truth; everything here is an alternative implementation of the *same*
semantics, and CI proves the two produce **byte-identical** FCT digests on
the reference figures (``repro-experiments check differential --engines``).

What changes, and why it cannot change results:

* **Scheduler** — :class:`TurboSimulator` replaces the single global heap
  with a :class:`repro.sim.wheel.TimingWheel`.  The wheel reproduces the
  heap's total order ``(fire_time, schedule_time, seq)`` exactly (see the
  wheel module docstring for the argument), so event execution order — the
  only thing the scheduler can observably affect — is identical.  The
  wheel-push logic is inlined into the four ``schedule_*`` methods (the
  hottest calls in the simulator; a method call per event is measurable).

* **Struct-of-arrays state** — :class:`TurboCore` keeps per-flow delivered /
  acked / done columns as NumPy arrays (written through on the receive path)
  and gathers per-port queue/byte tallies into dense arrays on demand.  The
  columns are *mirrors* of the authoritative per-object scalars, so nothing
  downstream sees different values; they exist to make the batch consumers —
  completion checks, goodput sampling, bench probes — O(1)/vectorized
  instead of per-flow dict walks.  (Scalar hot-path tallies deliberately
  stay plain Python attributes: a NumPy scalar store costs several times an
  attribute store, so mirroring is only done where a batch reader exists.)

* **Flattened datapath** — :class:`TurboPort`, :class:`TurboSwitch` and
  :class:`TurboHost` override the per-packet methods with semantically
  identical bodies that hoist attribute lookups, inline the single-call
  helpers (``is_control``, ``end_seq``, ``route``, ``serialization_ns``,
  PFC accounting) and index flows through dense per-id slot lists instead
  of dict lookups.  Every observable side-effect (counters, sanitizer /
  flight-recorder / tracer hooks, RNG draws, event scheduling) happens in
  the same order with the same values.  (Extending transmit fusion to
  *forwarded* packets was evaluated and rejected: a packet arriving
  mid-serialization arms a wake whose tie-break key differs from the
  tx-done it replaces, which the ``--engines`` digest matrix caught as a
  real reordering on the fig-9 preset.)

Observability contract: the sanitizer (``check_invariants``), flight
recorder, phase profiler and tracer all work on the turbo path — the hooks
are inherited or replicated verbatim — so the ``--engines`` matrix can
assert identity with each of them enabled.

NumPy is required (the ``[perf]`` extra); constructing any turbo component
without it raises ImportError with an actionable message, and the test suite
skips (not fails) turbo cases in its absence.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

try:  # pragma: no cover - exercised via require_numpy in both branches
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..check import invariants as check_invariants
from ..obs import flightrec as obs_flightrec
from ..obs import profiler as obs_profiler
from ..obs import registry as obs_registry
from ..obs import tracer as obs_tracer
from . import engine as _engine
from .engine import _COMPACT_MIN_CANCELLED, _POOL_MAX, Event, SimulationError, Simulator
from .host import Host
from .monitor import GoodputMonitor
from .packet import ACK, CNP, DATA, HopRecord, Packet
from .port import FAULT_CORRUPT, FAULT_DROP, Port
from .switch import RoutingError, Switch
from .wheel import TimingWheel


def require_numpy():
    """Return numpy or raise an actionable ImportError (the [perf] gate)."""
    if _np is None:
        raise ImportError(
            "engine='turbo' requires numpy (the struct-of-arrays state "
            "columns are numpy arrays). Install it via the perf extra — "
            "pip install 'repro[perf]' — or run with the default "
            "engine='reference', which has no numpy dependency here."
        )
    return _np


# ---------------------------------------------------------------------------
# Struct-of-arrays state
# ---------------------------------------------------------------------------


class TurboCore:
    """Struct-of-arrays mirrors of per-flow and per-port hot state.

    Flow columns are indexed by ``flow_id`` (experiment flow ids are dense,
    starting at 0; the arrays grow amortized-doubling if they are not).  The
    receive path writes ``flow_received`` / ``flow_acked`` through as the
    authoritative per-object scalars change, so batch readers — the goodput
    sampler, the completion check, bench probes — get current values without
    touching any per-flow object.
    """

    __slots__ = (
        "flow_received",
        "flow_acked",
        "flow_done",
        "n_flows",
        "active",
        "ports",
    )

    def __init__(self, initial_capacity: int = 64):
        np = require_numpy()
        cap = max(int(initial_capacity), 1)
        self.flow_received = np.zeros(cap, dtype=np.int64)
        self.flow_acked = np.zeros(cap, dtype=np.int64)
        self.flow_done = np.zeros(cap, dtype=bool)
        #: One past the highest registered flow id (the live column extent).
        self.n_flows = 0
        #: Registered-but-not-completed flow count; the O(1) completion check.
        self.active = 0
        #: Every port in the network, in wiring order (see register_port).
        self.ports: List[Port] = []

    # -- flows ---------------------------------------------------------------

    def register_flow(self, flow) -> None:
        fid = flow.flow_id
        if fid < 0:
            raise ValueError(f"flow id must be non-negative, got {fid}")
        cap = len(self.flow_received)
        if fid >= cap:
            np = _np
            new_cap = max(cap * 2, fid + 1)
            for name in ("flow_received", "flow_acked", "flow_done"):
                old = getattr(self, name)
                grown = np.zeros(new_cap, dtype=old.dtype)
                grown[: len(old)] = old
                setattr(self, name, grown)
        if fid >= self.n_flows:
            self.n_flows = fid + 1
        self.active += 1

    def mark_done(self, flow) -> None:
        self.flow_done[flow.flow_id] = True
        self.active -= 1

    def all_done(self) -> bool:
        return self.active == 0

    # -- ports ---------------------------------------------------------------

    def register_port(self, port: Port) -> None:
        self.ports.append(port)

    def port_queue_bytes(self):
        """Per-port queue occupancy gathered into one float64 array."""
        np = _np
        return np.fromiter(
            (p.queue_bytes for p in self.ports), dtype=np.float64, count=len(self.ports)
        )

    def port_tx_bytes(self):
        """Per-port cumulative transmitted bytes as one float64 array."""
        np = _np
        return np.fromiter(
            (p.tx_bytes for p in self.ports), dtype=np.float64, count=len(self.ports)
        )


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class TurboSimulator(Simulator):
    """Drop-in :class:`~repro.sim.engine.Simulator` on a timing wheel.

    The public API, counters, sanitizer/flight-recorder/profiler hooks,
    lazy-cancellation accounting and compaction policy are all identical to
    the reference engine; only the pending-event container differs.  The
    inherited ``_heap`` stays empty — every entry lives in :attr:`wheel`.

    Each ``schedule_*`` method inlines :meth:`TimingWheel.push` (same logic,
    no method call): ``idx <= cur`` folds the float-dust clamp and the
    current-bucket case together, both landing a ``heappush`` into the
    (always heap-ordered) current bucket.
    """

    __slots__ = ("wheel", "_bucket_ns", "_n_buckets")

    def __init__(
        self,
        bucket_ns: Optional[float] = None,
        n_buckets: Optional[int] = None,
    ) -> None:
        require_numpy()
        super().__init__()
        kwargs = {}
        if bucket_ns is not None:
            kwargs["bucket_ns"] = bucket_ns
        if n_buckets is not None:
            kwargs["n_buckets"] = n_buckets
        self.wheel = TimingWheel(**kwargs)
        # Immutable wheel geometry, cached for the inlined push fast paths.
        self._bucket_ns = self.wheel.bucket_ns
        self._n_buckets = self.wheel.n_buckets

    # -- scheduling (wheel-backed twins of the reference methods) ------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        if delay < 0.0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        now = self._now
        time = now + delay
        seq = self._seq
        ev = Event(time, seq, fn, args)
        ev.sim = self
        wheel = self.wheel
        idx = int(time // self._bucket_ns)
        cur = wheel._cur
        if idx <= cur:
            heappush(wheel.current, (time, now, seq, ev))
            wheel._wheel_count += 1
        elif idx - cur >= self._n_buckets:
            heappush(wheel._overflow, (time, now, seq, ev))
        else:
            wheel._buckets[idx % self._n_buckets].append((time, now, seq, ev))
            wheel._wheel_count += 1
        self._seq = seq + 1
        return ev

    def schedule_detached(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        if delay < 0.0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        now = self._now
        time = now + delay
        seq = self._seq
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(time, seq, fn, args)
            ev.sim = self
            ev.detached = True
        wheel = self.wheel
        idx = int(time // self._bucket_ns)
        cur = wheel._cur
        if idx <= cur:
            heappush(wheel.current, (time, now, seq, ev))
            wheel._wheel_count += 1
        elif idx - cur >= self._n_buckets:
            heappush(wheel._overflow, (time, now, seq, ev))
        else:
            wheel._buckets[idx % self._n_buckets].append((time, now, seq, ev))
            wheel._wheel_count += 1
        self._seq = seq + 1

    def schedule_delivery(
        self,
        delay: float,
        t_end: float,
        tx_seq: Optional[int],
        fn: Callable[..., None],
        *args: Any,
    ) -> None:
        time = t_end + delay
        if tx_seq is None:
            tx_seq = self._seq
            self._seq = tx_seq + 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = tx_seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(time, tx_seq, fn, args)
            ev.sim = self
            ev.detached = True
        wheel = self.wheel
        idx = int(time // self._bucket_ns)
        cur = wheel._cur
        if idx <= cur:
            heappush(wheel.current, (time, t_end, tx_seq, ev))
            wheel._wheel_count += 1
        elif idx - cur >= self._n_buckets:
            heappush(wheel._overflow, (time, t_end, tx_seq, ev))
        else:
            wheel._buckets[idx % self._n_buckets].append((time, t_end, tx_seq, ev))
            wheel._wheel_count += 1

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        seq = self._seq
        ev = Event(time, seq, fn, args)
        ev.sim = self
        now = self._now
        wheel = self.wheel
        idx = int(time // self._bucket_ns)
        cur = wheel._cur
        if idx <= cur:
            heappush(wheel.current, (time, now, seq, ev))
            wheel._wheel_count += 1
        elif idx - cur >= self._n_buckets:
            heappush(wheel._overflow, (time, now, seq, ev))
        else:
            wheel._buckets[idx % self._n_buckets].append((time, now, seq, ev))
            wheel._wheel_count += 1
        self._seq = seq + 1
        return ev

    # -- introspection -------------------------------------------------------

    @property
    def pending_events(self) -> int:
        return self.wheel.size - self._cancelled

    @property
    def heap_size(self) -> int:
        return self.wheel.size

    def peek_time(self) -> Optional[float]:
        # Non-mutating on purpose: advancing the wheel cursor between runs
        # would let later pushes land behind it (see TimingWheel.find_min_live).
        entry = self.wheel.find_min_live()
        return entry[0] if entry is not None else None

    # -- compaction ----------------------------------------------------------

    def _maybe_compact(self) -> None:
        if self._cancelled >= _COMPACT_MIN_CANCELLED and (
            self._cancelled * 2 > self.wheel.size
        ):
            self._compact()

    def _compact(self) -> None:
        self.compactions += 1
        dropped = self.wheel.compact()
        pool = self._pool
        for ev in dropped:
            if ev.detached and len(pool) < _POOL_MAX:
                ev.fn = ev.args = None
                pool.append(ev)
        self._cancelled = 0

    # -- execution -----------------------------------------------------------

    def _run_fast(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        wheel = self.wheel
        peek = wheel.peek_until
        pool = self._pool
        reg = obs_registry.STATS
        chk = check_invariants.CHECKER
        if reg is not None:
            seq_before = self._seq
            cancels_before = self.cancellations
            compactions_before = self.compactions
        # Set exactly when the loop proved no event fires at or before
        # ``until`` — the only exits where the clock may advance to it.
        drained = False
        # Pops are tallied locally and settled onto the wheel's counters
        # before any peek (which consults them) and at loop exit; pushes from
        # inside callbacks update the wheel directly, so the wheel's counters
        # are only ever stale by exactly ``popped``.
        popped = 0
        cur_list = wheel.current
        try:
            while not self._stopped:
                if cur_list:
                    entry = cur_list[0]
                else:
                    if popped:
                        wheel._wheel_count -= popped
                        popped = 0
                    entry = peek(until)
                    if entry is None:
                        drained = True
                        break
                    cur_list = wheel.current
                ev = entry[3]
                if ev.cancelled:
                    heappop(cur_list)
                    popped += 1
                    self._cancelled -= 1
                    if ev.detached and len(pool) < _POOL_MAX:
                        ev.fn = ev.args = None
                        pool.append(ev)
                    continue
                t = entry[0]
                if until is not None and t > until:
                    drained = True
                    break
                heappop(cur_list)
                popped += 1
                if chk is not None:
                    chk.on_event(t, self._now)
                self._now = t
                self._cur_seq = entry[2]
                ev.fn(*ev.args)
                self._events_executed += 1
                executed += 1
                if ev.detached and len(pool) < _POOL_MAX:
                    ev.fn = ev.args = None
                    pool.append(ev)
                if max_events is not None and executed >= max_events:
                    break
            if popped:
                wheel._wheel_count -= popped
                popped = 0
            if until is not None and not self._stopped and self._now < until:
                if drained:
                    self._now = until
                else:
                    # max_events exit: mirror the reference's raw-head
                    # comparison (cancelled entries included, cursor fixed).
                    head = wheel.find_min_any()
                    if head is None or head[0] > until:
                        self._now = until
            self._maybe_compact()
        finally:
            if popped:  # a callback raised mid-loop: settle the counters
                wheel._wheel_count -= popped
            self._running = False
            _engine._TOTAL_EVENTS_EXECUTED += executed
            if reg is not None:
                reg.counter("engine.events_executed").inc(executed)
                reg.counter("engine.events_scheduled").inc(self._seq - seq_before)
                reg.counter("engine.events_cancelled").inc(
                    self.cancellations - cancels_before
                )
                reg.counter("engine.heap_compactions").inc(
                    self.compactions - compactions_before
                )
                reg.gauge("engine.heap_peak").update_max(wheel.size)

    def _run_profiled(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Twin of :meth:`_run_fast` with per-event phase attribution.

        Same wheel discipline, same counters, same clock advancement — so
        outputs stay byte-identical with profiling on; the only additions
        are the profiler push/pop pairs (see the reference engine's twin).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        wheel = self.wheel
        peek = wheel.peek_until
        pool = self._pool
        reg = obs_registry.STATS
        chk = check_invariants.CHECKER
        prof = obs_profiler.PHASE_HOOKS
        classify = obs_profiler.classify_callback
        prof_push = prof.push
        prof_pop = prof.pop
        if reg is not None:
            seq_before = self._seq
            cancels_before = self.cancellations
            compactions_before = self.compactions
        drained = False
        popped = 0
        cur_list = wheel.current
        prof_push("engine.loop")
        try:
            while not self._stopped:
                if cur_list:
                    entry = cur_list[0]
                else:
                    if popped:
                        wheel._wheel_count -= popped
                        popped = 0
                    entry = peek(until)
                    if entry is None:
                        drained = True
                        break
                    cur_list = wheel.current
                ev = entry[3]
                if ev.cancelled:
                    heappop(cur_list)
                    popped += 1
                    self._cancelled -= 1
                    if ev.detached and len(pool) < _POOL_MAX:
                        ev.fn = ev.args = None
                        pool.append(ev)
                    continue
                t = entry[0]
                if until is not None and t > until:
                    drained = True
                    break
                heappop(cur_list)
                popped += 1
                if chk is not None:
                    chk.on_event(t, self._now)
                self._now = t
                self._cur_seq = entry[2]
                prof_push(classify(ev.fn))
                try:
                    ev.fn(*ev.args)
                finally:
                    prof_pop()
                self._events_executed += 1
                executed += 1
                if ev.detached and len(pool) < _POOL_MAX:
                    ev.fn = ev.args = None
                    pool.append(ev)
                if max_events is not None and executed >= max_events:
                    break
            if popped:
                wheel._wheel_count -= popped
                popped = 0
            if until is not None and not self._stopped and self._now < until:
                if drained:
                    self._now = until
                else:
                    head = wheel.find_min_any()
                    if head is None or head[0] > until:
                        self._now = until
            self._maybe_compact()
        finally:
            if popped:  # a callback raised mid-loop: settle the counters
                wheel._wheel_count -= popped
            prof_pop()
            self._running = False
            _engine._TOTAL_EVENTS_EXECUTED += executed
            if reg is not None:
                reg.counter("engine.events_executed").inc(executed)
                reg.counter("engine.events_scheduled").inc(self._seq - seq_before)
                reg.counter("engine.events_cancelled").inc(
                    self.cancellations - cancels_before
                )
                reg.counter("engine.heap_compactions").inc(
                    self.compactions - compactions_before
                )
                reg.gauge("engine.heap_peak").update_max(wheel.size)


# ---------------------------------------------------------------------------
# Flattened datapath
# ---------------------------------------------------------------------------


class TurboPort(Port):
    """Port with the enqueue/drain/tx paths flattened.

    Identical early-outs, hooks, counters, fusion condition and event keys
    to the reference :class:`Port` — only Python-level overhead differs:
    hoisted attribute and module-global lookups, the ``is_control`` property
    and the two-layer ``serialization_ns`` call inlined (``LinkSpec``
    guarantees ``rate_bps > 0``, so the inlined arithmetic is exactly
    ``units.serialization_time_ns`` with its guard pre-proven).
    """

    __slots__ = ()

    def enqueue(self, pkt: Packet, ingress: Optional["Port"] = None) -> bool:
        size = pkt.size
        if pkt.kind > CNP:  # PAUSE / RESUME — control jumps the queue
            self.queue.appendleft((pkt, ingress))
            self.queue_bytes += size
        else:
            hook = self.fault_hook
            if hook is not None:
                action = hook.on_packet(pkt)
                if action == FAULT_DROP:
                    self.fault_drops += 1
                    chk = check_invariants.CHECKER
                    if chk is not None:
                        chk.on_drop(self, pkt, ingress, "fault")
                    self._release_dropped(pkt, ingress)
                    return False
                if action == FAULT_CORRUPT:
                    pkt.corrupt = True
            if (
                self.max_queue_bytes is not None
                and self.queue_bytes + size > self.max_queue_bytes
            ):
                self.drops += 1
                reg = obs_registry.STATS
                if reg is not None:
                    reg.counter("port.tail_drops").inc()
                chk = check_invariants.CHECKER
                if chk is not None:
                    chk.on_drop(self, pkt, ingress, "tail")
                self._release_dropped(pkt, ingress)
                return False
            red = self.red
            if red is not None and pkt.kind == DATA:
                p = red.mark_probability(self.queue_bytes)
                if p > 0.0 and (p >= 1.0 or self.rng.random() < p):
                    pkt.ece = True
            self.queue.append((pkt, ingress))
            self.queue_bytes += size
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_enqueue(self, pkt)
        fr = obs_flightrec.RECORDER
        if fr is not None:
            fr.on_enqueue(self, pkt, self.sim._now)
        qb = self.queue_bytes
        if qb > self.max_qlen_seen:
            self.max_qlen_seen = qb
            tr = obs_tracer.TRACER
            if tr is not None:
                tr.counter(
                    f"qmax {self.owner.name}.p{self.index}",
                    self.sim._now,
                    {"bytes": qb},
                    cat="queue",
                )
        self.try_drain()
        return True

    def try_drain(self) -> None:
        queue = self.queue
        if not queue:
            return
        if self._tx_pending:
            return
        sim = self.sim
        now = sim._now
        if now <= self.busy_until:
            self._schedule_wake(self.busy_until)
            return
        pfc_egress = self.pfc_egress
        if now < pfc_egress.paused_until:
            self._schedule_wake(pfc_egress.paused_until)
            return
        prof = obs_profiler.PHASE_HOOKS
        if prof is not None:
            prof.push("port.serialize")
        pkt, ingress = queue.popleft()
        size = pkt.size
        self.queue_bytes -= size
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_dequeue(self, pkt)
        spec = self.spec
        if self.stamp_int and pkt.kind == DATA and pkt.int_records is not None:
            pkt.int_records.append(
                HopRecord(
                    qlen=self.queue_bytes,
                    tx_bytes=self.tx_bytes + size,
                    ts=now,
                    rate_bps=spec.rate_bps,
                )
            )
            pkt.hops += 1
        ser = size * 8.0 / spec.rate_bps * 1e9
        fr = obs_flightrec.RECORDER
        if fr is not None:
            fr.on_dequeue(self, pkt, now, ser)
        peer = self.peer_node
        if (
            ingress is None
            and not queue
            and self.allow_fusion
            and self.link_up
            and peer is not None
        ):
            busy_until = now + ser
            self.busy_until = busy_until
            self.tx_bytes += size
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("port.fused_deliveries").inc()
            sim.schedule_delivery(
                spec.prop_delay_ns, busy_until, None,
                peer.receive, pkt, self.peer_port,
            )
        else:
            self._tx_pending = True
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("port.unfused_deliveries").inc()
            sim.schedule_detached(ser, self._tx_done, pkt, ingress)
        if prof is not None:
            prof.pop()

    def _tx_done(self, pkt: Packet, ingress: Optional["Port"]) -> None:
        self._tx_pending = False
        self.tx_bytes += pkt.size
        if ingress is not None:
            self.owner.on_forwarded(pkt, ingress)
        peer = self.peer_node
        if peer is not None:
            if self.link_up:
                sim = self.sim
                sim.schedule_delivery(
                    self.spec.prop_delay_ns, sim._now, sim._cur_seq,
                    peer.receive, pkt, self.peer_port,
                )
            else:
                self.fault_drops += 1
                chk = check_invariants.CHECKER
                if chk is not None:
                    chk.on_drop(self, pkt, ingress, "link-down")
        self.try_drain()


class TurboSwitch(Switch):
    """Switch with the per-packet forwarding path flattened.

    Same PFC charging/release, routing, hooks and drop handling as the
    reference :class:`Switch`, with the ``is_control`` property, the PFC
    watermark tests (in the common no-PFC-config case) and the ``route``
    ECMP selection inlined.
    """

    def receive(self, pkt: Packet, in_port: Optional[Port]) -> None:
        if pkt.kind > CNP:  # PAUSE / RESUME — link-local control
            if in_port is not None:
                in_port.apply_pause(pkt)
            return
        if in_port is not None:
            pfc_in = in_port.pfc_ingress
            if pfc_in.config is None:
                pfc_in.occupancy += pkt.size
            elif pfc_in.on_enqueue(pkt.size):
                self.send_pfc(in_port, resume=False)
        group = self.routes.get(pkt.dst)
        if group is None:
            if not self.drop_unroutable:
                raise RoutingError(
                    f"{self.name}: no route to node {pkt.dst} for {pkt!r}"
                )
            self.routing_drops += 1
            if in_port is not None:
                if in_port.pfc_ingress.on_release(pkt.size):
                    self.send_pfc(in_port, resume=True)
            return
        out = group[0] if len(group) == 1 else group[pkt.ecmp_hash % len(group)]
        self.packets_forwarded += 1
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_switch_forward(self, pkt, out)
        out.enqueue(pkt, ingress=in_port)

    def on_forwarded(self, pkt: Packet, ingress: Port) -> None:
        # Inlined PfcIngress.on_release for the no-config common case; the
        # watermarked path delegates to keep the counter/trigger logic in
        # one place.  Negative-occupancy clamping (and its sanitizer hook)
        # is replicated exactly.
        pi = ingress.pfc_ingress
        if pi.config is None:
            occ = pi.occupancy - pkt.size
            if occ < 0:
                chk = check_invariants.CHECKER
                if chk is not None:
                    chk.on_pfc_occupancy(occ)
                occ = 0.0
            pi.occupancy = occ
        elif pi.on_release(pkt.size):
            self.send_pfc(ingress, resume=True)


class TurboHost(Host):
    """Host with the receive path flattened and SoA write-through.

    Flow state is additionally indexed through dense per-id slot lists
    (``flow_id`` → state), replacing the per-packet dict lookups; the
    delivered/acked columns of the network's :class:`TurboCore` are written
    through as the scalars change.  Rare paths (PFC frames, corrupt
    packets, CNPs, completion) replicate or delegate to the reference
    implementation verbatim.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: SoA columns, installed by the owning Network (None standalone).
        self.core: Optional[TurboCore] = None
        self._recv_slots: List = []
        self._send_slots: List = []
        self._nic_port: Optional[Port] = None

    def attach_port(self, port: Port, neighbour_id: int) -> None:
        super().attach_port(port, neighbour_id)
        if self._nic_port is None:
            self._nic_port = port

    def add_receiver_flow(self, flow):
        state = super().add_receiver_flow(flow)
        slots = self._recv_slots
        fid = flow.flow_id
        if fid >= len(slots):
            slots.extend([None] * (fid + 1 - len(slots)))
        slots[fid] = state
        return state

    def add_sender_flow(self, flow, cc):
        state = super().add_sender_flow(flow, cc)
        slots = self._send_slots
        fid = flow.flow_id
        if fid >= len(slots):
            slots.extend([None] * (fid + 1 - len(slots)))
        slots[fid] = state
        return state

    def _try_send(self, state) -> None:
        # Verbatim twin of Host._try_send with the per-iteration property
        # reads inlined (``inflight`` is ``next_seq - acked``; ``min`` is a
        # branch) and the hook globals hoisted out of the loop — they cannot
        # change mid-loop, only between runs.
        flow = state.flow
        sim = self.sim
        mtu = self.mtu
        nic = self._nic_port
        if nic is None:
            nic = self.nic
        size = flow.size
        node_id = self.node_id
        chk = check_invariants.CHECKER
        fr = obs_flightrec.RECORDER
        while state.next_seq < size:
            cc = state.cc
            if state.next_seq - state.acked >= cc.window_bytes:
                return  # window-blocked; ACK arrival re-triggers
            if state.probe_mode and state.next_seq > state.acked:
                return  # stop-and-wait probe: one unacked packet at a time
            now = sim._now
            if now < state.next_allowed:
                self._arm_timer(state, state.next_allowed)
                return
            payload = size - state.next_seq
            if payload > mtu:
                payload = mtu
            pkt = Packet.data(
                flow.flow_id,
                node_id,
                flow.dst,
                state.next_seq,
                payload,
                send_ts=now,
                ecmp_hash=flow.ecmp_hash,
                priority=flow.priority,
            )
            state.next_seq += payload
            state.packets_sent += 1
            if chk is not None:
                chk.on_send(state)
            if fr is not None:
                track = state.fr
                if track is not None:
                    fr.on_send(track, pkt, now)
            nic.enqueue(pkt)
            rate = cc.pacing_rate_bps
            if rate is not None and rate > 0.0:
                state.next_allowed = now + pkt.size * 8.0 / rate * 1e9

    def receive(self, pkt: Packet, in_port: Optional[Port]) -> None:
        kind = pkt.kind
        if kind > CNP:  # PAUSE / RESUME — control, never data-handled
            if in_port is not None:
                in_port.apply_pause(pkt)
            return
        if pkt.corrupt:
            self.corrupt_discards += 1
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("host.corrupt_discards").inc()
            return
        fid = pkt.flow_id
        if kind == DATA:
            slots = self._recv_slots
            state = slots[fid] if 0 <= fid < len(slots) else None
            if state is None:
                raise RuntimeError(
                    f"{self.name}: data for unknown flow {fid} ({pkt!r})"
                )
            state.packets_received += 1
            end = pkt.seq + pkt.payload
            received = state.received
            if pkt.seq <= received and end > received:
                state.received = received = end
                core = self.core
                if core is not None:
                    core.flow_received[fid] = end
            chk = check_invariants.CHECKER
            if chk is not None:
                chk.on_data(state, pkt)
            now = self.sim._now
            nic = self._nic_port
            if nic is None:
                nic = self.nic
            if state.flow.use_cnp and pkt.ece:
                if now - state.last_cnp_time >= self.cnp_interval_ns:
                    state.last_cnp_time = now
                    nic.enqueue(Packet.cnp(fid, self.node_id, pkt.src))
            nic.enqueue(Packet.ack(pkt, received, now))
        elif kind == ACK:
            self._receive_ack_flat(pkt)
        else:  # CNP
            self._receive_cnp(pkt)

    def _receive_ack_flat(self, pkt: Packet) -> None:
        # Verbatim twin of Host._receive_ack with slot indexing, SoA
        # write-through and hoisted locals; every hook, counter and branch
        # matches the reference implementation (the engines matrix guards).
        fid = pkt.flow_id
        slots = self._send_slots
        state = slots[fid] if 0 <= fid < len(slots) else None
        if state is None:
            raise RuntimeError(f"{self.name}: ACK for unknown flow {fid}")
        flow = state.flow
        now = self.sim._now
        newly = pkt.seq - state.acked
        if newly < 0:
            newly = 0
        else:
            state.acked = pkt.seq
            core = self.core
            if core is not None:
                core.flow_acked[fid] = pkt.seq
        state.last_ack_time = now
        chk = check_invariants.CHECKER
        if chk is not None:
            chk.on_ack(state, pkt)
        if self.loss_recovery and newly > 0:
            state.rto_backoff = 1.0
            state.probe_mode = False
            state.last_rto_acked = -1
            self._arm_rto(state, reset=True)
        fr = obs_flightrec.RECORDER
        if fr is not None:
            track = state.fr
            if track is not None:
                fr.on_ack(track, pkt.fr, state.acked, now)
        ctx = self._ack_ctx
        ctx.now = now
        ctx.ack_seq = pkt.seq
        ctx.newly_acked = newly
        ctx.ece = pkt.ece
        ctx.int_records = pkt.int_records
        ctx.rtt = now - pkt.send_ts
        ctx.hops = pkt.hops
        state.cc.on_ack(ctx)
        if state.acked >= flow.size and not flow.completed:
            flow.finish_time = now
            if state.rto_timer is not None:
                state.rto_timer.cancel()
                state.rto_timer = None
            reg = obs_registry.STATS
            if reg is not None:
                reg.counter("host.flows_completed").inc()
            tr = obs_tracer.TRACER
            if tr is not None:
                tr.complete(
                    f"flow {flow.flow_id}",
                    flow.start_time,
                    now - flow.start_time,
                    cat="flow",
                    tid=flow.flow_id,
                    args={
                        "src": flow.src,
                        "dst": flow.dst,
                        "size_bytes": flow.size,
                        "retransmits": state.retransmits,
                    },
                )
            if fr is not None:
                track = state.fr
                if track is not None:
                    fr.on_complete(track, state, now)
            for cb in self.completion_callbacks:
                cb(flow)
            return
        self._try_send(state)


class TurboGoodputMonitor(GoodputMonitor):
    """Goodput sampler reading the SoA delivered column in one gather.

    Sample values are exactly the reference monitor's: the column mirrors
    ``receiver.received`` (int64, written through on every advance), and
    ``.tolist()`` yields the same Python ints the per-flow dict walk
    produces, so downstream rate math is byte-identical.
    """

    def __init__(self, sim, flows, nodes, interval_ns: float, *, core: TurboCore):
        super().__init__(sim, flows, nodes, interval_ns)
        np = require_numpy()
        self.core = core
        self._flow_ids = np.asarray([f.flow_id for f in self.flows], dtype=np.intp)

    def _sample(self) -> None:
        self.times.append(self.sim.now())
        self.samples.append(self.core.flow_received[self._flow_ids].tolist())
