"""Bucketed timing wheel (calendar queue) for the turbo engine.

The reference engine keeps every pending event in one :mod:`heapq` heap, so
each schedule/pop pays ``O(log n)`` comparisons against the whole calendar.
The packet datapath, however, schedules almost exclusively into the *near
future* — serialization ends tens of nanoseconds out, propagation a
microsecond out, pacing timers a few microseconds out — while the heap also
holds far-future timeout checks and retransmission timers that those hot
pushes must tunnel past.

The :class:`TimingWheel` splits virtual time into fixed-width buckets over a
bounded horizon:

* a push inside the horizon is an ``O(1)`` list append onto its bucket;
* a push beyond the horizon goes to a conventional *overflow heap*;
* the wheel drains buckets in time order, heapifying each bucket only when it
  becomes current (deferred sort), and spills overflow entries into the wheel
  as the horizon slides past them.

Ordering is **exactly** the reference heap's total order.  Entries are the
same 4-tuples ``(fire_time, schedule_time, seq, Event)`` the reference engine
uses.  Bucketing partitions entries by ``fire_time`` range, so any two
entries in different buckets are already correctly ordered by the bucket
index; entries in the same bucket are ordered by the full tuple via the
per-bucket heap.  Overflow entries always fire later than every in-wheel
entry (they are beyond the horizon, and spill back in before their bucket
becomes current), so the interleaving of pops is identical to a single global
heap — which is what lets the turbo engine promise byte-identical outputs.

Invariants (kept by :class:`repro.sim.turbo.TurboSimulator`, asserted in
tests):

* pushes never fire earlier than the bucket currently being drained
  (the engine never schedules into the past);
* ``current`` — the current bucket's list — is always heap-ordered, so
  same-bucket pushes use ``heappush`` while later buckets take plain appends;
* the cursor only moves forward, and only via :meth:`peek_until`, which
  bounds its advance by the caller's ``until`` so that a bounded run never
  strands the cursor ahead of virtual time (a stranded cursor would fold
  later near-past pushes into the wrong bucket and reorder them).
"""

from __future__ import annotations

import heapq
from typing import List, Optional

#: Default bucket width in nanoseconds.  Chosen so that the datapath's
#: dominant delays (50-250 ns serialization ends) land zero-to-a-few buckets
#: ahead: most pushes are appends, and per-bucket heaps stay tiny.
DEFAULT_BUCKET_NS = 64.0

#: Default bucket count.  With 64 ns buckets the horizon is ~131 us, which
#: covers propagation (1 us), pacing (~us), CNP intervals (50 us), RTO floors
#: (25 us) and the completion-check cadence (100 us); only pause quanta and
#: staggered flow starts overflow.
DEFAULT_N_BUCKETS = 2048


class TimingWheel:
    """A calendar queue over ``(fire_time, schedule_time, seq, event)`` tuples.

    The wheel does not interpret events and does not filter cancelled
    entries — like the raw heap, it hands back whatever was pushed, head
    first, and the engine's run loop applies its lazy-cancellation
    discipline.  ``size`` therefore counts cancelled entries too, mirroring
    ``len(Simulator._heap)``.
    """

    __slots__ = (
        "bucket_ns",
        "n_buckets",
        "_buckets",
        "_cur",
        "current",
        "_overflow",
        "_wheel_count",
    )

    def __init__(
        self,
        bucket_ns: float = DEFAULT_BUCKET_NS,
        n_buckets: int = DEFAULT_N_BUCKETS,
    ) -> None:
        if bucket_ns <= 0:
            raise ValueError(f"bucket_ns must be positive, got {bucket_ns}")
        if n_buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {n_buckets}")
        self.bucket_ns = bucket_ns
        self.n_buckets = n_buckets
        self._buckets: List[list] = [[] for _ in range(n_buckets)]
        # Absolute index of the bucket being drained; bucket b covers fire
        # times [b * bucket_ns, (b + 1) * bucket_ns).
        self._cur = 0
        # The current bucket's list (always heap-ordered).  Exposed so the
        # engine's run loop can pop from it without an attribute dance.
        self.current: list = self._buckets[0]
        self._overflow: list = []
        # In-wheel entry count; the overflow heap's count is its len, and
        # ``size`` derives from the two, so pushes and pops maintain exactly
        # one counter (this is a measurable win at millions of events).
        self._wheel_count = 0

    @property
    def size(self) -> int:
        """Total pending entries (cancelled included), like ``len(heap)``."""
        return self._wheel_count + len(self._overflow)

    # -- scheduling ----------------------------------------------------------

    def push(self, entry: tuple) -> None:
        """Insert an entry; ``entry[0]`` (fire time) decides the bucket."""
        idx = int(entry[0] // self.bucket_ns)
        cur = self._cur
        if idx < cur:
            # Defensive: a fire time inside the current bucket can floor-divide
            # to an earlier index only through float dust at the boundary; the
            # engine guarantees fire >= now, so fold it into the current bucket.
            idx = cur
        if idx - cur >= self.n_buckets:
            heapq.heappush(self._overflow, entry)
        elif idx == cur:
            heapq.heappush(self.current, entry)
            self._wheel_count += 1
        else:
            self._buckets[idx % self.n_buckets].append(entry)
            self._wheel_count += 1

    # -- draining ------------------------------------------------------------

    def peek_until(self, until: Optional[float]) -> Optional[tuple]:
        """Head entry of the calendar, advancing buckets as needed.

        Returns the globally-minimum entry, or ``None`` if there is none with
        a fire time in or before ``until``'s bucket (the returned entry itself
        may still fire after ``until`` when it shares ``until``'s bucket — the
        caller compares fire times, exactly as the reference loop peeks the
        heap before deciding to stop).
        """
        cur_list = self.current
        if cur_list:
            return cur_list[0]
        if self._wheel_count == 0 and not self._overflow:
            return None
        cur = self._cur
        limit = None if until is None else int(until // self.bucket_ns)
        if limit is not None and limit <= cur:
            # ``until`` falls in (or before) the already-empty current bucket;
            # everything pending fires in a later bucket, hence after until.
            return None
        buckets = self._buckets
        n = self.n_buckets
        overflow = self._overflow
        while True:
            if self._wheel_count:
                cur += 1
            elif overflow:
                # Wheel is empty: jump straight to the overflow head's bucket
                # (capped at the limit) instead of stepping over a long run of
                # empty slots.  No in-wheel entry is skipped — there are none.
                cur = int(overflow[0][0] // self.bucket_ns)
                if limit is not None and cur > limit:
                    cur = limit
            else:
                return None
            # Horizon slid forward: spill overflow entries that now fit.
            horizon_end = (cur + n) * self.bucket_ns
            while overflow and overflow[0][0] < horizon_end:
                entry = heapq.heappop(overflow)
                idx = int(entry[0] // self.bucket_ns)
                if idx < cur:
                    idx = cur
                buckets[idx % n].append(entry)
                self._wheel_count += 1
            cur_list = buckets[cur % n]
            if cur_list:
                heapq.heapify(cur_list)
                self._cur = cur
                self.current = cur_list
                return cur_list[0]
            if limit is not None and cur >= limit:
                self._cur = cur
                self.current = cur_list
                return None

    def pop(self) -> tuple:
        """Pop the head entry (call only after ``peek_until`` returned it)."""
        self._wheel_count -= 1
        return heapq.heappop(self.current)

    def find_min_live(self) -> Optional[tuple]:
        """Earliest non-cancelled entry *without* advancing the cursor.

        ``peek_until`` moves the drain cursor forward, which is only safe
        mid-run (the run loop immediately executes what it finds, keeping
        virtual time in step with the cursor).  Introspection between runs —
        ``Simulator.peek_time`` — must not move it, or pushes scheduled after
        the peek could land behind the cursor and be folded into the wrong
        bucket.  This scan is O(pending) worst case but runs far from the hot
        loop (a few times per simulated 100 us).
        """
        cur = self._cur
        buckets = self._buckets
        n = self.n_buckets
        for off in range(n):
            bucket = buckets[(cur + off) % n]
            if not bucket:
                continue
            best = None
            for entry in bucket:
                if not entry[3].cancelled and (best is None or entry < best):
                    best = entry
            if best is not None:
                return best
        best = None
        for entry in self._overflow:
            if not entry[3].cancelled and (best is None or entry < best):
                best = entry
        return best

    def find_min_any(self) -> Optional[tuple]:
        """Global minimum entry *including* cancelled ones, cursor untouched.

        The run loop's end-of-run clock-advance decision compares the raw
        calendar head against ``until`` exactly as the reference engine
        compares ``heap[0]`` — cancelled entries included — so this scan must
        not filter.  Entries never sit behind the cursor (it only advances
        past drained buckets), so the first non-empty bucket in cursor order
        holds the wheel minimum, and overflow entries all fire later.
        """
        if self.current:
            return self.current[0]
        cur = self._cur
        buckets = self._buckets
        n = self.n_buckets
        for off in range(n):
            bucket = buckets[(cur + off) % n]
            if bucket:
                return min(bucket)
        if self._overflow:
            return self._overflow[0]
        return None

    # -- maintenance ---------------------------------------------------------

    def compact(self) -> List:
        """Drop cancelled entries from every bucket and the overflow heap.

        Returns the dropped entries' events so the engine can park detached
        ones on its free list.  Ordering is untouched: only entries the run
        loop would have discarded anyway are removed.
        """
        dropped: List = []
        cur_slot = self._cur % self.n_buckets
        for i, bucket in enumerate(self._buckets):
            if not bucket:
                continue
            live = [e for e in bucket if not e[3].cancelled]
            if len(live) != len(bucket):
                dropped.extend(e[3] for e in bucket if e[3].cancelled)
                bucket[:] = live
                if i == cur_slot:
                    heapq.heapify(bucket)
        overflow = self._overflow
        if overflow:
            live = [e for e in overflow if not e[3].cancelled]
            if len(live) != len(overflow):
                dropped.extend(e[3] for e in overflow if e[3].cancelled)
                heapq.heapify(live)
                overflow[:] = live
        self._wheel_count = sum(len(b) for b in self._buckets)
        return dropped

    def __len__(self) -> int:
        return self.size
