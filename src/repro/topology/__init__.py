"""Topology builders: incast star (Sec. III-D) and fat-tree (Fig. 7)."""

from .base import Topology
from .fattree import FatTreeParams, build_fattree, scaled_fattree_params
from .star import build_star

__all__ = [
    "FatTreeParams",
    "Topology",
    "build_fattree",
    "build_star",
    "scaled_fattree_params",
]
