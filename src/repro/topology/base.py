"""Common topology handle returned by the builders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..sim.host import Host
from ..sim.network import Network
from ..sim.port import Port
from ..sim.switch import Switch


@dataclass
class Topology:
    """A built network plus named groups the experiments address.

    Attributes
    ----------
    network:
        The wired :class:`repro.sim.network.Network` (routing already built).
    hosts:
        All hosts, in builder-defined order.
    switches:
        All switches.
    bottleneck_ports:
        Ports experiments typically monitor for queue depth (e.g. the
        switch-to-receiver port of an incast star; every fabric egress port
        for the fat-tree).
    meta:
        Builder-specific facts (rates, counts) for reporting.
    """

    network: Network
    hosts: List[Host]
    switches: List[Switch]
    bottleneck_ports: List[Port] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def sim(self):
        return self.network.sim

    def host_ids(self) -> List[int]:
        return [h.node_id for h in self.hosts]
