"""Three-layer fat-tree topology (Fig. 7).

The paper's datacenter simulations use the HPCC topology: 320 hosts, five
2-layer pods of 4 ToR + 4 Agg switches each, 16 spine switches; 100 Gbps
host links and 400 Gbps fabric links, 1 us propagation per link.

Wiring rules (standard folded-Clos):

* every host connects to exactly one ToR;
* within a pod, every ToR connects to every Agg (full bipartite);
* spine switches are partitioned into ``aggs_per_pod`` planes; Agg ``i`` of
  every pod connects to every spine in plane ``i``.

The builder is fully parameterized so benches can run scaled-down instances
(e.g. 2 pods x 2x2 switches x 4 hosts at 10/40 Gbps) while unit tests verify
the paper-scale instance's structure (Fig. 7 reproduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.network import Network
from ..sim.pfc import PfcConfig
from ..sim.port import RedConfig
from ..units import gbps, us
from .base import Topology


@dataclass(frozen=True)
class FatTreeParams:
    """Shape and link-speed parameters; defaults are the paper's (Fig. 7)."""

    pods: int = 5
    tors_per_pod: int = 4
    aggs_per_pod: int = 4
    hosts_per_tor: int = 16
    spines: int = 16
    host_rate_bps: float = gbps(100.0)
    fabric_rate_bps: float = gbps(400.0)
    prop_delay_ns: float = us(1.0)

    def __post_init__(self) -> None:
        if min(self.pods, self.tors_per_pod, self.aggs_per_pod, self.hosts_per_tor) < 1:
            raise ValueError("all fat-tree dimensions must be >= 1")
        if self.spines % self.aggs_per_pod != 0:
            raise ValueError(
                f"spines ({self.spines}) must be divisible by aggs_per_pod "
                f"({self.aggs_per_pod}) to form planes"
            )

    @property
    def n_hosts(self) -> int:
        return self.pods * self.tors_per_pod * self.hosts_per_tor

    @property
    def n_tors(self) -> int:
        return self.pods * self.tors_per_pod

    @property
    def n_aggs(self) -> int:
        return self.pods * self.aggs_per_pod

    @property
    def spines_per_plane(self) -> int:
        return self.spines // self.aggs_per_pod


def scaled_fattree_params(
    *,
    pods: int = 2,
    tors_per_pod: int = 2,
    aggs_per_pod: int = 2,
    hosts_per_tor: int = 4,
    spines: int = 4,
    host_rate_bps: float = gbps(10.0),
    fabric_rate_bps: float = gbps(40.0),
    prop_delay_ns: float = us(1.0),
) -> FatTreeParams:
    """A laptop-scale instance preserving the 4:1 fabric/host rate ratio."""
    return FatTreeParams(
        pods=pods,
        tors_per_pod=tors_per_pod,
        aggs_per_pod=aggs_per_pod,
        hosts_per_tor=hosts_per_tor,
        spines=spines,
        host_rate_bps=host_rate_bps,
        fabric_rate_bps=fabric_rate_bps,
        prop_delay_ns=prop_delay_ns,
    )


def build_fattree(
    params: Optional[FatTreeParams] = None,
    *,
    seed: int = 1,
    red: Optional[RedConfig] = None,
    pfc: Optional[PfcConfig] = None,
    max_queue_bytes: Optional[float] = None,
    engine: str = "reference",
) -> Topology:
    """Build the fat-tree and its routing tables.

    Host ordering in :attr:`Topology.hosts` is pod-major, then ToR, then
    host-within-ToR, which experiments use to pick same-pod or cross-pod
    pairs deterministically; ``engine`` selects the simulator core.
    """
    p = params or FatTreeParams()
    net = Network(seed=seed, engine=engine)
    link_kw = dict(red=red, pfc=pfc, max_queue_bytes=max_queue_bytes)

    spines = [net.add_switch(f"spine{i}") for i in range(p.spines)]
    tors = []
    aggs = []
    hosts = []
    for pod in range(p.pods):
        pod_aggs = [net.add_switch(f"p{pod}agg{a}") for a in range(p.aggs_per_pod)]
        pod_tors = [net.add_switch(f"p{pod}tor{t}") for t in range(p.tors_per_pod)]
        aggs.extend(pod_aggs)
        tors.extend(pod_tors)
        # ToR <-> Agg full bipartite within the pod.
        for tor in pod_tors:
            for agg in pod_aggs:
                net.connect(tor, agg, p.fabric_rate_bps, p.prop_delay_ns, **link_kw)
        # Agg i <-> its spine plane.
        per_plane = p.spines_per_plane
        for a, agg in enumerate(pod_aggs):
            for spine in spines[a * per_plane : (a + 1) * per_plane]:
                net.connect(agg, spine, p.fabric_rate_bps, p.prop_delay_ns, **link_kw)
        # Hosts under each ToR.
        for t, tor in enumerate(pod_tors):
            for h in range(p.hosts_per_tor):
                host = net.add_host(f"p{pod}t{t}h{h}")
                net.connect(host, tor, p.host_rate_bps, p.prop_delay_ns, **link_kw)
                hosts.append(host)

    net.build_routing()
    # Monitor every fabric-facing egress port plus ToR->host ports: that is
    # where datacenter congestion lives.
    bottlenecks = [port for sw in tors + aggs + spines for port in sw.ports]
    return Topology(
        network=net,
        hosts=hosts,
        switches=tors + aggs + spines,
        bottleneck_ports=bottlenecks,
        meta={
            "kind": "fattree",
            "params": p,
            "n_hosts": p.n_hosts,
            "n_switches": len(tors) + len(aggs) + len(spines),
        },
    )
