"""Single-switch star topology (Sec. III-D's incast testbed).

"A single switch topology with 17 hosts and each host has a 100 Gbps link to
the switch, and 16 of the hosts have one flow to the 17th host.  Each link
has 1 us of propagation delay."

The builder generalizes to N senders + 1 receiver.  Host index ``n_senders``
(the last host) is the incast sink; the monitored bottleneck is the switch's
egress port toward it.
"""

from __future__ import annotations

from typing import Optional

from ..sim.network import Network
from ..sim.pfc import PfcConfig
from ..sim.port import RedConfig
from ..units import gbps, us
from .base import Topology


def build_star(
    n_senders: int = 16,
    *,
    rate_bps: float = gbps(100.0),
    prop_delay_ns: float = us(1.0),
    seed: int = 1,
    red: Optional[RedConfig] = None,
    pfc: Optional[PfcConfig] = None,
    max_queue_bytes: Optional[float] = None,
    engine: str = "reference",
) -> Topology:
    """Build an ``n_senders``-to-1 star through one switch.

    Parameters mirror the paper's Sec. III-D defaults (100 Gbps links, 1 us
    propagation).  ``red``/``pfc``/``max_queue_bytes`` apply to every link;
    ``engine`` selects the simulator core (see :class:`repro.sim.Network`).
    """
    if n_senders < 1:
        raise ValueError(f"need at least one sender, got {n_senders}")
    net = Network(seed=seed, engine=engine)
    switch = net.add_switch("sw0")
    hosts = [net.add_host(f"h{i}") for i in range(n_senders + 1)]
    for host in hosts:
        net.connect(
            host,
            switch,
            rate_bps,
            prop_delay_ns,
            red=red,
            pfc=pfc,
            max_queue_bytes=max_queue_bytes,
        )
    net.build_routing()
    receiver = hosts[-1]
    bottleneck = switch.port_to[receiver.node_id]
    return Topology(
        network=net,
        hosts=hosts,
        switches=[switch],
        bottleneck_ports=[bottleneck],
        meta={
            "kind": "star",
            "n_senders": n_senders,
            "rate_bps": rate_bps,
            "prop_delay_ns": prop_delay_ns,
            "receiver_id": receiver.node_id,
        },
    )
