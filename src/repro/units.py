"""Unit helpers for the simulator.

Internal conventions, used consistently across :mod:`repro`:

* **time** — nanoseconds, as ``float`` (the event engine orders events with a
  monotonically increasing sequence number, so exact float ties are safe);
* **data** — bytes, as ``int`` where a packet/flow size is meant and ``float``
  where an accumulator is meant;
* **rate** — bits per second (``float``).  Helper functions convert to and
  from bytes-per-nanosecond where the hot paths need it.

The helpers exist so that experiment configuration can be written in the units
the paper uses (Gbps links, microsecond propagation delays, KB queue
thresholds) without sprinkling magic conversion factors through the code.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

#: One microsecond, in nanoseconds.
USEC = 1_000.0
#: One millisecond, in nanoseconds.
MSEC = 1_000_000.0
#: One second, in nanoseconds.
SEC = 1_000_000_000.0


def us(value: float) -> float:
    """Convert microseconds to internal nanoseconds."""
    return value * USEC


def ms(value: float) -> float:
    """Convert milliseconds to internal nanoseconds."""
    return value * MSEC


def seconds(value: float) -> float:
    """Convert seconds to internal nanoseconds."""
    return value * SEC


def ns_to_us(value: float) -> float:
    """Convert internal nanoseconds to microseconds (for reporting)."""
    return value / USEC


def ns_to_ms(value: float) -> float:
    """Convert internal nanoseconds to milliseconds (for reporting)."""
    return value / MSEC


# ---------------------------------------------------------------------------
# Data sizes
# ---------------------------------------------------------------------------

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KiB = 1_024
MiB = 1_048_576


def kb(value: float) -> int:
    """Kilobytes (decimal, as the paper uses) to bytes."""
    return int(value * KB)


def mb(value: float) -> int:
    """Megabytes (decimal) to bytes."""
    return int(value * MB)


# ---------------------------------------------------------------------------
# Rates
# ---------------------------------------------------------------------------

Kbps = 1_000.0
Mbps = 1_000_000.0
Gbps = 1_000_000_000.0


def gbps(value: float) -> float:
    """Gigabits per second to bits per second."""
    return value * Gbps


def mbps(value: float) -> float:
    """Megabits per second to bits per second."""
    return value * Mbps


def rate_bps_to_bytes_per_ns(rate_bps: float) -> float:
    """Convert a bits-per-second rate into bytes per nanosecond."""
    return rate_bps / 8.0 / SEC


def bytes_per_ns_to_bps(rate: float) -> float:
    """Convert bytes per nanosecond back to bits per second."""
    return rate * 8.0 * SEC


def serialization_time_ns(size_bytes: int, rate_bps: float) -> float:
    """Time in nanoseconds to serialize ``size_bytes`` onto a ``rate_bps`` link.

    Raises
    ------
    ValueError
        If the rate is not positive (a zero-rate link can never transmit).
    """
    if rate_bps <= 0.0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    return size_bytes * 8.0 / rate_bps * SEC


def bdp_bytes(rate_bps: float, rtt_ns: float) -> float:
    """Bandwidth-delay product in bytes for a rate and round-trip time."""
    return rate_bps / 8.0 * rtt_ns / SEC


def format_rate(rate_bps: float) -> str:
    """Human-readable rendering of a bits-per-second rate."""
    if rate_bps >= Gbps:
        return f"{rate_bps / Gbps:.3g} Gbps"
    if rate_bps >= Mbps:
        return f"{rate_bps / Mbps:.3g} Mbps"
    if rate_bps >= Kbps:
        return f"{rate_bps / Kbps:.3g} Kbps"
    return f"{rate_bps:.3g} bps"


def format_bytes(size: float) -> str:
    """Human-readable rendering of a byte count (decimal units)."""
    if size >= GB:
        return f"{size / GB:.3g} GB"
    if size >= MB:
        return f"{size / MB:.3g} MB"
    if size >= KB:
        return f"{size / KB:.3g} KB"
    return f"{size:.3g} B"


def format_time_ns(t: float) -> str:
    """Human-readable rendering of a nanosecond timestamp/duration."""
    if t >= SEC:
        return f"{t / SEC:.4g} s"
    if t >= MSEC:
        return f"{t / MSEC:.4g} ms"
    if t >= USEC:
        return f"{t / USEC:.4g} us"
    return f"{t:.4g} ns"
