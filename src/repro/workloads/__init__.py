"""Workload generators: incast microbenchmarks and datacenter traffic."""

from .distributions import (
    ALISTORAGE,
    DISTRIBUTIONS,
    HADOOP,
    WEBSEARCH,
    WEBSEARCH_STORAGE,
    FlowSizeDistribution,
    MixedDistribution,
    get_distribution,
)
from .incast import IncastFlowSpec, simultaneous_incast, staggered_incast
from .poisson import (
    TrafficFlowSpec,
    generate_poisson_traffic,
    offered_load,
    poisson_arrival_rate_per_ns,
)

__all__ = [
    "ALISTORAGE",
    "DISTRIBUTIONS",
    "FlowSizeDistribution",
    "HADOOP",
    "IncastFlowSpec",
    "MixedDistribution",
    "TrafficFlowSpec",
    "WEBSEARCH",
    "WEBSEARCH_STORAGE",
    "generate_poisson_traffic",
    "get_distribution",
    "offered_load",
    "poisson_arrival_rate_per_ns",
    "simultaneous_incast",
    "staggered_incast",
]
