"""Flow-size distributions for the datacenter simulations (Sec. VI-A).

The paper draws flow sizes from three published workloads:

* **Facebook Hadoop** (Zeng et al. [29]) — "mostly small flows (95% < 300 KB)
  and a small number of large flows (2.5% > 1 MB)";
* **Microsoft WebSearch** (the DCTCP trace) — "many long flows (30% > 1 MB)";
* **Alibaba storage** — "almost exclusively small flows (96% < 128 KB and
  100% < 2 MB)".

The exact CDN-hosted CDF files from the HPCC artifact are not available in
this offline environment, so each distribution is embedded as a piecewise
CDF **constructed to satisfy the paper's stated statistics** (verified by
unit tests).  This is the substitution documented in DESIGN.md: the
evaluation's qualitative result depends on the small-flow/long-flow mix,
which these tables reproduce.

Sampling inverts the CDF with linear interpolation in size; means are the
exact piecewise-linear integrals, used to convert target load into a Poisson
arrival rate.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Dict, Tuple


# (size_bytes, cumulative_probability) — must be strictly increasing in both
# coordinates and end at probability 1.0.
_HADOOP_POINTS: Tuple[Tuple[float, float], ...] = (
    (100.0, 0.00),
    (200.0, 0.10),
    (400.0, 0.25),
    (1_000.0, 0.40),
    (2_000.0, 0.50),
    (5_000.0, 0.60),
    (20_000.0, 0.70),
    (50_000.0, 0.80),
    (150_000.0, 0.90),
    (300_000.0, 0.95),
    (1_000_000.0, 0.975),
    (5_000_000.0, 0.995),
    (10_000_000.0, 0.999),
    (30_000_000.0, 1.00),
)

_WEBSEARCH_POINTS: Tuple[Tuple[float, float], ...] = (
    (1_000.0, 0.00),
    (6_000.0, 0.15),
    (13_000.0, 0.20),
    (19_000.0, 0.30),
    (33_000.0, 0.40),
    (53_000.0, 0.53),
    (133_000.0, 0.60),
    (667_000.0, 0.69),
    (1_000_000.0, 0.70),
    (2_000_000.0, 0.80),
    (5_000_000.0, 0.90),
    (10_000_000.0, 0.97),
    (30_000_000.0, 1.00),
)

_ALISTORAGE_POINTS: Tuple[Tuple[float, float], ...] = (
    (500.0, 0.00),
    (1_000.0, 0.30),
    (4_000.0, 0.50),
    (16_000.0, 0.70),
    (64_000.0, 0.90),
    (128_000.0, 0.96),
    (512_000.0, 0.99),
    (2_000_000.0, 1.00),
)


@dataclass(frozen=True)
class FlowSizeDistribution:
    """A piecewise-linear flow-size CDF with sampling and moments."""

    name: str
    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("a CDF needs at least two points")
        sizes = [p[0] for p in self.points]
        probs = [p[1] for p in self.points]
        if any(b <= a for a, b in zip(sizes, sizes[1:])):
            raise ValueError(f"{self.name}: sizes must be strictly increasing")
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ValueError(f"{self.name}: CDF must be non-decreasing")
        if probs[0] < 0 or abs(probs[-1] - 1.0) > 1e-12:
            raise ValueError(f"{self.name}: CDF must start >= 0 and end at 1")

    # -- queries ---------------------------------------------------------------

    def cdf(self, size: float) -> float:
        """P(flow size <= size), linearly interpolated."""
        sizes = [p[0] for p in self.points]
        if size <= sizes[0]:
            return self.points[0][1] if size == sizes[0] else 0.0
        if size >= sizes[-1]:
            return 1.0
        i = bisect.bisect_right(sizes, size)
        (s0, p0), (s1, p1) = self.points[i - 1], self.points[i]
        return p0 + (p1 - p0) * (size - s0) / (s1 - s0)

    def quantile(self, u: float) -> float:
        """Inverse CDF: the size at cumulative probability ``u``."""
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"quantile argument must be in [0, 1], got {u}")
        probs = [p[1] for p in self.points]
        if u <= probs[0]:
            return self.points[0][0]
        i = bisect.bisect_left(probs, u)
        i = min(max(i, 1), len(self.points) - 1)
        (s0, p0), (s1, p1) = self.points[i - 1], self.points[i]
        if p1 == p0:
            return s1
        return s0 + (s1 - s0) * (u - p0) / (p1 - p0)

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size in bytes (at least 1)."""
        return max(1, int(round(self.quantile(rng.random()))))

    def mean(self) -> float:
        """Exact mean of the piecewise-linear distribution.

        Within a CDF segment the size is uniform, so the segment contributes
        ``(p1 - p0) * (s0 + s1) / 2``; mass below the first point sits at the
        first point.
        """
        total = self.points[0][1] * self.points[0][0]
        for (s0, p0), (s1, p1) in zip(self.points, self.points[1:]):
            total += (p1 - p0) * (s0 + s1) / 2.0
        return total

    def fraction_above(self, size: float) -> float:
        """P(flow size > size) — used to validate the paper's statistics."""
        return 1.0 - self.cdf(size)


HADOOP = FlowSizeDistribution("fb-hadoop", _HADOOP_POINTS)
WEBSEARCH = FlowSizeDistribution("websearch", _WEBSEARCH_POINTS)
ALISTORAGE = FlowSizeDistribution("ali-storage", _ALISTORAGE_POINTS)


@dataclass(frozen=True)
class MixedDistribution:
    """A by-flow-count mixture of distributions (the WebSearch+Storage mix).

    The paper's second datacenter benchmark mixes "a Microsoft WebSearch
    traffic pattern" and "an Alibaba storage workload" to simulate a shared
    environment; the mix ratio is by flow count.
    """

    name: str
    components: Tuple[FlowSizeDistribution, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights) or not self.components:
            raise ValueError("components and weights must align and be non-empty")
        if any(w < 0 for w in self.weights) or abs(sum(self.weights) - 1.0) > 1e-9:
            raise ValueError("weights must be non-negative and sum to 1")

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        acc = 0.0
        for comp, w in zip(self.components, self.weights):
            acc += w
            if u <= acc:
                return comp.sample(rng)
        return self.components[-1].sample(rng)

    def mean(self) -> float:
        return sum(w * c.mean() for c, w in zip(self.components, self.weights))

    def cdf(self, size: float) -> float:
        return sum(w * c.cdf(size) for c, w in zip(self.components, self.weights))

    def fraction_above(self, size: float) -> float:
        return 1.0 - self.cdf(size)


WEBSEARCH_STORAGE = MixedDistribution(
    "websearch+storage", (WEBSEARCH, ALISTORAGE), (0.5, 0.5)
)


@dataclass(frozen=True)
class ScaledDistribution:
    """A distribution with every size multiplied by a constant factor.

    Used by the scaled experiment presets: shrinking flow sizes together
    with link rates keeps "flow size relative to BDP" — the property the
    FCT-slowdown curves depend on — while cutting simulated bytes.  The mean
    scales too, so offered-load computations stay correct.
    """

    base: object  # FlowSizeDistribution or MixedDistribution
    scale: float

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def name(self) -> str:
        return f"{self.base.name} x{self.scale:g}"

    def sample(self, rng: random.Random) -> int:
        return max(1, int(round(self.base.sample(rng) * self.scale)))

    def mean(self) -> float:
        return self.base.mean() * self.scale

    def cdf(self, size: float) -> float:
        return self.base.cdf(size / self.scale)

    def fraction_above(self, size: float) -> float:
        return 1.0 - self.cdf(size)

DISTRIBUTIONS: Dict[str, object] = {
    "hadoop": HADOOP,
    "websearch": WEBSEARCH,
    "alistorage": ALISTORAGE,
    "websearch+storage": WEBSEARCH_STORAGE,
}


def get_distribution(name: str):
    """Look up a distribution by registry name."""
    try:
        return DISTRIBUTIONS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown distribution {name!r}; options: {sorted(DISTRIBUTIONS)}"
        ) from None
