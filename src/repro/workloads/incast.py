"""Incast workload generator (Sec. III-D, VI-A).

The paper's microbenchmark: N senders each send one 1 MB flow to a single
receiver, with staggered starts — "two flows start every 20 microseconds".
The generator returns plain flow descriptions; the experiment runner binds
them to hosts and congestion-control instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..units import mb, us


@dataclass(frozen=True)
class IncastFlowSpec:
    """One flow of an incast pattern (host indices, not node ids)."""

    sender_index: int
    size_bytes: int
    start_time_ns: float


def staggered_incast(
    n_senders: int = 16,
    *,
    flow_size_bytes: int = mb(1),
    flows_per_batch: int = 2,
    batch_interval_ns: float = us(20.0),
) -> List[IncastFlowSpec]:
    """The paper's staggered N-to-1 incast.

    ``flows_per_batch`` flows start together every ``batch_interval_ns``;
    sender ``i`` starts at ``(i // flows_per_batch) * batch_interval_ns``.
    """
    if n_senders < 1:
        raise ValueError(f"need at least one sender, got {n_senders}")
    if flows_per_batch < 1:
        raise ValueError(f"flows_per_batch must be >= 1, got {flows_per_batch}")
    if batch_interval_ns < 0:
        raise ValueError("batch_interval_ns must be non-negative")
    return [
        IncastFlowSpec(
            sender_index=i,
            size_bytes=flow_size_bytes,
            start_time_ns=(i // flows_per_batch) * batch_interval_ns,
        )
        for i in range(n_senders)
    ]


def simultaneous_incast(
    n_senders: int,
    *,
    flow_size_bytes: int = mb(1),
    start_time_ns: float = 0.0,
) -> List[IncastFlowSpec]:
    """All senders start at once (the classic synchronized incast)."""
    return staggered_incast(
        n_senders,
        flow_size_bytes=flow_size_bytes,
        flows_per_batch=n_senders,
        batch_interval_ns=0.0,
    ) if start_time_ns == 0.0 else [
        IncastFlowSpec(i, flow_size_bytes, start_time_ns) for i in range(n_senders)
    ]
