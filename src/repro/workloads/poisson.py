"""Poisson-arrival datacenter traffic at a target load (Sec. VI-A).

"The datacenter benchmarks run the network at 50% load" — meaning the
aggregate offered load equals half the hosts' total line-rate capacity.
Flows arrive as a Poisson process; each flow picks a uniformly random
(source, destination) host pair (src != dst) and a size from the configured
distribution.

The network-wide arrival rate that achieves a load ``rho`` is::

    lambda = rho * n_hosts * host_rate_bps / 8 / mean_flow_size   [flows/s]

(each host's NIC is the capacity yardstick, as in the HPCC artifact's
traffic generator).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..units import SEC


@dataclass(frozen=True)
class TrafficFlowSpec:
    """One generated flow (host indices into the topology's host list)."""

    src_index: int
    dst_index: int
    size_bytes: int
    start_time_ns: float


def poisson_arrival_rate_per_ns(
    load: float,
    n_hosts: int,
    host_rate_bps: float,
    mean_flow_size_bytes: float,
) -> float:
    """Network-wide flow arrival rate (flows per nanosecond) for a load."""
    if not 0 < load:
        raise ValueError(f"load must be positive, got {load}")
    if mean_flow_size_bytes <= 0:
        raise ValueError("mean flow size must be positive")
    flows_per_sec = load * n_hosts * host_rate_bps / 8.0 / mean_flow_size_bytes
    return flows_per_sec / SEC


def generate_poisson_traffic(
    *,
    n_hosts: int,
    host_rate_bps: float,
    load: float,
    duration_ns: float,
    distribution,
    seed: int = 42,
    start_after_ns: float = 0.0,
) -> List[TrafficFlowSpec]:
    """Generate all flow arrivals within ``[start_after_ns, duration_ns)``.

    ``distribution`` must expose ``sample(rng)`` and ``mean()`` (either a
    :class:`~repro.workloads.distributions.FlowSizeDistribution` or a
    :class:`~repro.workloads.distributions.MixedDistribution`).
    """
    if n_hosts < 2:
        raise ValueError("need at least two hosts for traffic")
    rng = random.Random(seed)
    rate = poisson_arrival_rate_per_ns(load, n_hosts, host_rate_bps, distribution.mean())
    flows: List[TrafficFlowSpec] = []
    t = start_after_ns
    while True:
        t += rng.expovariate(rate)
        if t >= duration_ns:
            break
        src = rng.randrange(n_hosts)
        dst = rng.randrange(n_hosts - 1)
        if dst >= src:
            dst += 1
        flows.append(
            TrafficFlowSpec(
                src_index=src,
                dst_index=dst,
                size_bytes=distribution.sample(rng),
                start_time_ns=t,
            )
        )
    return flows


def offered_load(
    flows: Sequence[TrafficFlowSpec],
    n_hosts: int,
    host_rate_bps: float,
    duration_ns: float,
) -> float:
    """Realized offered load of a generated trace (for validation)."""
    total_bytes = sum(f.size_bytes for f in flows)
    capacity_bytes = n_hosts * host_rate_bps / 8.0 * duration_ns / SEC
    return total_bytes / capacity_bytes if capacity_bytes > 0 else 0.0
