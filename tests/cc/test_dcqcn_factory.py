"""Tests for DCQCN, the probabilistic gate, and the variant factory."""

import random

import pytest

from repro.cc import CCEnv, DcqcnCC, HpccCC, SwiftCC, make_cc, uses_cnp, needs_red
from repro.cc.dcqcn import DcqcnConfig
from repro.cc.factory import (
    hpcc_vai_config,
    scaled_ai_rate_bps,
    swift_vai_config,
    variant_names,
)
from repro.cc.probabilistic import ProbabilisticGate
from repro.cc.swift import SwiftConfig
from repro.sim import Flow, Network
from repro.sim.packet import AckContext
from repro.units import gbps, mbps, us


def env(line=gbps(100.0), rtt=5_000.0):
    return CCEnv(
        line_rate_bps=line,
        base_rtt_ns=rtt,
        mtu_bytes=1000,
        hops=2,
        min_bdp_bytes=line / 8.0 * rtt / 1e9,
        rng=random.Random(0),
    )


class FakeSim:
    """Minimal scheduler double for DCQCN timers."""

    def __init__(self):
        self.scheduled = []

    def schedule(self, delay, fn, *args):
        self.scheduled.append((delay, fn, args))

        class Ev:
            cancelled = False

            def cancel(self):
                self.cancelled = True

        return Ev()


class FakeHost:
    def __init__(self):
        self.sim = FakeSim()


class TestDcqcn:
    def _cc(self):
        cc = DcqcnCC(env())
        cc.bind(None, FakeHost())
        cc.on_flow_start(0.0)
        return cc

    def test_starts_at_line_rate(self):
        cc = self._cc()
        assert cc.current_rate_bps == gbps(100.0)
        assert cc.pacing_rate_bps == gbps(100.0)

    def test_cnp_halves_rate_with_alpha_one(self):
        cc = self._cc()
        cc.on_cnp(0.0)
        assert cc.current_rate_bps == pytest.approx(gbps(50.0))
        assert cc.target_rate_bps == pytest.approx(gbps(100.0))

    def test_alpha_updates_on_cnp(self):
        cc = self._cc()
        g = cc.config.g
        cc.on_cnp(0.0)
        assert cc.alpha == pytest.approx((1 - g) * 1.0 + g)

    def test_alpha_decays_without_cnp(self):
        cc = self._cc()
        a0 = cc.alpha
        cc._alpha_timer()
        assert cc.alpha == pytest.approx(a0 * (1 - cc.config.g))

    def test_fast_recovery_halves_gap(self):
        cc = self._cc()
        cc.on_cnp(0.0)
        rc, rt = cc.current_rate_bps, cc.target_rate_bps
        cc._increase_timer()  # first stage: fast recovery
        assert cc.current_rate_bps == pytest.approx((rc + rt) / 2)
        assert cc.target_rate_bps == rt

    def test_additive_after_fast_recovery(self):
        cc = self._cc()
        cc.on_cnp(0.0)
        cc.on_cnp(0.0)  # second CNP pulls the target below line rate
        assert cc.target_rate_bps < gbps(100.0)
        for _ in range(cc.config.fast_recovery_stages + 1):
            cc._increase_timer()
        rt_before = cc.target_rate_bps
        cc._increase_timer()
        assert cc.target_rate_bps == pytest.approx(
            rt_before + cc.config.ai_rate_bps
        )

    def test_hyper_increase_when_both_clocks_pass(self):
        cc = self._cc()
        cc.on_cnp(0.0)
        for _ in range(cc.config.fast_recovery_stages + 1):
            cc._increase_timer()
        # Now push the byte counter past F too.
        for _ in range(cc.config.fast_recovery_stages + 1):
            cc.byte_stage += 1
        rt_before = cc.target_rate_bps
        cc._increase_timer()
        assert cc.target_rate_bps == pytest.approx(
            min(rt_before + cc.config.hai_rate_bps, gbps(100.0))
        )

    def test_rate_floor(self):
        cc = self._cc()
        for _ in range(200):
            cc.on_cnp(0.0)
        assert cc.current_rate_bps >= cc.config.min_rate_bps

    def test_rate_never_exceeds_line(self):
        cc = self._cc()
        for _ in range(100):
            cc._increase_timer()
        assert cc.current_rate_bps <= gbps(100.0)

    def test_byte_counter_triggers_stage(self):
        cc = self._cc()
        cc.on_cnp(0.0)
        ctx = AckContext(0.0, 0, int(cc.config.byte_counter_bytes), False, None, 0.0, 2)
        rc = cc.current_rate_bps
        cc.on_ack(ctx)
        assert cc.byte_stage == 1
        assert cc.current_rate_bps > rc

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DcqcnConfig(g=1.5)
        with pytest.raises(ValueError):
            DcqcnConfig(fast_recovery_stages=0)


class TestProbabilisticGate:
    def test_zero_window_never_allows(self):
        gate = ProbabilisticGate(random.Random(1))
        assert not any(gate.allow(0.0, 1000.0) for _ in range(200))

    def test_full_window_always_allows(self):
        gate = ProbabilisticGate(random.Random(1))
        assert all(gate.allow(1000.0, 1000.0) for _ in range(200))

    def test_half_window_allows_about_half(self):
        gate = ProbabilisticGate(random.Random(7))
        n = 4000
        allowed = sum(gate.allow(500.0, 1000.0) for _ in range(n))
        assert allowed / n == pytest.approx(0.5, abs=0.05)

    def test_counters(self):
        gate = ProbabilisticGate(random.Random(1))
        for _ in range(100):
            gate.allow(500.0, 1000.0)
        assert gate.accepted + gate.rejected == 100


class TestFactory:
    def test_all_variants_instantiate(self):
        for name in variant_names():
            cc = make_cc(name, env())
            assert cc.window_bytes > 0

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            make_cc("reno", env())

    def test_variant_types(self):
        assert isinstance(make_cc("hpcc", env()), HpccCC)
        assert isinstance(make_cc("swift-vai-sf", env()), SwiftCC)
        assert isinstance(make_cc("dcqcn", env()), DcqcnCC)

    def test_vai_sf_wiring(self):
        cc = make_cc("hpcc-vai-sf", env())
        assert cc.vai is not None and cc.sf is not None
        assert cc.sf.interval_acks == 30
        swift = make_cc("swift-vai-sf", env())
        assert swift.vai is not None and swift.sf is not None
        assert swift.config.use_fbs is False  # Sec. VI-B-1
        assert swift.config.always_ai is True

    def test_high_ai_variant_scales(self):
        base = make_cc("hpcc", env())
        high = make_cc("hpcc-1gbps", env())
        assert high.base_ai_bytes == pytest.approx(base.base_ai_bytes * 20)

    def test_ai_scales_with_line_rate(self):
        """Scaled presets keep AI/line-rate dimensionless."""
        e100 = env(line=gbps(100.0))
        e10 = env(line=gbps(10.0))
        assert scaled_ai_rate_bps(e100, mbps(50)) == pytest.approx(mbps(50))
        assert scaled_ai_rate_bps(e10, mbps(50)) == pytest.approx(mbps(5))

    def test_hpcc_vai_config_paper_values(self):
        """At paper scale (50 KB min BDP): thresh 50 KB, 1 token/KB."""
        e = env()
        e.min_bdp_bytes = 50_000.0
        cfg = hpcc_vai_config(e)
        assert cfg.token_thresh == 50_000.0
        assert cfg.ai_div == pytest.approx(1_000.0)
        assert cfg.bank_cap == 1000.0 and cfg.ai_cap == 100.0

    def test_swift_vai_config_paper_values(self):
        """At paper scale (4 us BDP delay): thresh target+4 us, 30 ns/token."""
        e = env()
        e.min_bdp_bytes = 50_000.0  # 4 us at 100 Gbps
        scfg = SwiftConfig(use_fbs=False)
        cfg = swift_vai_config(e, scfg)
        target = us(5) + us(2) * 2
        assert cfg.token_thresh == pytest.approx(target + us(4))
        assert cfg.ai_div == pytest.approx(30.0)

    def test_cnp_and_red_flags(self):
        assert uses_cnp("dcqcn") and needs_red("dcqcn")
        assert not uses_cnp("hpcc") and not needs_red("swift")


class TestDcqcnEndToEnd:
    def test_dcqcn_flow_completes_on_network(self):
        from repro.experiments.config import red_for_rate

        net = Network()
        h0, h1 = net.add_host(), net.add_host()
        sw = net.add_switch()
        red = red_for_rate(gbps(100.0))
        net.connect(h0, sw, gbps(100.0), us(1), red=red)
        net.connect(h1, sw, gbps(100.0), us(1), red=red)
        net.build_routing()
        e = CCEnv(
            line_rate_bps=gbps(100.0),
            base_rtt_ns=net.path_rtt_ns(h0.node_id, h1.node_id),
            rng=net.rng,
        )
        flow = Flow(0, h0.node_id, h1.node_id, 1_000_000, 0.0)
        flow.use_cnp = True
        net.add_flow(flow, make_cc("dcqcn", e))
        assert net.run_until_flows_complete(timeout_ns=us(10_000))
