"""Unit tests for the HPCC implementation (driven with synthetic ACKs)."""

import random

import pytest

from repro.cc.base import CCEnv
from repro.cc.hpcc import HpccCC, HpccConfig
from repro.cc.factory import hpcc_vai_config
from repro.sim.packet import AckContext, HopRecord
from repro.units import gbps, mbps


def env(line=gbps(100.0), rtt=5_000.0, bdp=None):
    return CCEnv(
        line_rate_bps=line,
        base_rtt_ns=rtt,
        mtu_bytes=1000,
        hops=2,
        min_bdp_bytes=bdp if bdp is not None else line / 8.0 * rtt / 1e9,
        rng=random.Random(0),
    )


class FakeSender:
    def __init__(self):
        self.next_seq = 0


def ack(seq, qlen, tx_bytes, ts, rate=gbps(100.0), now=None, acked=1000):
    """One-hop INT acknowledgement."""
    return AckContext(
        now=now if now is not None else ts,
        ack_seq=seq,
        newly_acked=acked,
        ece=False,
        int_records=[HopRecord(qlen, tx_bytes, ts, rate)],
        rtt=5_000.0,
        hops=1,
    )


def drive(cc, acks):
    sender = FakeSender()
    cc.bind(sender, host=None)
    for a in acks:
        sender.next_seq = a.ack_seq + int(cc.window_bytes)
        cc.on_ack(a)


class TestInitialState:
    def test_starts_at_line_rate_window(self):
        cc = HpccCC(env())
        assert cc.window_bytes == pytest.approx(env().line_rate_window_bytes)
        assert cc.pacing_rate_bps == pytest.approx(gbps(100.0))

    def test_ai_bytes_from_rate(self):
        cc = HpccCC(env(), HpccConfig(ai_rate_bps=mbps(50.0)))
        # 50 Mb/s over a 5 us RTT = 31.25 bytes.
        assert cc.base_ai_bytes == pytest.approx(50e6 / 8 * 5e-6)


class TestMeasureInflight:
    def test_first_ack_sets_baseline_only(self):
        cc = HpccCC(env())
        w0 = cc.window_bytes
        drive(cc, [ack(1000, qlen=0.0, tx_bytes=1000.0, ts=100.0)])
        assert cc.window_bytes == w0  # no telemetry delta yet
        assert cc.utilization == 0.0

    def test_utilization_from_tx_rate(self):
        cc = HpccCC(env())
        # Hop transmits at exactly line rate with zero queue -> u = 1.0.
        bytes_per_ns = gbps(100.0) / 8.0 / 1e9
        t0, t1 = 0.0, 5_000.0
        drive(
            cc,
            [
                ack(1000, 0.0, 0.0, t0),
                ack(2000, 0.0, bytes_per_ns * (t1 - t0), t1, now=t1),
            ],
        )
        # tau == T so EWMA fully adopts the new measurement.
        assert cc.utilization == pytest.approx(1.0)

    def test_queue_contributes_to_utilization(self):
        cc = HpccCC(env())
        T = 5_000.0
        bdp = gbps(100.0) / 8.0 * T / 1e9  # bytes in flight at line rate
        drive(
            cc,
            [
                ack(1000, bdp, 0.0, 0.0),
                ack(2000, bdp, 0.0, T, now=T),  # full-BDP standing queue, no tx
            ],
        )
        assert cc.utilization == pytest.approx(1.0)


class TestWindowAdjustment:
    def test_decrease_when_overutilized(self):
        cc = HpccCC(env())
        bytes_per_ns = gbps(100.0) / 8.0 / 1e9
        T = 5_000.0
        w0 = cc.window_bytes
        # Queue of 2 BDPs plus line-rate tx -> u ~ 3 -> strong decrease.
        q = 2 * bytes_per_ns * T
        drive(
            cc,
            [
                ack(1000, q, 0.0, 0.0),
                ack(2000, q, bytes_per_ns * T, T, now=T),
            ],
        )
        assert cc.window_bytes < w0

    def test_additive_probe_when_underutilized(self):
        cc = HpccCC(env())
        bytes_per_ns = gbps(100.0) / 8.0 / 1e9
        T = 5_000.0
        # Start below the line-rate cap so the additive step is visible.
        cc.reference_window = cc.window_bytes = 30_000.0
        wc0 = cc.reference_window
        # 50% utilization, no queue -> u = 0.5 < eta, incStage < maxStage:
        # additive increase only.
        # The second ACK's sequence exceeds the first RTT boundary marker
        # (seq 1000 + the 30 KB window), so it opens a new update period.
        drive(
            cc,
            [
                ack(1000, 0.0, 0.0, 0.0),
                ack(40_000, 0.0, 0.5 * bytes_per_ns * T, T, now=T),
            ],
        )
        assert cc.reference_window == pytest.approx(wc0 + cc.base_ai_bytes)
        assert cc.inc_stage == 1

    def test_multiplicative_increase_after_max_stage(self):
        cc = HpccCC(env())
        bytes_per_ns = gbps(100.0) / 8.0 / 1e9
        T = 5_000.0
        tx = 0.5 * bytes_per_ns * T
        acks = [ack(1000, 0.0, 0.0, 0.0)]
        for i in range(1, 8):
            acks.append(ack((i + 1) * 1000, 0.0, tx * i, T * i, now=T * i))
        drive(cc, acks)
        # After maxStage additive rounds the MI branch engages; with u = 0.5
        # the window roughly doubles per update (capped at line-rate BDP).
        assert cc.inc_stage == 0  # reset by the MI branch
        assert cc.window_bytes == pytest.approx(env().line_rate_window_bytes)

    def test_window_floor_one_mtu(self):
        cc = HpccCC(env())
        bytes_per_ns = gbps(100.0) / 8.0 / 1e9
        T = 5_000.0
        q = 100 * bytes_per_ns * T  # monstrous queue
        acks = [ack(1000, q, 0.0, 0.0)]
        for i in range(1, 20):
            acks.append(ack((i + 1) * 1000, q, bytes_per_ns * T * i, T * i, now=T * i))
        drive(cc, acks)
        assert cc.window_bytes >= 1000.0

    def test_reference_updates_once_per_rtt(self):
        """Two congested ACKs inside one RTT produce one reference decrease."""
        cc = HpccCC(env())
        sender = FakeSender()
        cc.bind(sender, None)
        bytes_per_ns = gbps(100.0) / 8.0 / 1e9
        T = 5_000.0
        q = 2 * bytes_per_ns * T
        sender.next_seq = 1_000_000
        cc.on_ack(ack(1000, q, 0.0, 0.0))
        cc.on_ack(ack(2000, q, bytes_per_ns * 100, 100.0, now=100.0))
        dec_after_first = cc.reference_decreases
        cc.on_ack(ack(3000, q, bytes_per_ns * 200, 200.0, now=200.0))
        assert cc.reference_decreases == dec_after_first  # same RTT


class TestSamplingFrequency:
    def test_sf_decreases_every_n_acks_not_per_rtt(self):
        cfg = HpccConfig(sampling_acks=5)
        cc = HpccCC(env(), cfg)
        nosf = HpccCC(env())
        for proto in (cc, nosf):
            sender = FakeSender()
            proto.bind(sender, None)
            sender.next_seq = 10_000_000  # keep every ack inside "one RTT"
            bytes_per_ns = gbps(100.0) / 8.0 / 1e9
            T = 5_000.0
            q = 2 * bytes_per_ns * T
            # Space telemetry T/5 apart so the EWMA'd U converges quickly.
            proto.on_ack(ack(1000, q, 0.0, 0.0))
            for i in range(1, 41):
                proto.on_ack(
                    ack(
                        1000 + i,
                        q,
                        bytes_per_ns * (T / 5) * i,
                        (T / 5) * i,
                        now=(T / 5) * i,
                    )
                )
        # The per-RTT baseline never crosses an RTT boundary, so it never
        # touches the reference window; SF decreases every 5th ACK once the
        # EWMA sees congestion.
        assert nosf.reference_decreases == 0
        assert cc.reference_decreases >= 3


class TestVariableAI:
    def test_vai_tokens_amplify_ai(self):
        vai_cfg = hpcc_vai_config(env())
        cc = HpccCC(env(), HpccConfig(vai=vai_cfg))
        plain = HpccCC(env())
        bytes_per_ns = gbps(100.0) / 8.0 / 1e9
        T = 5_000.0
        q = 3 * vai_cfg.token_thresh  # way past Token_Thresh
        # Sequence numbers jump by 100 KB per ACK so every ACK crosses an
        # RTT boundary (windows here are ~62 KB).
        acks = [ack(100_000, q, 0.0, 0.0)]
        for i in range(1, 8):
            acks.append(
                ack(
                    (i + 1) * 100_000, q, bytes_per_ns * T * i, T * i, now=T * i
                )
            )
        drive(cc, acks)
        drive(plain, acks)
        # VAI minted tokens (congestion >> threshold each RTT) and the
        # dampener grew with the sustained congestion.
        assert cc.vai.ai_bank > 0 or cc.vai.dampener > 0
        # With tokens spent, the effective AI exceeded base at least once,
        # leaving a larger window than the plain protocol.
        assert cc.window_bytes >= plain.window_bytes


class TestProbabilistic:
    def test_starved_flow_rarely_reacts(self):
        """With the reference window near zero the gate almost always ignores
        decreases; at max window it always reacts."""
        e = env()
        cc = HpccCC(e, HpccConfig(probabilistic=True))
        cc.reference_window = 10.0  # starved
        gate_uses = sum(
            cc.gate.allow(cc.reference_window, e.line_rate_window_bytes)
            for _ in range(500)
        )
        assert gate_uses < 25
        cc2 = HpccCC(e, HpccConfig(probabilistic=True))
        assert all(
            cc2.gate.allow(e.line_rate_window_bytes, e.line_rate_window_bytes)
            for _ in range(100)
        )
