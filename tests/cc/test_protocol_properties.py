"""Property-based invariants for every congestion-control implementation.

Hypothesis drives each protocol with arbitrary (but well-formed) ACK
streams; regardless of the stream, the protocol must maintain:

* a positive, finite window no larger than it allows sending usefully;
* a pacing rate (when used) within [min, line rate];
* no crashes, no NaNs.

These are exactly the safety properties the substrate relies on — a window
of 0 would deadlock a flow, NaN would corrupt the event schedule.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import CCEnv, make_cc, variant_names
from repro.sim.packet import AckContext, HopRecord
from repro.units import gbps


def make_env(seed=0):
    line = gbps(100.0)
    rtt = 5_000.0
    return CCEnv(
        line_rate_bps=line,
        base_rtt_ns=rtt,
        mtu_bytes=1000,
        hops=2,
        min_bdp_bytes=line / 8.0 * rtt / 1e9,
        rng=random.Random(seed),
    )


class FakeSender:
    def __init__(self):
        self.next_seq = 0


class FakeSim:
    def schedule(self, delay, fn, *args):
        class Ev:
            cancelled = False

            def cancel(self):
                self.cancelled = True

        return Ev()


class FakeHost:
    sim = FakeSim()


ack_stream = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=100_000),  # seq increment
        st.floats(min_value=100.0, max_value=500_000.0),  # rtt sample
        st.booleans(),  # ece
        st.floats(min_value=0.0, max_value=5_000_000.0),  # qlen
        st.floats(min_value=10.0, max_value=20_000.0),  # time increment
    ),
    min_size=1,
    max_size=120,
)


def drive(variant, stream):
    env = make_env()
    cc = make_cc(variant, env)
    sender = FakeSender()
    cc.bind(sender, FakeHost())
    cc.on_flow_start(0.0)
    now = 0.0
    seq = 0
    tx_bytes = 0.0
    for d_seq, rtt, ece, qlen, d_t in stream:
        now += d_t
        seq += d_seq
        tx_bytes += d_seq
        sender.next_seq = seq + int(min(cc.window_bytes, 1e9))
        ctx = AckContext(
            now=now,
            ack_seq=seq,
            newly_acked=min(d_seq, 100_000),
            ece=ece,
            int_records=[HopRecord(qlen, tx_bytes, now - rtt / 2, gbps(100.0))],
            rtt=rtt,
            hops=2,
        )
        cc.on_ack(ctx)
        if ece and variant == "dcqcn":
            cc.on_cnp(now)
        yield cc


class TestProtocolSafetyInvariants:
    @given(stream=ack_stream)
    @settings(max_examples=30, deadline=None)
    def test_hpcc_invariants(self, stream):
        env = make_env()
        for cc in drive("hpcc", stream):
            assert 1000.0 <= cc.window_bytes <= env.line_rate_window_bytes + 1
            assert math.isfinite(cc.window_bytes)
            assert cc.pacing_rate_bps is None or cc.pacing_rate_bps > 0

    @given(stream=ack_stream)
    @settings(max_examples=30, deadline=None)
    def test_hpcc_vai_sf_invariants(self, stream):
        env = make_env()
        for cc in drive("hpcc-vai-sf", stream):
            assert 1000.0 <= cc.window_bytes <= env.line_rate_window_bytes + 1
            assert 0.0 <= cc.vai.ai_bank <= cc.vai.config.bank_cap
            assert cc.vai.dampener >= 0.0

    @given(stream=ack_stream)
    @settings(max_examples=30, deadline=None)
    def test_swift_invariants(self, stream):
        env = make_env()
        for cc in drive("swift", stream):
            assert 1000.0 <= cc.window_bytes <= env.line_rate_window_bytes + 1
            assert math.isfinite(cc.cwnd)

    @given(stream=ack_stream)
    @settings(max_examples=30, deadline=None)
    def test_swift_vai_sf_invariants(self, stream):
        for cc in drive("swift-vai-sf", stream):
            assert math.isfinite(cc.window_bytes)
            assert cc.window_bytes >= 1000.0
            assert cc.reference_cwnd >= 1000.0

    @given(stream=ack_stream)
    @settings(max_examples=30, deadline=None)
    def test_dcqcn_invariants(self, stream):
        for cc in drive("dcqcn", stream):
            assert cc.config.min_rate_bps <= cc.current_rate_bps <= gbps(100.0)
            assert cc.current_rate_bps <= cc.pacing_rate_bps + 1e-6
            assert 0.0 <= cc.alpha <= 1.0

    @given(stream=ack_stream)
    @settings(max_examples=30, deadline=None)
    def test_dctcp_invariants(self, stream):
        for cc in drive("dctcp", stream):
            assert 0.0 <= cc.alpha <= 1.0
            assert cc.window_bytes >= 1000.0
            assert math.isfinite(cc.window_bytes)

    @given(stream=ack_stream)
    @settings(max_examples=30, deadline=None)
    def test_timely_invariants(self, stream):
        for cc in drive("timely", stream):
            assert cc.config.min_rate_bps <= cc.rate_bps <= gbps(100.0)
            assert math.isfinite(cc.rtt_diff_ewma)

    @given(stream=ack_stream)
    @settings(max_examples=15, deadline=None)
    def test_every_variant_survives_any_stream(self, stream):
        for variant in variant_names():
            for cc in drive(variant, stream):
                # Rate-based protocols (DCQCN) use an unbounded window by
                # design; they must then expose a finite positive pacing rate.
                if math.isinf(cc.window_bytes):
                    assert cc.pacing_rate_bps is not None
                    assert 0 < cc.pacing_rate_bps <= gbps(100.0)
                else:
                    assert math.isfinite(cc.window_bytes)
                    assert cc.window_bytes >= 1000.0


class TestMonotonicReactions:
    """Directional sanity: clean signals move windows the right way."""

    def test_uncongested_stream_grows_every_window_protocol(self):
        # Low RTT, no marks, empty queues: windows must not shrink.
        stream = [(1000, 4_500.0, False, 0.0, 1_000.0) for _ in range(60)]
        for variant in ("hpcc", "swift", "dctcp"):
            env = make_env()
            cc = make_cc(variant, env)
            sender = FakeSender()
            cc.bind(sender, FakeHost())
            # Start below the cap so growth is observable.
            if hasattr(cc, "reference_window"):
                cc.reference_window = cc.window_bytes = 20_000.0
            if hasattr(cc, "cwnd"):
                cc.cwnd = cc.window_bytes = 20_000.0
            if hasattr(cc, "reference_cwnd"):
                cc.reference_cwnd = 20_000.0
            w0 = cc.window_bytes
            now, seq, tx = 0.0, 0, 0.0
            for d_seq, rtt, ece, qlen, d_t in stream:
                now += d_t
                seq += d_seq
                tx += d_seq
                sender.next_seq = seq + 10_000
                cc.on_ack(
                    AckContext(
                        now, seq, d_seq, ece,
                        [HopRecord(qlen, tx, now - rtt / 2, gbps(100.0))],
                        rtt, 2,
                    )
                )
            assert cc.window_bytes >= w0, variant

    def test_heavily_congested_stream_shrinks_every_window_protocol(self):
        stream = [(1000, 400_000.0, True, 4_000_000.0, 5_000.0) for _ in range(60)]
        for variant in ("hpcc", "swift", "dctcp"):
            env = make_env()
            cc = make_cc(variant, env)
            sender = FakeSender()
            cc.bind(sender, FakeHost())
            w0 = cc.window_bytes
            now, seq, tx = 0.0, 0, 0.0
            for d_seq, rtt, ece, qlen, d_t in stream:
                now += d_t
                seq += d_seq
                tx += 100.0  # almost no progress: path is jammed
                sender.next_seq = seq + int(cc.window_bytes)
                cc.on_ack(
                    AckContext(
                        now, seq, d_seq, ece,
                        [HopRecord(qlen, tx, now - rtt / 2, gbps(100.0))],
                        rtt, 2,
                    )
                )
            assert cc.window_bytes < w0, variant
