"""Unit tests for the Swift implementation (driven with synthetic ACKs)."""

import random

import pytest

from repro.cc.base import CCEnv
from repro.cc.factory import swift_vai_config
from repro.cc.swift import SwiftCC, SwiftConfig
from repro.sim.packet import AckContext
from repro.units import gbps, us


def env(line=gbps(100.0), rtt=5_000.0):
    return CCEnv(
        line_rate_bps=line,
        base_rtt_ns=rtt,
        mtu_bytes=1000,
        hops=2,
        min_bdp_bytes=line / 8.0 * rtt / 1e9,
        rng=random.Random(0),
    )


class FakeSender:
    def __init__(self):
        self.next_seq = 10_000_000


def ack(seq, rtt_ns, now, acked=1000):
    return AckContext(
        now=now,
        ack_seq=seq,
        newly_acked=acked,
        ece=False,
        int_records=None,
        rtt=rtt_ns,
        hops=2,
    )


def bind(cc):
    cc.bind(FakeSender(), None)
    return cc


class TestTargetDelay:
    def test_topology_scaling(self):
        cfg = SwiftConfig(use_fbs=False)
        cc = SwiftCC(env(), cfg)
        # base 5 us + 2 us/hop * 2 hops = 9 us
        assert cc.target_delay_ns() == pytest.approx(us(9))

    def test_fbs_raises_target_for_small_windows(self):
        cfg = SwiftConfig(use_fbs=True, fs_max_cwnd_pkts=50.0)
        cc = SwiftCC(env(), cfg)
        big = cc.flow_scaling_ns(50 * 1000.0)
        small = cc.flow_scaling_ns(1 * 1000.0)
        assert big == pytest.approx(0.0, abs=1e-9)
        assert small > 0

    def test_fbs_term_clamped_to_range(self):
        cfg = SwiftConfig(use_fbs=True, fs_range_ns=us(10), fs_min_cwnd_pkts=0.1)
        cc = SwiftCC(env(), cfg)
        assert cc.flow_scaling_ns(1.0) <= us(10)
        assert cc.flow_scaling_ns(1e9) >= 0.0

    def test_fbs_monotone_decreasing_in_window(self):
        cc = SwiftCC(env(), SwiftConfig())
        values = [cc.flow_scaling_ns(w * 1000.0) for w in (1, 2, 5, 10, 50, 100)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestIncrease:
    def test_ai_below_target(self):
        cc = bind(SwiftCC(env(), SwiftConfig(use_fbs=False)))
        cc.cwnd = cc.window_bytes = 30_000.0
        w0 = cc.cwnd
        cc.on_ack(ack(1000, rtt_ns=us(5), now=us(5)))  # below 9 us target
        # Scaled per-ACK AI: ai * acked / cwnd.
        expected = w0 + cc.base_ai_bytes * 1000 / w0
        assert cc.cwnd == pytest.approx(expected, rel=1e-6)

    def test_no_increase_when_congested_without_always_ai(self):
        cc = bind(SwiftCC(env(), SwiftConfig(use_fbs=False)))
        cc.cwnd = cc.window_bytes = 30_000.0
        cc.last_decrease_time = 0.0
        before = cc.cwnd
        # Heavy delay, but a decrease just happened (within one RTT):
        # neither increase nor decrease may fire.
        cc.on_ack(ack(1000, rtt_ns=us(20), now=us(1)))
        assert cc.cwnd <= before

    def test_always_ai_increases_even_when_congested(self):
        cfg = SwiftConfig(use_fbs=False, always_ai=True)
        cc = bind(SwiftCC(env(), cfg))
        cc.cwnd = cc.window_bytes = 30_000.0
        cc.reference_cwnd = 30_000.0
        cc.last_decrease_time = 0.0
        cc.on_ack(ack(1000, rtt_ns=us(20), now=us(1)))
        # AI applied on top of (possibly) no decrease.
        assert cc.increase_bytes > 0


class TestDecrease:
    def test_mdf_formula(self):
        cfg = SwiftConfig(use_fbs=False, beta=0.8, mdf_floor=0.5)
        cc = bind(SwiftCC(env(), cfg))
        cc.cwnd = cc.window_bytes = 30_000.0
        delay, target = us(10), us(9)
        cc.on_ack(ack(1000, rtt_ns=delay, now=us(100)))
        mdf = 1.0 - 0.8 * (delay - target) / delay
        assert cc.cwnd == pytest.approx(30_000.0 * mdf, rel=1e-6)

    def test_mdf_floored_at_half(self):
        cfg = SwiftConfig(use_fbs=False, beta=0.8, mdf_floor=0.5)
        cc = bind(SwiftCC(env(), cfg))
        cc.cwnd = cc.window_bytes = 30_000.0
        cc.on_ack(ack(1000, rtt_ns=us(900), now=us(1000)))  # huge delay
        assert cc.cwnd == pytest.approx(15_000.0, rel=1e-6)

    def test_once_per_rtt_gating(self):
        cfg = SwiftConfig(use_fbs=False)
        cc = bind(SwiftCC(env(), cfg))
        cc.cwnd = cc.window_bytes = 30_000.0
        cc.on_ack(ack(1000, rtt_ns=us(20), now=us(100)))
        after_first = cc.cwnd
        cc.on_ack(ack(2000, rtt_ns=us(20), now=us(105)))  # within one RTT
        assert cc.cwnd == after_first
        cc.on_ack(ack(3000, rtt_ns=us(20), now=us(125)))  # an RTT later
        assert cc.cwnd < after_first

    def test_window_floor_one_mtu(self):
        cfg = SwiftConfig(use_fbs=False)
        cc = bind(SwiftCC(env(), cfg))
        for i in range(50):
            cc.on_ack(ack(1000 * i, rtt_ns=us(500), now=us(1000 * i)))
        assert cc.window_bytes >= 1000.0


class TestSamplingFrequencyAndReference:
    def test_reference_rate_prevents_compounding(self):
        """Per-ACK decreases inside one sampling period all derive from the
        same reference, so ten congested ACKs shrink cwnd once, not 10x."""
        cfg = SwiftConfig(use_fbs=False, sampling_acks=30, use_reference_rate=True)
        cc = bind(SwiftCC(env(), cfg))
        cc.cwnd = cc.window_bytes = cc.reference_cwnd = 30_000.0
        for i in range(10):
            cc.on_ack(ack(1000 * (i + 1), rtt_ns=us(18), now=us(5) * (i + 1)))
        mdf = max(1.0 - 0.8 * (us(18) - us(9)) / us(18), 0.5)
        assert cc.cwnd == pytest.approx(30_000.0 * mdf, rel=1e-6)

    def test_reference_updates_on_sampling_grant(self):
        cfg = SwiftConfig(use_fbs=False, sampling_acks=5, use_reference_rate=True)
        cc = bind(SwiftCC(env(), cfg))
        cc.cwnd = cc.window_bytes = cc.reference_cwnd = 30_000.0
        for i in range(5):
            cc.on_ack(ack(1000 * (i + 1), rtt_ns=us(18), now=us(5) * (i + 1)))
        # The 5th ACK granted a reference update.
        assert cc.reference_cwnd < 30_000.0
        assert cc.decreases == 1

    def test_faster_acking_flow_decreases_more(self):
        """Sec. IV-B's fairness force, end to end at the protocol level."""
        def run(n_acks):
            cfg = SwiftConfig(use_fbs=False, sampling_acks=10, use_reference_rate=True)
            cc = bind(SwiftCC(env(), cfg))
            cc.cwnd = cc.window_bytes = cc.reference_cwnd = 50_000.0
            for i in range(n_acks):
                cc.on_ack(ack(1000 * (i + 1), rtt_ns=us(12), now=us(1) * (i + 1)))
            return cc.decreases

        assert run(100) > run(30)


class TestVariableAIIntegration:
    def test_tokens_minted_from_delay(self):
        cfg = SwiftConfig(use_fbs=False, always_ai=True)
        cfg.vai = swift_vai_config(env(), cfg)
        cc = SwiftCC(env(), cfg)
        sender = FakeSender()
        sender.next_seq = 0
        cc.bind(sender, None)
        # Drive RTT boundaries with huge delays: each ack crosses a boundary
        # because next_seq stays 0 < ack_seq... (boundary = seq > last mark).
        for i in range(1, 6):
            sender.next_seq = 0
            cc.on_ack(ack(100_000 * i, rtt_ns=us(100), now=us(100) * i))
        assert cc.vai.ai_bank > 0 or cc._ai_multiplier > 1.0

    def test_dampener_resets_after_quiet_rtts(self):
        cfg = SwiftConfig(use_fbs=False, always_ai=True)
        cfg.vai = swift_vai_config(env(), cfg)
        cc = SwiftCC(env(), cfg)
        sender = FakeSender()
        sender.next_seq = 0
        cc.bind(sender, None)
        for i in range(1, 4):
            cc.on_ack(ack(100_000 * i, rtt_ns=us(100), now=us(100) * i))
        assert cc.vai.dampener > 0
        for i in range(4, 60):
            cc.on_ack(ack(100_000 * i, rtt_ns=us(5), now=us(100) * i))
        assert cc.vai.dampener == 0.0
        assert cc.vai.ai_bank == 0.0
