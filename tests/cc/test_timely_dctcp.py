"""Unit tests for the TIMELY and DCTCP extension protocols."""

import random

import pytest

from repro.cc import CCEnv, DctcpCC, TimelyCC, make_cc
from repro.cc.dctcp import DctcpConfig, dctcp_vai_config
from repro.cc.factory import timely_config, timely_vai_config
from repro.cc.timely import TimelyConfig
from repro.sim.packet import AckContext
from repro.units import gbps, us


def env(line=gbps(100.0), rtt=5_000.0):
    return CCEnv(
        line_rate_bps=line,
        base_rtt_ns=rtt,
        mtu_bytes=1000,
        hops=2,
        min_bdp_bytes=line / 8.0 * rtt / 1e9,
        rng=random.Random(0),
    )


class FakeSender:
    next_seq = 10_000_000


def ack(seq, rtt_ns, now, ece=False, acked=1000):
    return AckContext(
        now=now, ack_seq=seq, newly_acked=acked, ece=ece,
        int_records=None, rtt=rtt_ns, hops=2,
    )


class TestTimelyBasics:
    def _cc(self, **kw):
        cfg = TimelyConfig(t_low_ns=us(5), t_high_ns=us(50), **kw)
        cc = TimelyCC(env(), cfg)
        cc.bind(FakeSender(), None)
        return cc

    def test_starts_at_line_rate(self):
        cc = self._cc()
        assert cc.rate_bps == gbps(100.0)
        assert cc.pacing_rate_bps == gbps(100.0)

    def test_increase_below_t_low(self):
        cc = self._cc()
        cc._set_rate(gbps(50.0))
        cc.on_ack(ack(1000, rtt_ns=us(4), now=us(4)))
        assert cc.rate_bps > gbps(50.0)

    def test_decrease_above_t_high(self):
        cc = self._cc()
        cc.on_ack(ack(1000, rtt_ns=us(100), now=us(100)))
        expected = gbps(100.0) * (1 - 0.8 * (1 - us(50) / us(100)))
        assert cc.rate_bps == pytest.approx(expected)
        assert cc.decreases == 1

    def test_decrease_once_per_rtt(self):
        cc = self._cc()
        cc.on_ack(ack(1000, rtt_ns=us(100), now=us(100)))
        r = cc.rate_bps
        cc.on_ack(ack(2000, rtt_ns=us(100), now=us(101)))  # same RTT window
        assert cc.rate_bps == r

    def test_gradient_decrease_in_band(self):
        cc = self._cc()
        # Rising RTTs inside [t_low, t_high]: positive gradient -> decrease.
        cc.on_ack(ack(1000, rtt_ns=us(10), now=us(10)))
        cc.on_ack(ack(2000, rtt_ns=us(30), now=us(40)))
        assert cc.rate_bps < gbps(100.0)

    def test_hai_mode_after_streak(self):
        cc = self._cc(hai_threshold=3, hai_multiplier=5.0)
        cc._set_rate(gbps(10.0))
        # Falling RTTs in band: negative gradient streak.
        rtts = [us(30), us(28), us(26), us(24), us(22), us(20)]
        for i, r in enumerate(rtts):
            cc.on_ack(ack(1000 * (i + 1), rtt_ns=r, now=us(10) * (i + 1)))
        assert cc.hai_events > 0

    def test_rate_bounds(self):
        cc = self._cc()
        for i in range(100):
            cc.on_ack(ack(1000 * i, rtt_ns=us(500), now=us(100) * (i + 1)))
        assert cc.rate_bps >= cc.config.min_rate_bps
        cc2 = self._cc()
        for i in range(100):
            cc2.on_ack(ack(1000 * i, rtt_ns=us(1), now=us(100) * (i + 1)))
        assert cc2.rate_bps <= gbps(100.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TimelyConfig(t_low_ns=us(50), t_high_ns=us(5))
        with pytest.raises(ValueError):
            TimelyConfig(ewma_alpha=0.0)

    def test_sf_gates_decreases(self):
        cfg = TimelyConfig(t_low_ns=us(5), t_high_ns=us(50), sampling_acks=5)
        cc = TimelyCC(env(), cfg)
        cc.bind(FakeSender(), None)
        for i in range(4):
            cc.on_ack(ack(1000 * (i + 1), rtt_ns=us(100), now=us(1) * (i + 1)))
        assert cc.decreases == 0  # no grant yet
        cc.on_ack(ack(5000, rtt_ns=us(100), now=us(5)))
        assert cc.decreases == 1  # the 5th ACK granted one


class TestDctcpBasics:
    def _cc(self, **kw):
        cc = DctcpCC(env(), DctcpConfig(**kw))
        cc.bind(FakeSender(), None)
        return cc

    def test_starts_at_line_rate_window(self):
        cc = self._cc()
        assert cc.window_bytes == pytest.approx(env().line_rate_window_bytes)

    def test_alpha_tracks_marked_fraction(self):
        cc = self._cc(g=0.5)
        sender = FakeSender()
        sender.next_seq = 0  # every ACK becomes its own RTT boundary
        cc.bind(sender, None)
        # A fully-marked RTT keeps alpha at 1; an unmarked RTT halves it.
        cc.on_ack(ack(1000, us(5), us(1), ece=True))
        assert cc.alpha == pytest.approx(1.0)
        assert cc.last_fraction == pytest.approx(1.0)
        cc.on_ack(ack(2000, us(5), us(2), ece=False))
        assert cc.alpha == pytest.approx(0.5)
        assert cc.last_fraction == 0.0

    def test_decrease_once_per_rtt(self):
        cc = self._cc()
        cc.cwnd = cc.window_bytes = 30_000.0
        cc._decrease_armed = True
        cc.on_ack(ack(1000, us(5), us(1), ece=True))
        w1 = cc.cwnd
        cc.on_ack(ack(2000, us(5), us(2), ece=True))
        assert cc.cwnd == pytest.approx(w1)  # second mark in same RTT ignored

    def test_additive_increase_without_marks(self):
        cc = self._cc()
        cc.cwnd = cc.window_bytes = 30_000.0
        w0 = cc.cwnd
        cc.on_ack(ack(1000, us(5), us(1), ece=False))
        assert cc.cwnd > w0

    def test_window_floor(self):
        cc = self._cc()
        for i in range(100):
            cc._decrease_armed = True
            cc.on_ack(ack(1000 * (i + 1), us(5), us(1) * (i + 1), ece=True))
        assert cc.window_bytes >= 1000.0

    def test_sf_reference_semantics(self):
        cc = DctcpCC(env(), DctcpConfig(sampling_acks=30))
        cc.bind(FakeSender(), None)
        cc.cwnd = cc.window_bytes = cc.reference_cwnd = 30_000.0
        cc.alpha = 1.0
        for i in range(10):
            cc.on_ack(ack(1000 * (i + 1), us(5), us(1) * (i + 1), ece=True))
        # Ten marked ACKs within one sampling period: one halving, not ten.
        assert cc.cwnd == pytest.approx(15_000.0, rel=1e-6)

    def test_vai_config_units(self):
        cfg = dctcp_vai_config()
        assert cfg.token_thresh == 0.5  # marked fraction
        assert cfg.ai_cap == 100.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DctcpConfig(g=0.0)


class TestFactoryIntegration:
    def test_new_variants_instantiate(self):
        for name in ("timely", "timely-vai-sf", "dctcp", "dctcp-vai-sf"):
            cc = make_cc(name, env())
            assert cc.window_bytes > 0

    def test_timely_thresholds_scale_with_path(self):
        cfg = timely_config(env(rtt=10_000.0), delta_bps=50e6)
        assert cfg.t_low_ns == pytest.approx(11_000.0)
        assert cfg.t_high_ns > cfg.t_low_ns

    def test_timely_vai_config(self):
        tcfg = timely_config(env(), delta_bps=50e6)
        vcfg = timely_vai_config(env(), tcfg)
        assert vcfg.token_thresh > tcfg.t_low_ns
        assert vcfg.ai_div > 0

    def test_vai_sf_wiring(self):
        cc = make_cc("timely-vai-sf", env())
        assert cc.vai is not None and cc.sf is not None
        cc2 = make_cc("dctcp-vai-sf", env())
        assert cc2.vai is not None and cc2.sf is not None
