"""Shared helpers for the sanitizer test suite (tests/check)."""

import json
import os
from pathlib import Path

#: Where shrunk failing configs land; CI uploads this directory on failure.
ARTIFACT_ENV = "SANITIZER_ARTIFACT_DIR"
DEFAULT_ARTIFACT_DIR = "artifacts/sanitizer"


def write_failure_artifact(name: str, payload: dict) -> Path:
    """Persist a failing (property-test) config where CI can upload it.

    Hypothesis replays the minimal example last after shrinking, so the
    final overwrite leaves exactly the *minimal* failing config on disk.
    """
    root = Path(os.environ.get(ARTIFACT_ENV, DEFAULT_ARTIFACT_DIR))
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    )
    return path
